"""Concurrent connectivity query serving over snapshot artifacts.

The paper's oracle is label-only at query time, and the snapshot subsystem
(:mod:`repro.core.snapshot`) makes that literal: a server process loads an
``FTCS`` artifact at startup — it never constructs a labeling — and answers
``connected`` / ``connected_many`` for many concurrent fault-set sessions.

Layers (each separately importable):

* :mod:`repro.server.protocol` — the newline-delimited JSON wire format and
  the shared response envelope (also used by the CLI's ``--json`` mode).
* :mod:`repro.server.metrics` — thread-safe request/latency/session counters.
* :mod:`repro.server.session_manager` — the concurrency front-end over the
  oracle's batch-session LRU: executor offload plus single-flight dedup.
* :mod:`repro.server.server` — the asyncio TCP server, a background-thread
  harness for synchronous embedders, and the blocking CLI driver.
* :mod:`repro.server.client` — asyncio and blocking client libraries.
"""

from repro.server.client import (AsyncQueryClient, ProtocolViolation,
                                 QueryClient, ServerError)
from repro.server.metrics import ServerMetrics
from repro.server.protocol import PROTOCOL_VERSION, ProtocolError
from repro.server.server import BackgroundServer, QueryServer, run_server
from repro.server.session_manager import SessionManager

__all__ = [
    "AsyncQueryClient",
    "BackgroundServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ProtocolViolation",
    "QueryClient",
    "QueryServer",
    "run_server",
    "ServerError",
    "ServerMetrics",
    "SessionManager",
]
