"""Server-side counters: requests, latency, and session-cache effectiveness.

One :class:`ServerMetrics` instance is shared by the event loop (request
accounting) and the worker threads building sessions, so every mutation takes
the lock; reads go through :meth:`snapshot`, which returns a plain dict that
the ``stats`` request and the benchmarks serialize directly.

The headline number is the *session hit rate*: the fraction of fault-set
lookups served without building a new :class:`~repro.core.batch.BatchQuerySession`
(LRU hits plus single-flight coalesced waits).  Heavy traffic over a shared
fault set must drive it toward 1.0 — that is the whole point of the
session-sharing server.
"""

from __future__ import annotations

import threading
from collections import Counter


class ServerMetrics:
    """Thread-safe request/latency/session counters for one server process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._requests: Counter = Counter()
        self._errors: Counter = Counter()
        self._latency_sum: Counter = Counter()
        self._latency_max: dict[str, float] = {}
        self._connections_opened = 0
        self._connections_active = 0
        self._session_hits = 0
        self._session_misses = 0
        self._session_coalesced = 0
        self._session_failures = 0
        self._queries_answered = 0

    # ------------------------------------------------------------ recording

    def record_request(self, op: str, seconds: float) -> None:
        with self._lock:
            self._requests[op] += 1
            self._latency_sum[op] += seconds
            if seconds > self._latency_max.get(op, 0.0):
                self._latency_max[op] = seconds

    def record_error(self, code: str) -> None:
        with self._lock:
            self._errors[code] += 1

    def connection_opened(self) -> None:
        with self._lock:
            self._connections_opened += 1
            self._connections_active += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._connections_active -= 1

    def record_session_hit(self) -> None:
        with self._lock:
            self._session_hits += 1

    def record_session_miss(self) -> None:
        with self._lock:
            self._session_misses += 1

    def record_session_coalesced(self) -> None:
        with self._lock:
            self._session_coalesced += 1

    def record_session_failure(self) -> None:
        with self._lock:
            self._session_failures += 1

    def add_queries(self, count: int) -> None:
        with self._lock:
            self._queries_answered += count

    # -------------------------------------------------------------- reading

    @property
    def session_hit_rate(self) -> float:
        """Fraction of fault-set lookups that did not build a session."""
        with self._lock:
            return self._hit_rate_locked()

    def _hit_rate_locked(self) -> float:
        lookups = self._session_hits + self._session_misses + self._session_coalesced
        if lookups == 0:
            return 0.0
        return (self._session_hits + self._session_coalesced) / lookups

    def snapshot(self) -> dict:
        """A JSON-ready view of every counter (what ``stats`` returns)."""
        with self._lock:
            total = sum(self._requests.values())
            latency = {
                op: {
                    "count": count,
                    "mean_ms": 1000.0 * self._latency_sum[op] / count,
                    "max_ms": 1000.0 * self._latency_max.get(op, 0.0),
                }
                for op, count in self._requests.items() if count
            }
            return {
                "requests_total": total,
                "requests_by_op": dict(self._requests),
                "errors_by_code": dict(self._errors),
                "latency_by_op": latency,
                "connections_opened": self._connections_opened,
                "connections_active": self._connections_active,
                "queries_answered": self._queries_answered,
                "sessions": {
                    "hits": self._session_hits,
                    "misses": self._session_misses,
                    "coalesced": self._session_coalesced,
                    "failures": self._session_failures,
                    "hit_rate": self._hit_rate_locked(),
                },
            }


__all__ = ["ServerMetrics"]
