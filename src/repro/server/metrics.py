"""Server-side metrics: requests, latency histograms, session effectiveness.

Rewired through :mod:`repro.obs.registry`: one
:class:`~repro.obs.registry.MetricsRegistry` owns every counter, gauge, and
latency histogram, so the same numbers back three views — the ``stats``
request (:meth:`ServerMetrics.snapshot`, now with per-op p50/p95/p99), the
Prometheus ``/metrics`` sidecar (the registry's native exposition, including
cumulative ``_bucket{le=...}`` histograms), and the flattened families of
:class:`repro.api.OracleStats`.

:meth:`snapshot` keeps the exact key shape of the pre-registry counters
(``requests_by_op`` / ``errors_by_code`` / ``latency_by_op`` / ...), so
dashboards, benchmarks, and the ``*_by_*`` Prometheus flattening keep
working unchanged; each ``latency_by_op`` entry additionally carries the
histogram quantiles.

The headline number is still the *session hit rate*: the fraction of
fault-set lookups served without building a new
:class:`~repro.core.batch.BatchQuerySession` (LRU hits plus single-flight
coalesced waits).  Heavy traffic over a shared fault set must drive it
toward 1.0 — that is the whole point of the session-sharing server.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.registry import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                                Histogram, MetricsRegistry)

#: Quantiles reported per op in ``latency_by_op``, with their stats keys.
LATENCY_QUANTILES = ((0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms"))


class ServerMetrics:
    """Registry-backed request/latency/session metrics for one server.

    Thread safety lives in the underlying metrics (each mutates under its
    own lock — see ``repro.analysis.LOCK_CONTRACTS``); this class only
    names them and shapes :meth:`snapshot`.  Pass a shared ``registry`` to
    co-locate these families with your own on one ``/metrics`` page.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests: Counter = self.registry.counter(
            "server_requests", "Requests handled, by operation", ("op",))
        self._errors: Counter = self.registry.counter(
            "server_errors", "Structured error responses, by error code",
            ("code",))
        self._latency: Histogram = self.registry.histogram(
            "server_request_seconds",
            "Request handling latency in seconds, by operation", ("op",),
            buckets=DEFAULT_LATENCY_BUCKETS)
        self._connections_opened: Counter = self.registry.counter(
            "server_connections_opened", "Connections accepted since start")
        self._connections_active: Gauge = self.registry.gauge(
            "server_connections_active", "Currently open client connections")
        self._sessions: Counter = self.registry.counter(
            "server_session_lookups",
            "Fault-set session lookups, by outcome", ("outcome",))
        self._queries_answered: Counter = self.registry.counter(
            "server_queries_answered", "Connectivity answers produced")

    # ------------------------------------------------------------ recording

    def record_request(self, op: str, seconds: float) -> None:
        self._requests.inc(op=op)
        self._latency.observe(seconds, op=op)

    def record_error(self, code: str) -> None:
        self._errors.inc(code=code)

    def connection_opened(self) -> None:
        self._connections_opened.inc()
        self._connections_active.inc()

    def connection_closed(self) -> None:
        """Close accounting clamps at zero: a double close (idempotent
        client teardown racing the server's own cleanup path) must never
        drive ``connections_active`` negative."""
        self._connections_active.dec(floor=0.0)

    def record_session_hit(self) -> None:
        self._sessions.inc(outcome="hit")

    def record_session_miss(self) -> None:
        self._sessions.inc(outcome="miss")

    def record_session_coalesced(self) -> None:
        self._sessions.inc(outcome="coalesced")

    def record_session_failure(self) -> None:
        self._sessions.inc(outcome="failure")

    def add_queries(self, count: int) -> None:
        self._queries_answered.inc(count)

    # -------------------------------------------------------------- reading

    @property
    def session_hit_rate(self) -> float:
        """Fraction of fault-set lookups that did not build a session."""
        return _hit_rate(_outcomes(self._sessions))

    def snapshot(self) -> dict:
        """A JSON-ready view of every counter (what ``stats`` returns).

        Same keys as the pre-registry implementation; the per-op latency
        entries gain ``p50_ms`` / ``p95_ms`` / ``p99_ms`` (interpolated
        from the fixed log-spaced buckets, so they are estimates with
        bucket-bounded error — ``mean_ms`` and ``max_ms`` stay exact).
        """
        requests = {key[0]: int(value) for key, value
                    in sorted(self._requests.values().items())}
        errors = {key[0]: int(value) for key, value
                  in sorted(self._errors.values().items())}
        latency: dict = {}
        for key, child in sorted(self._latency.children().items()):
            if not child.count:
                continue
            op = key[0]
            entry: dict = {
                "count": child.count,
                "mean_ms": 1000.0 * child.total / child.count,
                "max_ms": 1000.0 * child.max_value,
            }
            for quantile, field in LATENCY_QUANTILES:
                entry[field] = 1000.0 * self._latency.quantile(quantile, op=op)
            latency[op] = entry
        outcomes = _outcomes(self._sessions)
        return {
            "requests_total": sum(requests.values()),
            "requests_by_op": requests,
            "errors_by_code": errors,
            "latency_by_op": latency,
            "connections_opened": int(self._connections_opened.total()),
            "connections_active": int(self._connections_active.value()),
            "queries_answered": int(self._queries_answered.total()),
            "sessions": {
                "hits": outcomes.get("hit", 0),
                "misses": outcomes.get("miss", 0),
                "coalesced": outcomes.get("coalesced", 0),
                "failures": outcomes.get("failure", 0),
                "hit_rate": _hit_rate(outcomes),
            },
        }


def _outcomes(sessions: Counter) -> dict:
    """The session-lookup counter flattened to ``{outcome: int}``."""
    return {key[0]: int(value) for key, value in sessions.values().items()}


def _hit_rate(outcomes: Mapping) -> float:
    lookups = (outcomes.get("hit", 0) + outcomes.get("miss", 0)
               + outcomes.get("coalesced", 0))
    if not lookups:
        return 0.0
    return (outcomes.get("hit", 0) + outcomes.get("coalesced", 0)) / lookups


__all__ = ["LATENCY_QUANTILES", "ServerMetrics"]
