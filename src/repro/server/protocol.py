"""The wire protocol of the connectivity query server: newline-delimited JSON.

One request per line, one response line per request, UTF-8 JSON with no
embedded newlines — trivially scriptable (``nc``, ``jq``) and implementable in
any language with a socket and a JSON parser.  Requests are objects::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "connected", "s": 3, "t": 9, "faults": [[3, 4], [7, 9]], "id": 1}
    {"op": "connected_many", "pairs": [[0, 5], [2, 8]], "faults": [[0, 1]]}

and every response is an envelope that echoes the optional ``id``::

    {"ok": true, "id": 1, "result": {"connected": false}}
    {"ok": false, "error": {"code": "unknown-op", "message": "..."}}

A request may carry an optional ``trace`` field (a non-empty string of at
most :data:`MAX_TRACE_CHARS` characters): the server adopts it as the trace
id of the request's spans and echoes it verbatim in the response envelope,
so a client can correlate its own telemetry with the server's structured
span log.  Requests without one see byte-identical envelopes to the
pre-tracing protocol.

The same envelope (:func:`ok_response` / :func:`error_response`) backs the
CLI's ``--json`` output mode, so scripted callers see one machine-readable
format whether they query in process or over the wire.

Vertex identifiers on the wire are JSON strings, integers, or arrays of those
(arrays map to the tuple vertex keys the graph families produce, mirroring the
tagged key encoding of :mod:`repro.core.snapshot`).  Anything else — floats,
booleans, null, objects, over-deep nesting — is rejected with a structured
error, and so are malformed JSON, non-object requests, and oversized lines:
the server must *fail closed per request* and never kill the connection
handler on adversarial input.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import OracleError

#: Wire-protocol version, reported by ``ping``.
PROTOCOL_VERSION = 1

#: Default cap on one request line (bytes, including the newline).  A line
#: larger than this is drained and answered with ``oversized-request``.
MAX_REQUEST_BYTES = 1 << 20

#: Nesting cap for tuple vertex ids (mirrors the snapshot key codec's cap).
MAX_VERTEX_DEPTH = 16

#: Cap on the optional ``trace`` field (a propagation id, not a payload).
MAX_TRACE_CHARS = 128

# Error codes (the machine-readable half of every failure response).
E_MALFORMED = "malformed-json"
E_OVERSIZED = "oversized-request"
E_BAD_REQUEST = "bad-request"
E_UNKNOWN_OP = "unknown-op"
E_UNKNOWN_VERTEX = "unknown-vertex"
E_UNKNOWN_EDGE = "unknown-edge"
E_OVER_BUDGET = "over-budget"
E_DECODE = "label-decode-failed"
E_QUERY_FAILED = "query-failed"
E_RELOAD_FORBIDDEN = "reload-forbidden"
E_RELOAD_FAILED = "reload-failed"
E_INTERNAL = "internal-error"

#: Request types the server understands.  ``session_info`` ensures the batch
#: session for one fault set (building it if needed) and reports its
#: structure — the wire backing of the remote transport's ``batch_session``.
#: ``reload`` hot-swaps the serving snapshot (authenticated by the
#: server-configured reload token; see :meth:`QueryServer.reload_snapshot`).
KNOWN_OPS = ("ping", "stats", "connected", "connected_many", "session_info",
             "reload")


class ProtocolError(OracleError):
    """A request that must be answered with a structured error response.

    Part of the shared hierarchy (:class:`repro.errors.OracleError`) so that
    callers holding an in-process or remote oracle can catch one root type.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


# ------------------------------------------------------------- vertex codec

def vertex_from_wire(value: Any, _depth: int = 0) -> Any:
    """Convert a JSON value into a vertex key (str, int, or tuple of those)."""
    if _depth > MAX_VERTEX_DEPTH:
        raise ProtocolError(E_BAD_REQUEST, "vertex id nested deeper than %d levels"
                            % MAX_VERTEX_DEPTH)
    if isinstance(value, bool):  # bool is an int subclass; reject it first
        raise ProtocolError(E_BAD_REQUEST, "booleans are not vertex ids")
    if isinstance(value, (str, int)):
        return value
    if isinstance(value, list):
        return tuple(vertex_from_wire(part, _depth + 1) for part in value)
    raise ProtocolError(E_BAD_REQUEST, "vertex ids must be strings, integers, or "
                                       "arrays of those, got %s"
                        % type(value).__name__)


def vertex_to_wire(vertex: Any) -> Any:
    """Convert a vertex key back to its JSON representation (tuples -> arrays)."""
    if isinstance(vertex, tuple):
        return [vertex_to_wire(part) for part in vertex]
    return vertex


def _pair_list(request: dict, field: str, what: str) -> list:
    """Extract a list of ``[u, v]`` pairs (vertex pairs or fault edges)."""
    raw = request.get(field, [])
    if not isinstance(raw, list):
        raise ProtocolError(E_BAD_REQUEST, "%r must be an array of %s" % (field, what))
    pairs = []
    for entry in raw:
        if not isinstance(entry, list) or len(entry) != 2:
            raise ProtocolError(E_BAD_REQUEST, "each %s must be a two-element array"
                                % what)
        pairs.append((vertex_from_wire(entry[0]), vertex_from_wire(entry[1])))
    return pairs


# ---------------------------------------------------------------- requests

def parse_request(line: bytes) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on anything bad.

    Returns the decoded request object with a validated ``op`` field; the
    per-op payload fields are validated by the extractors below.
    """
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ProtocolError(E_MALFORMED, "request is not UTF-8: %s" % error) from error
    try:
        request = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(E_MALFORMED, "request is not valid JSON: %s" % error) from error
    if not isinstance(request, dict):
        raise ProtocolError(E_BAD_REQUEST, "request must be a JSON object, got %s"
                            % type(request).__name__)
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError(E_BAD_REQUEST, "request must carry a string 'op' field")
    request_id = request.get("id")
    if isinstance(request_id, bool) or \
            (request_id is not None and not isinstance(request_id, (str, int))):
        raise ProtocolError(E_BAD_REQUEST, "'id' must be a string or integer")
    trace = request.get("trace")
    if trace is not None and (not isinstance(trace, str) or not trace
                              or len(trace) > MAX_TRACE_CHARS):
        raise ProtocolError(E_BAD_REQUEST,
                            "'trace' must be a non-empty string of at most "
                            "%d characters" % MAX_TRACE_CHARS)
    return request


def extract_faults(request: dict) -> list:
    """The shared fault set of a query request (possibly empty).

    Self-loops are structurally invalid as fault edges (no graph has them),
    so they are rejected here with a ``bad-request`` — downstream they would
    surface as a :class:`ValueError` and be mislabeled as a budget error.
    """
    faults = _pair_list(request, "faults", "fault edge")
    for u, v in faults:
        if u == v:
            raise ProtocolError(E_BAD_REQUEST,
                                "fault edges cannot be self-loops: %r" % (u,))
    return faults


def extract_pair(request: dict) -> tuple:
    """The single ``(s, t)`` pair of a ``connected`` request."""
    if "s" not in request or "t" not in request:
        raise ProtocolError(E_BAD_REQUEST, "'connected' needs 's' and 't' fields")
    return vertex_from_wire(request["s"]), vertex_from_wire(request["t"])


def extract_pairs(request: dict) -> list:
    """The pair list of a ``connected_many`` request (must be non-empty)."""
    pairs = _pair_list(request, "pairs", "query pair")
    if not pairs:
        raise ProtocolError(E_BAD_REQUEST, "'connected_many' needs a non-empty "
                                           "'pairs' array")
    return pairs


# --------------------------------------------------------------- responses

def ok_response(result: Any, request_id: Any = None,
                trace: Any = None) -> dict:
    """The success envelope shared by the server and the CLI ``--json`` mode.

    ``trace`` echoes a client-supplied trace id; a client that sends none
    sees byte-identical envelopes to the pre-tracing protocol.
    """
    response = {"ok": True, "result": result}
    if request_id is not None:
        response["id"] = request_id
    if trace is not None:
        response["trace"] = trace
    return response


def error_response(code: str, message: str, request_id: Any = None,
                   trace: Any = None) -> dict:
    """The failure envelope (structured code + human-readable message)."""
    response = {"ok": False, "error": {"code": code, "message": message}}
    if request_id is not None:
        response["id"] = request_id
    if trace is not None:
        response["trace"] = trace
    return response


def encode_line(payload: dict) -> bytes:
    """Serialize one protocol object to a compact, newline-terminated line."""
    return json.dumps(payload, separators=(",", ":"), default=str).encode("utf-8") + b"\n"


def dump_envelope(payload: dict) -> str:
    """The CLI ``--json`` rendering: one compact line, no trailing newline."""
    return json.dumps(payload, separators=(",", ":"), default=str)


__all__ = [
    "PROTOCOL_VERSION", "MAX_REQUEST_BYTES", "MAX_TRACE_CHARS",
    "MAX_VERTEX_DEPTH", "KNOWN_OPS",
    "E_MALFORMED", "E_OVERSIZED", "E_BAD_REQUEST", "E_UNKNOWN_OP",
    "E_UNKNOWN_VERTEX", "E_UNKNOWN_EDGE", "E_OVER_BUDGET", "E_DECODE",
    "E_QUERY_FAILED", "E_RELOAD_FORBIDDEN", "E_RELOAD_FAILED", "E_INTERNAL",
    "ProtocolError", "vertex_from_wire", "vertex_to_wire", "parse_request",
    "extract_faults", "extract_pair", "extract_pairs",
    "ok_response", "error_response", "encode_line", "dump_envelope",
]
