"""Client library for the connectivity query server.

Two clients over the same newline-JSON protocol:

* :class:`AsyncQueryClient` — asyncio streams, for event-loop callers and the
  test suite.
* :class:`QueryClient` — a plain blocking socket, for scripts, the
  ``repro client-query`` CLI, and the benchmarks (safe to use one instance
  per thread; instances are not shared between threads).

Both raise :class:`ServerError` when the server answers ``ok: false``, with
the structured error code preserved, and :class:`ProtocolViolation` if the
server's reply is not a valid response line (which indicates a bug or a
non-server endpoint, not a query failure).

Both are context managers (``with QueryClient(...)`` /
``async with await AsyncQueryClient.connect(...)``) and ``close()`` is
idempotent — closing twice, or closing after the peer vanished, never raises.

Most callers should prefer the transport-agnostic
:class:`repro.api.RemoteOracle` (``Oracle.connect``), which wraps
:class:`QueryClient` and maps :class:`ServerError` into the shared
:class:`~repro.errors.OracleError` hierarchy.

**Tracing.**  Every request is tagged with a trace id when one is available:
an explicit ``trace_id`` constructor argument wins, else the ambient
:func:`repro.obs.tracing.current_trace_id` (so queries issued inside an
``obs.span(...)`` block are correlated automatically), else the request goes
untagged and the wire bytes are identical to the pre-tracing protocol.  The
server echoes the id in its envelope; the echo of the most recent response
is kept on ``last_trace``.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Iterable, Sequence

from repro.obs.tracing import current_trace_id
from repro.server.protocol import (PROTOCOL_VERSION, encode_line,
                                   vertex_to_wire)


class ServerError(Exception):
    """The server answered with a structured error response."""

    def __init__(self, code: str, message: str):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.message = message


class ProtocolViolation(Exception):
    """The endpoint did not speak the response protocol (truncated/garbage)."""


def _edges_to_wire(edges: Iterable) -> list:
    return [[vertex_to_wire(u), vertex_to_wire(v)] for u, v in edges]


def _decode_envelope(line: bytes) -> dict:
    """Parse one response line into its envelope (no ok/error unwrapping)."""
    if not line:
        raise ProtocolViolation("connection closed before a response arrived")
    try:
        response = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolViolation("unparseable response line: %s" % error) from error
    if not isinstance(response, dict) or "ok" not in response:
        raise ProtocolViolation("response is not a protocol envelope: %r" % response)
    return response


class _RequestMixin:
    """Shared request builders; subclasses implement ``request(op, **fields)``."""

    #: Explicit trace id for outgoing requests (overrides the ambient span).
    trace_id: str | None = None
    #: The ``trace`` echo of the most recent response envelope (or None).
    last_trace: Any = None

    def _connected_request(self, s, t, faults) -> dict:
        return dict(s=vertex_to_wire(s), t=vertex_to_wire(t),
                    faults=_edges_to_wire(faults))

    def _connected_many_request(self, pairs, faults) -> dict:
        return dict(pairs=_edges_to_wire(pairs), faults=_edges_to_wire(faults))

    def _request_payload(self, op: str, request_id: int, fields: dict) -> dict:
        """Assemble one request object, tagging the active trace id if any."""
        payload: dict = {"op": op, "id": request_id}
        trace = self.trace_id if self.trace_id is not None \
            else current_trace_id()
        if trace is not None:
            payload["trace"] = trace
        payload.update(fields)
        return payload

    def _finish_response(self, line: bytes) -> Any:
        """Decode one envelope, record its trace echo, unwrap or raise."""
        envelope = _decode_envelope(line)
        self.last_trace = envelope.get("trace")
        if envelope["ok"]:
            return envelope.get("result")
        error = envelope.get("error") or {}
        raise ServerError(str(error.get("code", "unknown")),
                          str(error.get("message", "")))


#: Stream limit for one response line.  A ``connected_many`` answer grows
#: with the pair count, so the asyncio default (64 KiB) is far too small;
#: readline() past the limit raises instead of returning.
MAX_RESPONSE_BYTES = 1 << 24


class AsyncQueryClient(_RequestMixin):
    """Asyncio client: ``await AsyncQueryClient.connect(host, port)``."""

    def __init__(self, reader, writer, trace_id: str | None = None):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._closed = False
        self.trace_id = trace_id
        self.last_trace = None

    @classmethod
    async def connect(cls, host: str, port: int,
                      limit: int = MAX_RESPONSE_BYTES,
                      trace_id: str | None = None) -> "AsyncQueryClient":
        reader, writer = await asyncio.open_connection(host, port, limit=limit)
        return cls(reader, writer, trace_id=trace_id)

    async def request(self, op: str, **fields) -> Any:
        """Send one request, await its response; returns the ``result``."""
        self._next_id += 1
        payload = self._request_payload(op, self._next_id, fields)
        self._writer.write(encode_line(payload))
        await self._writer.drain()
        line = await self._reader.readline()
        return self._finish_response(line.rstrip(b"\n"))

    async def ping(self) -> dict:
        return await self.request("ping")

    async def stats(self) -> dict:
        return await self.request("stats")

    async def connected(self, s, t, faults: Iterable = ()) -> bool:
        result = await self.request("connected", **self._connected_request(s, t, faults))
        return result["connected"]

    async def connected_many(self, pairs: Sequence[tuple],
                             faults: Iterable = ()) -> list[bool]:
        result = await self.request("connected_many",
                                    **self._connected_many_request(pairs, faults))
        return result["connected"]

    async def session_info(self, faults: Iterable = ()) -> dict:
        """Ensure the server-side batch session for ``faults``; returns its
        structure (``num_components`` / ``num_fragments``)."""
        return await self.request("session_info", faults=_edges_to_wire(faults))

    async def reload(self, token: str, path: str | None = None) -> dict:
        """Hot-swap the serving snapshot (requires the server's reload token).

        ``path``, if given, must match the server's configured snapshot path
        (the op cannot point the server at a different file)."""
        fields: dict = {"token": token}
        if path is not None:
            fields["path"] = path
        return await self.request("reload", **fields)

    async def close(self) -> None:
        """Close the connection; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except OSError:
            pass  # the peer is already gone; the socket is closed regardless

    async def __aenter__(self) -> "AsyncQueryClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class QueryClient(_RequestMixin):
    """Blocking client: one TCP connection, synchronous request/response."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 trace_id: str | None = None):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._closed = False
        self.trace_id = trace_id
        self.last_trace = None

    def request(self, op: str, **fields) -> Any:
        self._next_id += 1
        payload = self._request_payload(op, self._next_id, fields)
        self._file.write(encode_line(payload))
        self._file.flush()
        line = self._file.readline()
        return self._finish_response(line.rstrip(b"\n"))

    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        return self.request("stats")

    def connected(self, s, t, faults: Iterable = ()) -> bool:
        return self.request("connected", **self._connected_request(s, t, faults))["connected"]

    def connected_many(self, pairs: Sequence[tuple],
                       faults: Iterable = ()) -> list[bool]:
        return self.request("connected_many",
                            **self._connected_many_request(pairs, faults))["connected"]

    def session_info(self, faults: Iterable = ()) -> dict:
        """Ensure the server-side batch session for ``faults``; returns its
        structure (``num_components`` / ``num_fragments``)."""
        return self.request("session_info", faults=_edges_to_wire(faults))

    def reload(self, token: str, path: str | None = None) -> dict:
        """Hot-swap the serving snapshot (requires the server's reload token).

        ``path``, if given, must match the server's configured snapshot path
        (the op cannot point the server at a different file)."""
        fields: dict = {"token": token}
        if path is not None:
            fields["path"] = path
        return self.request("reload", **fields)

    def close(self) -> None:
        """Close the connection; safe to call more than once, even after the
        peer died (flushing buffered bytes to a dead socket must not raise)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["AsyncQueryClient", "QueryClient", "ServerError", "ProtocolViolation",
           "MAX_RESPONSE_BYTES", "PROTOCOL_VERSION"]
