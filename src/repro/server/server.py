"""The asyncio connectivity query server.

A server process wraps one oracle — in production a
:class:`~repro.core.snapshot.RehydratedOracle` loaded from an ``FTCS``
snapshot at startup, never a fresh construction — and serves the
newline-JSON protocol of :mod:`repro.server.protocol` to any number of
concurrent clients.  Per-connection handlers are cheap coroutines; all oracle
work (session construction, label decoding, component lookups) runs on the
:class:`~repro.server.session_manager.SessionManager` worker pool, and
requests sharing a canonical fault set share one
:class:`~repro.core.batch.BatchQuerySession`.

Adversarial input fails closed per request: malformed JSON, oversized lines,
unknown ops, and bad vertex ids each produce one structured error response on
the same connection — a hostile line never kills the handler, and a handler
crash (a bug) is answered with ``internal-error`` rather than a dropped
connection.

Three entry points:

* :class:`QueryServer` — the asyncio object (``await start()`` / ``close()``),
  used directly by asyncio applications and the test suite.
* :class:`BackgroundServer` — runs a :class:`QueryServer` on a dedicated
  thread with its own event loop, for synchronous embedders and benchmarks.
* :func:`run_server` — the blocking CLI entry point (``repro serve``) with
  signal-triggered graceful shutdown.
"""

from __future__ import annotations

import asyncio
import contextlib
import hmac
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.core.query import QueryFailure
from repro.core.serialize import LabelDecodeError
from repro.obs.http import ObsHTTPServer
from repro.obs.prometheus import render_stats_tree
from repro.obs.tracing import Tracer
from repro.server import protocol
from repro.server.protocol import (ProtocolError, encode_line, error_response,
                                   ok_response, parse_request)
from repro.server.session_manager import SessionManager

#: How much is read from the socket at a time while assembling lines.
_READ_CHUNK = 1 << 16


class QueryServer:
    """Serve one oracle's ``connected`` / ``connected_many`` over TCP."""

    def __init__(self, oracle, host: str = "127.0.0.1", port: int = 0,
                 max_sessions: int | None = None,
                 max_request_bytes: int = protocol.MAX_REQUEST_BYTES,
                 executor=None, metrics_port: int | None = None,
                 metrics_host: str | None = None,
                 tracer: Tracer | None = None,
                 slow_request_seconds: float = 1.0,
                 reuse_port: bool = False,
                 snapshot_path: str | None = None,
                 reload_token: str | None = None):
        self._requested_host = host
        self._requested_port = port
        # SO_REUSEPORT lets N sibling server processes bind one port and have
        # the kernel balance accepted connections across them — the
        # ``repro serve --workers N`` front-end (:mod:`repro.pool.frontend`).
        self._reuse_port = reuse_port
        self.max_request_bytes = max_request_bytes
        # One tracer spans the whole request path: the dispatch span makes
        # the trace id current, the session manager's build/decode spans
        # inherit it.  Spans at or above ``slow_request_seconds`` log at
        # WARNING (the slow-request log).
        self.tracer = tracer if tracer is not None else Tracer(
            service="repro.server", slow_seconds=slow_request_seconds)
        self.sessions = SessionManager(oracle, max_sessions=max_sessions,
                                       executor=executor, tracer=self.tracer)
        # Hot-reload seam: the server reloads only from its *configured*
        # snapshot path (a wire request cannot point it at an arbitrary
        # file), and wire-triggered reloads additionally require the
        # server-side token.  SIGHUP (local authority) needs no token.
        self._snapshot_path = None if snapshot_path is None \
            else str(snapshot_path)
        self._reload_token = reload_token
        self._reload_serial = asyncio.Lock()
        self.metrics = self.sessions.metrics
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self.host: str | None = None
        self.port: int | None = None
        # The /metrics + /healthz sidecar; disabled unless a port is given
        # (0 binds an ephemeral one, reported on ``metrics_port``).
        self._metrics_requested = (
            metrics_host if metrics_host is not None else host, metrics_port)
        self._metrics_server: ObsHTTPServer | None = None
        self.metrics_host: str | None = None
        self.metrics_port: int | None = None
        self._handlers: dict[str, Callable] = {
            "ping": self._op_ping,
            "stats": self._op_stats,
            "connected": self._op_connected,
            "connected_many": self._op_connected_many,
            "session_info": self._op_session_info,
            "reload": self._op_reload,
        }

    @property
    def oracle(self):
        """The *currently serving* oracle (swapped atomically by reloads).

        A read-through to the session manager — the single owner of the
        oracle pointer — so the server can never serve stale state; request
        handlers must not cache this across an ``await``.
        """
        return self.sessions.oracle

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        Pass ``port=0`` to bind an ephemeral port (tests, parallel CI jobs).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        # reuse_port is only forwarded when requested: passing it at all
        # raises on platforms without SO_REUSEPORT, and the default
        # single-process path must keep working there.
        extra: dict[str, Any] = {"reuse_port": True} if self._reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self._requested_host,
            self._requested_port, **extra)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        sidecar_host, sidecar_port = self._metrics_requested
        if sidecar_port is not None:
            self._metrics_server = ObsHTTPServer(
                self.render_metrics, self.health,
                host=sidecar_host, port=sidecar_port)
            self.metrics_host, self.metrics_port = \
                await self._metrics_server.start()
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drop open connections, and stop the worker pool."""
        if self._metrics_server is not None:
            await self._metrics_server.close()
            self._metrics_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
            # Narrow on purpose: wait_closed only raises transport-level
            # OSErrors here; anything broader must not be swallowed (RPL002).
            with contextlib.suppress(OSError):
                await writer.wait_closed()
        self._writers.clear()
        self.sessions.close()

    # ---------------------------------------------------------- connections

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.connection_opened()
        self._writers.add(writer)
        carry = bytearray()
        try:
            while True:
                line, oversized = await self._read_line(reader, carry)
                if oversized:
                    self.metrics.record_error(protocol.E_OVERSIZED)
                    await self._send(writer, error_response(
                        protocol.E_OVERSIZED,
                        "request line exceeds %d bytes" % self.max_request_bytes))
                    if line is None:  # EOF while draining the oversized line
                        break
                    continue
                if line is None:
                    break
                if not line.strip():
                    continue
                response = await self._dispatch(line)
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # client went away (or the server is shutting down)
        finally:
            self._writers.discard(writer)
            self.metrics.connection_closed()
            writer.close()
            with contextlib.suppress(OSError):
                await writer.wait_closed()

    async def _read_line(self, reader: asyncio.StreamReader,
                         carry: bytearray) -> tuple[bytes | None, bool]:
        """Read one newline-terminated line with an explicit byte cap.

        Buffers in ``carry`` (bytes past a newline are kept for the next
        call, so pipelined requests survive).  Returns ``(line, False)``
        normally, ``(None, False)`` at EOF, and ``(b"", True)`` after
        draining a line that exceeded ``max_request_bytes`` — the caller
        answers with a structured error and keeps the connection.
        """
        while True:
            newline = carry.find(b"\n")
            if newline != -1:
                if newline > self.max_request_bytes:
                    del carry[:newline + 1]
                    return b"", True
                line = bytes(carry[:newline])
                del carry[:newline + 1]
                return line, False
            if len(carry) > self.max_request_bytes:
                # Drain the rest of the oversized line, preserving anything
                # already received past its terminating newline.
                while True:
                    newline = carry.find(b"\n")
                    if newline != -1:
                        del carry[:newline + 1]
                        return b"", True
                    carry.clear()
                    chunk = await reader.read(_READ_CHUNK)
                    if not chunk:
                        return None, True
                    carry += chunk
            chunk = await reader.read(_READ_CHUNK)
            if not chunk:
                if carry:  # final request without a trailing newline
                    line = bytes(carry)
                    carry.clear()
                    return line, False
                return None, False
            carry += chunk

    async def _send(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(encode_line(payload))
        await writer.drain()

    # ------------------------------------------------------------- dispatch

    async def _dispatch(self, line: bytes) -> dict:
        """Turn one request line into one response object (never raises).

        A client-supplied ``trace`` id is adopted by the dispatch span
        (and therefore by the session build/decode spans underneath) and
        echoed in the response envelope — success or error.  Tracing only
        observes the handler: the answer bytes are identical with the
        tracer enabled, disabled, or replaced.
        """
        request_id: Any = None
        trace: Any = None
        # Metrics are keyed by op, so only a *known* op name may become a
        # counter key — attacker-chosen strings must not grow the Counters.
        op = "invalid"
        start = time.perf_counter()
        try:
            request = parse_request(line)
            request_id = request.get("id")
            trace = request.get("trace")
            handler = self._handlers.get(request["op"])
            if handler is None:
                raise ProtocolError(protocol.E_UNKNOWN_OP,
                                    "unknown op %r (known: %s)"
                                    % (request["op"], ", ".join(protocol.KNOWN_OPS)))
            op = request["op"]
            with self.tracer.span("server." + op, trace_id=trace, op=op,
                                  request_id=request_id):
                result = await handler(request)
            response = ok_response(result, request_id, trace=trace)
        except ProtocolError as error:
            self.metrics.record_error(error.code)
            response = error_response(error.code, str(error), request_id,
                                      trace=trace)
        except KeyError as error:
            # Unknown vertex/edge ids surface as KeyError from label lookups.
            message = error.args[0] if error.args else str(error)
            code = protocol.E_UNKNOWN_EDGE if str(message).startswith("edge") \
                else protocol.E_UNKNOWN_VERTEX
            self.metrics.record_error(code)
            response = error_response(code, str(message), request_id,
                                      trace=trace)
        except LabelDecodeError as error:
            # Checked before ValueError: LabelDecodeError *is* a ValueError,
            # so the other order would mislabel corruption as over-budget.
            self.metrics.record_error(protocol.E_DECODE)
            response = error_response(protocol.E_DECODE,
                                      "label data is corrupt: %s" % error,
                                      request_id, trace=trace)
        except ValueError as error:
            # Typically: more distinct faults than the scheme's budget f.
            self.metrics.record_error(protocol.E_OVER_BUDGET)
            response = error_response(protocol.E_OVER_BUDGET, str(error),
                                      request_id, trace=trace)
        except QueryFailure as error:
            self.metrics.record_error(protocol.E_QUERY_FAILED)
            response = error_response(protocol.E_QUERY_FAILED, str(error),
                                      request_id, trace=trace)
        except Exception as error:  # fail closed per request, never per connection
            self.metrics.record_error(protocol.E_INTERNAL)
            response = error_response(protocol.E_INTERNAL,
                                      "%s: %s" % (type(error).__name__, error),
                                      request_id, trace=trace)
        self.metrics.record_request(op, time.perf_counter() - start)
        return response

    # ------------------------------------------------------------------ ops

    async def _op_ping(self, request: dict) -> dict:
        return {"pong": True, "protocol": protocol.PROTOCOL_VERSION}

    async def _op_stats(self, request: dict) -> dict:
        return {"server": self.sessions.stats(), "oracle": self._oracle_info()}

    def _oracle_info(self) -> dict:
        oracle = self.oracle
        info: dict = {"max_faults": oracle.max_faults}
        for attribute in ("num_vertices", "num_edges"):
            method = getattr(oracle, attribute, None)
            if callable(method):
                info[attribute.removeprefix("num_")] = method()
        config = getattr(oracle, "config", None)
        if config is not None:
            info["variant"] = config.variant.value
        return info

    # ------------------------------------------------------------- sidecar

    def render_metrics(self) -> str:
        """The ``GET /metrics`` payload in the text exposition format.

        The registry renders its own families natively (counters with
        ``_total``, the per-op latency histogram with cumulative
        ``_bucket{le=...}`` lines); the session cache, hot keys, and oracle
        facts — numbers the registry does not own — ride along as flattened
        gauges under disjoint family names.
        """
        stats = self.sessions.stats()
        # ``inflight_builds`` is deliberately absent: the registry already
        # owns it as the ``server_inflight_builds`` gauge, and one exposition
        # must never emit two families under one name.
        extras = {
            "server": {key: stats[key] for key in
                       ("session_cache", "session_hot_keys_by_key",
                        "session_hot_keys_tracked")
                       if key in stats},
            "oracle": self._oracle_info(),
        }
        text = self.metrics.registry.to_prometheus()
        extra_lines = render_stats_tree(extras)
        if extra_lines:
            text += "\n".join(extra_lines) + "\n"
        return text

    def health(self) -> tuple[bool, dict]:
        """The ``GET /healthz`` readiness probe: ``(ready, payload)``.

        Ready means the listener is accepting and the oracle answers a
        cheap liveness probe (its session-cache info); a wedged oracle
        degrades the probe to 503 without touching the query path.
        """
        ready = self._server is not None and self._server.is_serving()
        payload: dict = {"status": "ok",
                         "protocol": protocol.PROTOCOL_VERSION,
                         "serving": ready}
        try:
            payload["oracle"] = self._oracle_info()
            payload["session_cache"] = self.oracle.session_cache_info()
        except Exception as error:
            payload["oracle_error"] = "%s: %s" % (type(error).__name__, error)
            ready = False
        if not ready:
            payload["status"] = "unavailable"
        return ready, payload

    async def _op_connected(self, request: dict) -> dict:
        source, target = protocol.extract_pair(request)
        faults = protocol.extract_faults(request)
        answers = await self.sessions.connected_many([(source, target)], faults)
        return {"connected": answers[0]}

    async def _op_connected_many(self, request: dict) -> dict:
        pairs = protocol.extract_pairs(request)
        faults = protocol.extract_faults(request)
        answers = await self.sessions.connected_many(pairs, faults)
        return {"connected": answers, "count": len(answers)}

    async def _op_session_info(self, request: dict) -> dict:
        """Ensure the batch session for one fault set and report its structure.

        Backs the remote transport's ``batch_session``: a
        :class:`~repro.api.RemoteBatchSession` is this answer plus the pinned
        fault list.  A :class:`QueryFailure` during the eager decomposition
        surfaces as the structured ``query-failed`` error, mirroring what the
        local ``batch_session`` raises.
        """
        faults = protocol.extract_faults(request)
        session = await self.sessions.session(faults)
        return {"num_components": session.num_components(),
                "num_fragments": session.num_fragments(),
                "queries_answered": session.queries_answered}

    # -------------------------------------------------------------- reload

    async def _op_reload(self, request: dict) -> dict:
        """The wire trigger for a hot swap — authenticated by configuration.

        Disabled unless the server was started with a reload token; the
        client must echo that exact token, and an optional ``path`` field
        must equal the server's *configured* snapshot path (a request can
        confirm what it expects to reload, never choose a different file).
        Local operators use SIGHUP instead, which needs no token.
        """
        if self._reload_token is None:
            raise ProtocolError(protocol.E_RELOAD_FORBIDDEN,
                                "wire reload is disabled (server started "
                                "without a reload token); send SIGHUP instead")
        token = request.get("token")
        if not isinstance(token, str) or \
                not hmac.compare_digest(token, self._reload_token):
            raise ProtocolError(protocol.E_RELOAD_FORBIDDEN,
                                "bad reload token")
        path = request.get("path")
        if path is not None and path != self._snapshot_path:
            raise ProtocolError(
                protocol.E_RELOAD_FORBIDDEN,
                "reload path %r does not match the configured snapshot %r"
                % (path, self._snapshot_path))
        return await self.reload_snapshot(source="wire")

    async def reload_snapshot(self, source: str = "signal") -> dict:
        """Hot-swap the serving oracle from the configured snapshot path.

        Zero downtime by construction: the replacement loads on the worker
        pool while the old oracle keeps answering, the pointer flip is
        atomic (:meth:`SessionManager.swap_oracle`), in-flight requests stay
        pinned to the generation they started on, and client connections
        never close.  A load failure leaves the old oracle serving and
        surfaces as the structured ``reload-failed`` error.  After the swap
        the hottest live fault sets are replayed against the new labels so
        the session cache does not go cold.
        """
        if self._snapshot_path is None:
            raise ProtocolError(protocol.E_RELOAD_FAILED,
                                "server was started without a snapshot path; "
                                "there is nothing to reload from")
        async with self._reload_serial:
            from repro.api import Oracle

            path = self._snapshot_path
            started = time.perf_counter()
            try:
                epoch = await self.sessions.swap_oracle(
                    lambda: Oracle.load(path))
            except (OSError, LabelDecodeError) as error:
                raise ProtocolError(
                    protocol.E_RELOAD_FAILED,
                    "reload failed (%s: %s); the previous snapshot keeps "
                    "serving" % (type(error).__name__, error)) from error
            rewarmed = await self.rewarm_hot_sessions()
            seconds = time.perf_counter() - started
            self.metrics.registry.gauge(
                "server_last_reload_seconds",
                "Duration of the most recent snapshot hot swap").set(seconds)
            return {"reloaded": True, "epoch": epoch, "snapshot": path,
                    "source": source, "seconds": seconds,
                    "rewarmed_sessions": rewarmed}

    async def rewarm_hot_sessions(self, top: int | None = None) -> int:
        """Replay the hottest live fault sets through the session cache.

        Called right after a hot swap (the new oracle's LRU starts cold) and
        by the optional re-warm timer of :func:`run_server`.  Best-effort on
        purpose: hot sets recorded against a previous snapshot may reference
        edges that no longer exist, and a re-warm must never take the server
        down — such sets simply stay cold.
        """
        fault_sets = self.sessions.hot_fault_sets(top)
        if not fault_sets:
            return 0
        try:
            return await self.sessions.prewarm_sessions(fault_sets)
        except (KeyError, ValueError, QueryFailure, LabelDecodeError):
            return 0


# ------------------------------------------------------- synchronous harness

class BackgroundServer:
    """A :class:`QueryServer` on its own thread + event loop.

    For synchronous embedders: benchmarks, the blocking client's tests, or an
    application that wants to expose its oracle without adopting asyncio::

        with BackgroundServer(oracle, max_sessions=64) as server:
            client = QueryClient(server.host, server.port)
    """

    def __init__(self, oracle, host: str = "127.0.0.1", port: int = 0,
                 **server_kwargs):
        self._server = QueryServer(oracle, host=host, port=port, **server_kwargs)
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, name="repro-server",
                                        daemon=True)

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def metrics(self):
        return self._server.metrics

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self._server.start()
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self._server.close()


# --------------------------------------------------------------- CLI driver

def run_server(oracle, host: str = "127.0.0.1", port: int = 0,
               max_sessions: int | None = None,
               max_request_bytes: int = protocol.MAX_REQUEST_BYTES,
               jobs: int | None = None,
               announce: Callable[[dict], None] | None = None,
               metrics_port: int | None = None,
               reuse_port: bool = False,
               worker_index: int | None = None,
               hot_keys_file: str | None = None,
               prewarm_top: int | None = None,
               snapshot_path: str | None = None,
               reload_token: str | None = None,
               rewarm_interval: float | None = None) -> int:
    """Blocking entry point behind ``repro serve``.

    Starts the server, reports the bound address through ``announce`` (the
    CLI prints it as a JSON line so scripts can wait for readiness and learn
    an ephemeral port), and serves until SIGTERM/SIGINT, then shuts down
    cleanly.  ``jobs`` bounds the worker threads that build batch sessions
    (the CLI's ``--jobs``; default lets the executor size itself).
    ``metrics_port`` (the CLI's ``--metrics-port``) enables the
    ``/metrics`` + ``/healthz`` sidecar; its bound port rides on the
    announce event.  Returns a process exit code.

    The :mod:`repro.pool` front-end runs this same function once per worker
    process: ``reuse_port`` joins the shared SO_REUSEPORT listener group and
    ``worker_index`` stamps the ``server_worker_info{worker=...}`` gauge so
    each sidecar's exposition identifies its process.  ``hot_keys_file``
    (maintained for plain ``repro serve`` too) closes the restart loop: the
    hottest fault sets recorded there by the previous run are pre-warmed via
    :meth:`~repro.server.session_manager.SessionManager.prewarm_sessions`
    before readiness is announced, and the current run's hottest sets are
    written back on graceful shutdown.  ``prewarm_top`` bounds both
    directions (default: the session manager's top-K).

    ``snapshot_path`` arms zero-downtime hot reload: SIGHUP swaps the
    serving oracle for a fresh load of that same path (see
    :meth:`QueryServer.reload_snapshot`), and ``reload_token`` additionally
    enables the authenticated ``reload`` wire op.  ``rewarm_interval``
    (seconds) starts a timer that periodically replays the hottest live
    fault sets through the session cache, so long-lived servers stay warm
    as traffic shifts — independently of reloads, which always re-warm.
    """
    executor = None
    if jobs is not None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1, got %d" % jobs)
        executor = ThreadPoolExecutor(max_workers=jobs,
                                      thread_name_prefix="repro-session")
    prewarm_sets: list = []
    if hot_keys_file is not None:
        from repro.pool.prewarm import load_hot_fault_sets

        prewarm_sets = load_hot_fault_sets(hot_keys_file)
        if prewarm_top is not None:
            prewarm_sets = prewarm_sets[:prewarm_top]
    # Filled inside _main at shutdown; persisted after the loop exits (file
    # writes stay off the event loop).
    shutdown_state: dict = {}

    async def _main() -> None:
        server = QueryServer(oracle, host=host, port=port,
                             max_sessions=max_sessions,
                             max_request_bytes=max_request_bytes,
                             executor=executor, metrics_port=metrics_port,
                             reuse_port=reuse_port,
                             snapshot_path=snapshot_path,
                             reload_token=reload_token)
        bound_host, bound_port = await server.start()
        if worker_index is not None:
            server.metrics.registry.gauge(
                "server_worker_info",
                "Identity of this serving worker process",
                labelnames=("worker",)).set(1.0, worker=str(worker_index))
        prewarmed = None
        if prewarm_sets:
            try:
                prewarmed = await server.sessions.prewarm_sessions(prewarm_sets)
            except (KeyError, ValueError, QueryFailure, LabelDecodeError):
                # A stale pre-warm file (snapshot swapped, budget changed)
                # must never block serving; cold sessions build on demand.
                prewarmed = 0
        if announce is not None:
            event = {"event": "serving", "host": bound_host,
                     "port": bound_port, "max_faults": oracle.max_faults,
                     "vertices": server_vertex_count(oracle)}
            if server.metrics_port is not None:
                event["metrics_port"] = server.metrics_port
            if worker_index is not None:
                event["worker"] = worker_index
            if prewarmed is not None:
                event["prewarmed_sessions"] = prewarmed
            announce(event)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        # SIGHUP = hot reload, local authority (the pool parent relays it
        # to every worker).  The handler only schedules the coroutine; the
        # strong references keep in-flight reload tasks from being GC'd.
        pending_reloads: set[asyncio.Task] = set()
        if snapshot_path is not None and hasattr(signal, "SIGHUP"):
            def _on_sighup() -> None:
                task = loop.create_task(_signal_reload(server, announce))
                pending_reloads.add(task)
                task.add_done_callback(pending_reloads.discard)

            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signal.SIGHUP, _on_sighup)
        rewarm_task: asyncio.Task | None = None
        if rewarm_interval is not None and rewarm_interval > 0:
            rewarm_task = loop.create_task(
                _rewarm_loop(server, rewarm_interval, prewarm_top))
        try:
            await stop.wait()
        finally:
            if rewarm_task is not None:
                rewarm_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await rewarm_task
            for task in list(pending_reloads):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
            if hot_keys_file is not None:
                shutdown_state["hot_fault_sets"] = \
                    server.sessions.hot_fault_sets(prewarm_top)
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # platforms without add_signal_handler
        pass
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
        hot_fault_sets = shutdown_state.get("hot_fault_sets")
        if hot_keys_file is not None and hot_fault_sets:
            from repro.pool.prewarm import save_hot_fault_sets

            save_hot_fault_sets(hot_keys_file, hot_fault_sets)
    return 0


async def _signal_reload(server: QueryServer,
                         announce: Callable[[dict], None] | None) -> None:
    """SIGHUP body: swap, then report the outcome through ``announce``.

    A failed reload (missing/corrupt file) must never take the process
    down — the old snapshot keeps serving and the failure is announced
    and counted (``server_errors{code="reload-failed"}``).
    """
    try:
        result = await server.reload_snapshot(source="signal")
    except ProtocolError as error:
        server.metrics.record_error(error.code)
        event: dict = {"event": "reload-failed", "error": str(error)}
    else:
        event = {"event": "reloaded"}
        event.update(result)
    if announce is not None:
        announce(event)


async def _rewarm_loop(server: QueryServer, interval: float,
                       top: int | None) -> None:
    """The hot-key re-warm timer: every ``interval`` seconds, replay the
    hottest live fault sets so their sessions stay resident as the LRU
    churns.  Cancelled (never errors out) at shutdown."""
    while True:
        await asyncio.sleep(interval)
        await server.rewarm_hot_sessions(top)


def server_vertex_count(oracle) -> int | None:
    """Vertex count if the oracle exposes one (snapshots do), else ``None``."""
    method = getattr(oracle, "num_vertices", None)
    return method() if callable(method) else None


__all__ = ["QueryServer", "BackgroundServer", "run_server"]
