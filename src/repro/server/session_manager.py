"""Sharing batch-query sessions between concurrent clients.

Everything expensive about a query depends only on the fault set ``F``
(:mod:`repro.core.batch`), so a server under heavy traffic wins exactly when
concurrent requests carrying the same canonical fault set share one
:class:`~repro.core.batch.BatchQuerySession`.  :class:`SessionManager` makes
that sharing safe and non-blocking on top of the oracle's (lock-protected)
session LRU:

* **Shared LRU** — sessions live in the oracle's own ``batch_session`` cache,
  keyed by :func:`~repro.core.query.canonical_fault_key`, so the server, the
  in-process API, and any other thread see one cache with one eviction policy
  (``max_sessions`` resizes it).
* **Executor offload** — constructing a session decodes the full component
  decomposition; that work runs on a worker thread, never on the event loop.
* **Single-flight** — a thundering herd of requests for one *novel* fault set
  triggers exactly one construction; every other request awaits the same
  future and is counted as ``coalesced`` in the metrics.
* **Hot swap** — :meth:`SessionManager.swap_oracle` atomically replaces the
  oracle behind the manager (the zero-downtime reload of ``repro serve``):
  the replacement is constructed off-loop, every in-flight request stays
  pinned to the oracle it started on (a lease per request), and the old
  oracle is closed only once its last lease drains.  ``stats()`` reports the
  monotonically increasing ``snapshot_epoch``.
"""

from __future__ import annotations

import asyncio
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from repro.core.batch import BatchQuerySession
from repro.core.query import QueryFailure
from repro.obs.tracing import Tracer
from repro.server.metrics import ServerMetrics


class SessionManager:
    """Concurrency front-end over one oracle's batch-session LRU.

    ``oracle`` is anything with the :class:`~repro.core.ftc.LabelBackedQueries`
    surface — a live :class:`~repro.core.ftc.FTCLabeling` or (the server case)
    a :class:`~repro.core.snapshot.RehydratedOracle`.  All methods that touch
    the oracle are coroutines; the oracle work itself runs on the executor.
    """

    #: Approximate-top-K bound: once this many distinct fault-set keys are
    #: tracked, novel keys are no longer admitted (heavy hitters by then are
    #: already in the table, and the table must not grow with traffic).
    HOT_KEY_TRACK_LIMIT = 1024

    #: How many of the hottest fault-set keys ``stats`` reports.
    HOT_KEY_TOP_K = 10

    def __init__(self, oracle, max_sessions: int | None = None,
                 executor: ThreadPoolExecutor | None = None,
                 metrics: ServerMetrics | None = None,
                 tracer: Tracer | None = None):
        self.oracle = oracle
        self._max_sessions = max_sessions
        if max_sessions is not None:
            if max_sessions < 1:
                raise ValueError("max_sessions must be at least 1")
            # Instance attribute shadows the class default; the oracle's own
            # LRU (shared with in-process callers) enforces the bound.
            oracle.SESSION_CACHE_SIZE = max_sessions
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.tracer = tracer if tracer is not None \
            else Tracer(service="repro.server")
        self._inflight_gauge = self.metrics.registry.gauge(
            "server_inflight_builds", "Session constructions in flight")
        self._own_executor = executor is None
        self._executor = executor if executor is not None else ThreadPoolExecutor(
            thread_name_prefix="repro-session")
        #: canonical fault key -> future of the in-flight construction.
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: Per-fault-set-key traffic, for hot-key reporting / pre-warming.
        self._hot_keys: Counter = Counter()
        #: First-seen human-readable rendering of each tracked key.
        self._hot_key_names: dict[tuple, str] = {}
        #: First-seen raw fault list per tracked key — what pre-warm replays
        #: (the canonical key and the rendered name are both lossy).
        self._hot_key_faults: dict[tuple, list] = {}
        self._hot_lock = threading.Lock()
        # Hot-swap state (all guarded by _swap_lock, see LOCK_CONTRACTS):
        # the epoch counts snapshot generations, a lease per in-flight
        # request pins the oracle that request started on, and a replaced
        # oracle parks in _retired until its last lease drains.
        self._swap_lock = threading.Lock()
        self._epoch = 0
        self._leases: Counter = Counter()
        self._retired: dict[int, object] = {}
        self._epoch_gauge = self.metrics.registry.gauge(
            "server_snapshot_epoch",
            "Monotonic epoch of the serving snapshot (bumped by hot swap)")
        self._epoch_gauge.set(0.0)

    # ----------------------------------------------------- oracle pinning

    def _acquire_oracle(self) -> tuple:
        """Pin the current oracle for one request: ``(oracle, epoch)``.

        Every consumer of the oracle takes a lease and releases it in a
        ``finally`` — a hot swap arriving mid-request then retires the old
        oracle without closing it under the request's feet.
        """
        with self._swap_lock:
            self._leases[self._epoch] += 1
            return self.oracle, self._epoch

    def _release_oracle(self, epoch: int) -> None:
        """Drop one lease on ``epoch``; closes its oracle if it was retired
        by a swap and this was the last request still using it."""
        retired = None
        with self._swap_lock:
            remaining = self._leases[epoch] - 1
            if remaining > 0:
                self._leases[epoch] = remaining
            else:
                del self._leases[epoch]
                retired = self._retired.pop(epoch, None)
        if retired is not None:
            retired.close()

    @property
    def epoch(self) -> int:
        """The current snapshot generation (0 until the first swap)."""
        with self._swap_lock:
            return self._epoch

    async def swap_oracle(self, loader) -> int:
        """Atomically replace the oracle (the hot-reload seam); returns the
        new epoch.

        ``loader`` is a zero-argument callable returning the replacement
        oracle; it runs on the executor, so the event loop keeps serving
        from the old snapshot for the whole load.  If it raises, nothing
        changes — the old oracle keeps serving.  After the pointer flip,
        new requests lease the new oracle immediately; the old one is closed
        here if idle, else by the last in-flight request that still leases
        it.  The new oracle's session LRU starts cold (sessions are decoded
        views of the old labels and must not survive the swap) and inherits
        the configured ``max_sessions`` bound.
        """
        loop = asyncio.get_running_loop()
        with self.tracer.span("session.swap"):
            new_oracle = await loop.run_in_executor(self._executor, loader)
        if self._max_sessions is not None:
            new_oracle.SESSION_CACHE_SIZE = self._max_sessions
        retired = None
        with self._swap_lock:
            old_oracle = self.oracle
            old_epoch = self._epoch
            self.oracle = new_oracle
            self._epoch = old_epoch + 1
            epoch = self._epoch
            if self._leases.get(old_epoch, 0) > 0:
                self._retired[old_epoch] = old_oracle
            else:
                retired = old_oracle
        self._epoch_gauge.set(float(epoch))
        if retired is not None:
            retired.close()
        return epoch

    # ------------------------------------------------------------- sessions

    async def session(self, faults: Iterable) -> BatchQuerySession:
        """The shared session for ``faults`` (hit, coalesced wait, or build).

        Raises whatever the oracle raises: :class:`KeyError` for unknown
        fault edges, :class:`ValueError` for over-budget fault sets,
        :class:`~repro.core.query.QueryFailure` when the eager decomposition
        cannot decode (randomized labels — callers fall back per query).
        """
        oracle, epoch = self._acquire_oracle()
        try:
            return await self._session_for(oracle, epoch, list(faults))
        finally:
            self._release_oracle(epoch)

    async def _session_for(self, oracle, epoch: int,
                           fault_list: list) -> BatchQuerySession:
        """:meth:`session` against one *pinned* oracle (see ``_acquire_oracle``).

        In-flight construction is deduplicated per ``(epoch, key)``: a build
        started before a swap keeps serving its coalesced waiters from the
        old oracle, while post-swap requests for the same fault set start a
        fresh build against the new one.
        """
        loop = asyncio.get_running_loop()
        # Keying decodes at most f (small) edge labels — cheap enough for the
        # loop, and required before we can dedup in-flight construction.
        _, key = oracle._fault_labels_keyed(fault_list)
        self._record_hot_key(key, fault_list)
        session = oracle._cached_session(key)
        if session is not None:
            self.metrics.record_session_hit()
            return session
        inflight_key = (epoch, key)
        inflight = self._inflight.get(inflight_key)
        if inflight is not None:
            self.metrics.record_session_coalesced()
            return await asyncio.shield(inflight)
        future: asyncio.Future = loop.create_future()
        self._inflight[inflight_key] = future
        self._inflight_gauge.set(float(len(self._inflight)))
        self.metrics.record_session_miss()
        try:
            # The span inherits the request's trace id (the server dispatch
            # span set the contextvar), so a slow build is correlated with
            # the client request that triggered it.
            with self.tracer.span("session.build", faults=len(fault_list)):
                session = await loop.run_in_executor(
                    self._executor, oracle.batch_session, fault_list)
        except BaseException as error:
            self.metrics.record_session_failure()
            future.set_exception(error)
            # Mark retrieved so a herd of zero coalesced waiters does not
            # leave an "exception was never retrieved" warning behind.
            future.exception()
            raise
        else:
            future.set_result(session)
            return session
        finally:
            self._inflight.pop(inflight_key, None)
            self._inflight_gauge.set(float(len(self._inflight)))

    async def connected_many(self, pairs: Sequence[tuple],
                             faults: Iterable = ()) -> list[bool]:
        """Answer many ``(s, t)`` pairs on the shared session for ``faults``.

        The session is ensured first (single-flight), then the answers are
        computed on the executor; a :class:`QueryFailure` during construction
        falls through to the oracle's own per-query fallback.  One oracle is
        pinned for the whole request, so both steps — and the answers — come
        from one snapshot generation even if a swap lands mid-request.
        """
        loop = asyncio.get_running_loop()
        fault_list = list(faults)
        pair_list = list(pairs)
        oracle, epoch = self._acquire_oracle()
        try:
            try:
                await self._session_for(oracle, epoch, fault_list)
            except QueryFailure:
                pass  # oracle.connected_many falls back to the per-query engines
            with self.tracer.span("session.decode", pairs=len(pair_list),
                                  faults=len(fault_list)):
                answers = await loop.run_in_executor(
                    self._executor, oracle.connected_many, pair_list,
                    fault_list)
        finally:
            self._release_oracle(epoch)
        self.metrics.add_queries(len(answers))
        return answers

    async def prewarm_sessions(self, fault_sets: Sequence[Iterable],
                               executor=None, jobs: int | None = None) -> int:
        """Construct the sessions of many distinct fault sets ahead of traffic.

        Cold-start helper for restarts: feed it the hottest fault sets (e.g.
        the ones ``stats`` reported before the restart) and every one of them
        becomes a session-cache hit before the first client arrives.  The
        fan-out runs through the oracle's executor-backed
        :meth:`~repro.core.ftc.LabelBackedQueries.build_sessions` —
        ``executor`` / ``jobs`` select the strategy via
        :func:`~repro.build.executors.resolve_executor` — on a worker thread,
        never on the event loop.  Returns the number of sessions built or
        refreshed.
        """
        loop = asyncio.get_running_loop()
        fault_lists = [list(faults) for faults in fault_sets]
        if not fault_lists:
            return 0
        oracle, epoch = self._acquire_oracle()
        try:
            with self.tracer.span("session.prewarm",
                                  fault_sets=len(fault_lists)):
                sessions = await loop.run_in_executor(
                    self._executor,
                    lambda: oracle.build_sessions(fault_lists,
                                                  executor=executor,
                                                  jobs=jobs))
        finally:
            self._release_oracle(epoch)
        return len({session.key for session in sessions})

    # ------------------------------------------------------------- hot keys

    def _record_hot_key(self, key: tuple, fault_list: list) -> None:
        """Count one lookup of a canonical fault-set key (hit, miss, or wait).

        Every lookup counts — the point is traffic concentration, not cache
        behavior: a key that stays hot is worth pre-warming after restarts
        and sizing ``--max-sessions`` around.  The table is bounded by
        :attr:`HOT_KEY_TRACK_LIMIT` (admission stops once full).
        """
        with self._hot_lock:
            if key not in self._hot_keys and \
                    len(self._hot_keys) >= self.HOT_KEY_TRACK_LIMIT:
                return
            self._hot_keys[key] += 1
            if key not in self._hot_key_names:
                self._hot_key_names[key] = _render_fault_set(fault_list)
            if key not in self._hot_key_faults:
                self._hot_key_faults[key] = [tuple(edge) for edge in fault_list]

    def hot_keys(self, top: int | None = None) -> dict:
        """The ``top`` hottest fault sets as ``{rendered fault set: lookups}``.

        Rendered deterministically (count-descending, then name) so the
        Prometheus family ``session_hot_keys{key=...}`` is stable between
        scrapes.
        """
        if top is None:
            top = self.HOT_KEY_TOP_K
        with self._hot_lock:
            ranked = sorted(self._hot_keys.items(),
                            key=lambda item: (-item[1], self._hot_key_names[item[0]]))
            # Truncated renderings of two large distinct fault sets can
            # coincide; every key of an ambiguous name gets a digest suffix —
            # unconditionally, so one Prometheus series never switches which
            # fault set it counts as their ranks change between scrapes.
            name_owners: Counter = Counter(self._hot_key_names.values())
            report: dict = {}
            for key, count in ranked[:top]:
                name = self._hot_key_names[key]
                if name_owners[name] > 1:
                    name = "%s#%s" % (name, _key_digest(key))
                report[name] = count
            return report

    def hot_fault_sets(self, top: int | None = None) -> list[list]:
        """The ``top`` hottest fault sets as replayable edge lists.

        Ranked like :meth:`hot_keys` (count-descending, then rendered name,
        so the order is deterministic); each entry is the first-seen raw
        fault list for that canonical key — exactly what
        :meth:`prewarm_sessions` (and the ``repro.pool`` restart pre-warm
        file) takes.
        """
        if top is None:
            top = self.HOT_KEY_TOP_K
        with self._hot_lock:
            ranked = sorted(self._hot_keys.items(),
                            key=lambda item: (-item[1], self._hot_key_names[item[0]]))
            return [list(self._hot_key_faults[key]) for key, _ in ranked[:top]
                    if key in self._hot_key_faults]

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Metrics plus the oracle's cache occupancy, as one JSON-ready dict."""
        stats = self.metrics.snapshot()
        stats["session_cache"] = self.oracle.session_cache_info()
        stats["inflight_builds"] = len(self._inflight)
        stats["snapshot_epoch"] = self.epoch
        # The *_by_key suffix makes the Prometheus renderer emit one labeled
        # family: repro_server_session_hot_keys{key="a-b,c-d"} N.
        stats["session_hot_keys_by_key"] = self.hot_keys()
        with self._hot_lock:
            stats["session_hot_keys_tracked"] = len(self._hot_keys)
        return stats

    def close(self) -> None:
        """Shut down the worker pool (only if this manager created it) and
        close any swap-retired oracles still waiting on a drain."""
        if self._own_executor:
            self._executor.shutdown(wait=True)
        with self._swap_lock:
            retired = list(self._retired.values())
            self._retired.clear()
        for oracle in retired:
            oracle.close()


def _key_digest(key: tuple) -> str:
    """Short stable digest of a canonical fault key (collision tiebreak)."""
    import hashlib

    return hashlib.blake2b(repr(key).encode(), digest_size=3).hexdigest()


def _render_fault_set(fault_list: list) -> str:
    """A compact, human-identifiable rendering of one fault set.

    Uses the client-facing edges (not the opaque canonical key) so operators
    can replay the set against ``client-query --fault``; sorted so
    permutations of one set render identically.
    """
    if not fault_list:
        return "(none)"
    rendered = sorted({"%s-%s" % (u, v) for u, v in fault_list})
    if len(rendered) > 8:
        rendered = rendered[:8] + ["+%d" % (len(rendered) - 8)]
    return ",".join(rendered)


__all__ = ["SessionManager"]
