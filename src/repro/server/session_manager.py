"""Sharing batch-query sessions between concurrent clients.

Everything expensive about a query depends only on the fault set ``F``
(:mod:`repro.core.batch`), so a server under heavy traffic wins exactly when
concurrent requests carrying the same canonical fault set share one
:class:`~repro.core.batch.BatchQuerySession`.  :class:`SessionManager` makes
that sharing safe and non-blocking on top of the oracle's (lock-protected)
session LRU:

* **Shared LRU** — sessions live in the oracle's own ``batch_session`` cache,
  keyed by :func:`~repro.core.query.canonical_fault_key`, so the server, the
  in-process API, and any other thread see one cache with one eviction policy
  (``max_sessions`` resizes it).
* **Executor offload** — constructing a session decodes the full component
  decomposition; that work runs on a worker thread, never on the event loop.
* **Single-flight** — a thundering herd of requests for one *novel* fault set
  triggers exactly one construction; every other request awaits the same
  future and is counted as ``coalesced`` in the metrics.
"""

from __future__ import annotations

import asyncio
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from repro.core.batch import BatchQuerySession
from repro.core.query import QueryFailure
from repro.obs.tracing import Tracer
from repro.server.metrics import ServerMetrics


class SessionManager:
    """Concurrency front-end over one oracle's batch-session LRU.

    ``oracle`` is anything with the :class:`~repro.core.ftc.LabelBackedQueries`
    surface — a live :class:`~repro.core.ftc.FTCLabeling` or (the server case)
    a :class:`~repro.core.snapshot.RehydratedOracle`.  All methods that touch
    the oracle are coroutines; the oracle work itself runs on the executor.
    """

    #: Approximate-top-K bound: once this many distinct fault-set keys are
    #: tracked, novel keys are no longer admitted (heavy hitters by then are
    #: already in the table, and the table must not grow with traffic).
    HOT_KEY_TRACK_LIMIT = 1024

    #: How many of the hottest fault-set keys ``stats`` reports.
    HOT_KEY_TOP_K = 10

    def __init__(self, oracle, max_sessions: int | None = None,
                 executor: ThreadPoolExecutor | None = None,
                 metrics: ServerMetrics | None = None,
                 tracer: Tracer | None = None):
        self.oracle = oracle
        if max_sessions is not None:
            if max_sessions < 1:
                raise ValueError("max_sessions must be at least 1")
            # Instance attribute shadows the class default; the oracle's own
            # LRU (shared with in-process callers) enforces the bound.
            oracle.SESSION_CACHE_SIZE = max_sessions
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.tracer = tracer if tracer is not None \
            else Tracer(service="repro.server")
        self._inflight_gauge = self.metrics.registry.gauge(
            "server_inflight_builds", "Session constructions in flight")
        self._own_executor = executor is None
        self._executor = executor if executor is not None else ThreadPoolExecutor(
            thread_name_prefix="repro-session")
        #: canonical fault key -> future of the in-flight construction.
        self._inflight: dict[tuple, asyncio.Future] = {}
        #: Per-fault-set-key traffic, for hot-key reporting / pre-warming.
        self._hot_keys: Counter = Counter()
        #: First-seen human-readable rendering of each tracked key.
        self._hot_key_names: dict[tuple, str] = {}
        #: First-seen raw fault list per tracked key — what pre-warm replays
        #: (the canonical key and the rendered name are both lossy).
        self._hot_key_faults: dict[tuple, list] = {}
        self._hot_lock = threading.Lock()

    # ------------------------------------------------------------- sessions

    async def session(self, faults: Iterable) -> BatchQuerySession:
        """The shared session for ``faults`` (hit, coalesced wait, or build).

        Raises whatever the oracle raises: :class:`KeyError` for unknown
        fault edges, :class:`ValueError` for over-budget fault sets,
        :class:`~repro.core.query.QueryFailure` when the eager decomposition
        cannot decode (randomized labels — callers fall back per query).
        """
        loop = asyncio.get_running_loop()
        fault_list = list(faults)
        # Keying decodes at most f (small) edge labels — cheap enough for the
        # loop, and required before we can dedup in-flight construction.
        _, key = self.oracle._fault_labels_keyed(fault_list)
        self._record_hot_key(key, fault_list)
        session = self.oracle._cached_session(key)
        if session is not None:
            self.metrics.record_session_hit()
            return session
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.metrics.record_session_coalesced()
            return await asyncio.shield(inflight)
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._inflight_gauge.set(float(len(self._inflight)))
        self.metrics.record_session_miss()
        try:
            # The span inherits the request's trace id (the server dispatch
            # span set the contextvar), so a slow build is correlated with
            # the client request that triggered it.
            with self.tracer.span("session.build", faults=len(fault_list)):
                session = await loop.run_in_executor(
                    self._executor, self.oracle.batch_session, fault_list)
        except BaseException as error:
            self.metrics.record_session_failure()
            future.set_exception(error)
            # Mark retrieved so a herd of zero coalesced waiters does not
            # leave an "exception was never retrieved" warning behind.
            future.exception()
            raise
        else:
            future.set_result(session)
            return session
        finally:
            self._inflight.pop(key, None)
            self._inflight_gauge.set(float(len(self._inflight)))

    async def connected_many(self, pairs: Sequence[tuple],
                             faults: Iterable = ()) -> list[bool]:
        """Answer many ``(s, t)`` pairs on the shared session for ``faults``.

        The session is ensured first (single-flight), then the answers are
        computed on the executor; a :class:`QueryFailure` during construction
        falls through to the oracle's own per-query fallback.
        """
        loop = asyncio.get_running_loop()
        fault_list = list(faults)
        pair_list = list(pairs)
        try:
            await self.session(fault_list)
        except QueryFailure:
            pass  # oracle.connected_many falls back to the per-query engines
        with self.tracer.span("session.decode", pairs=len(pair_list),
                              faults=len(fault_list)):
            answers = await loop.run_in_executor(
                self._executor, self.oracle.connected_many, pair_list,
                fault_list)
        self.metrics.add_queries(len(answers))
        return answers

    async def prewarm_sessions(self, fault_sets: Sequence[Iterable],
                               executor=None, jobs: int | None = None) -> int:
        """Construct the sessions of many distinct fault sets ahead of traffic.

        Cold-start helper for restarts: feed it the hottest fault sets (e.g.
        the ones ``stats`` reported before the restart) and every one of them
        becomes a session-cache hit before the first client arrives.  The
        fan-out runs through the oracle's executor-backed
        :meth:`~repro.core.ftc.LabelBackedQueries.build_sessions` —
        ``executor`` / ``jobs`` select the strategy via
        :func:`~repro.build.executors.resolve_executor` — on a worker thread,
        never on the event loop.  Returns the number of sessions built or
        refreshed.
        """
        loop = asyncio.get_running_loop()
        fault_lists = [list(faults) for faults in fault_sets]
        if not fault_lists:
            return 0
        with self.tracer.span("session.prewarm", fault_sets=len(fault_lists)):
            sessions = await loop.run_in_executor(
                self._executor,
                lambda: self.oracle.build_sessions(fault_lists,
                                                   executor=executor,
                                                   jobs=jobs))
        return len({session.key for session in sessions})

    # ------------------------------------------------------------- hot keys

    def _record_hot_key(self, key: tuple, fault_list: list) -> None:
        """Count one lookup of a canonical fault-set key (hit, miss, or wait).

        Every lookup counts — the point is traffic concentration, not cache
        behavior: a key that stays hot is worth pre-warming after restarts
        and sizing ``--max-sessions`` around.  The table is bounded by
        :attr:`HOT_KEY_TRACK_LIMIT` (admission stops once full).
        """
        with self._hot_lock:
            if key not in self._hot_keys and \
                    len(self._hot_keys) >= self.HOT_KEY_TRACK_LIMIT:
                return
            self._hot_keys[key] += 1
            if key not in self._hot_key_names:
                self._hot_key_names[key] = _render_fault_set(fault_list)
            if key not in self._hot_key_faults:
                self._hot_key_faults[key] = [tuple(edge) for edge in fault_list]

    def hot_keys(self, top: int | None = None) -> dict:
        """The ``top`` hottest fault sets as ``{rendered fault set: lookups}``.

        Rendered deterministically (count-descending, then name) so the
        Prometheus family ``session_hot_keys{key=...}`` is stable between
        scrapes.
        """
        if top is None:
            top = self.HOT_KEY_TOP_K
        with self._hot_lock:
            ranked = sorted(self._hot_keys.items(),
                            key=lambda item: (-item[1], self._hot_key_names[item[0]]))
            # Truncated renderings of two large distinct fault sets can
            # coincide; every key of an ambiguous name gets a digest suffix —
            # unconditionally, so one Prometheus series never switches which
            # fault set it counts as their ranks change between scrapes.
            name_owners: Counter = Counter(self._hot_key_names.values())
            report: dict = {}
            for key, count in ranked[:top]:
                name = self._hot_key_names[key]
                if name_owners[name] > 1:
                    name = "%s#%s" % (name, _key_digest(key))
                report[name] = count
            return report

    def hot_fault_sets(self, top: int | None = None) -> list[list]:
        """The ``top`` hottest fault sets as replayable edge lists.

        Ranked like :meth:`hot_keys` (count-descending, then rendered name,
        so the order is deterministic); each entry is the first-seen raw
        fault list for that canonical key — exactly what
        :meth:`prewarm_sessions` (and the ``repro.pool`` restart pre-warm
        file) takes.
        """
        if top is None:
            top = self.HOT_KEY_TOP_K
        with self._hot_lock:
            ranked = sorted(self._hot_keys.items(),
                            key=lambda item: (-item[1], self._hot_key_names[item[0]]))
            return [list(self._hot_key_faults[key]) for key, _ in ranked[:top]
                    if key in self._hot_key_faults]

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Metrics plus the oracle's cache occupancy, as one JSON-ready dict."""
        stats = self.metrics.snapshot()
        stats["session_cache"] = self.oracle.session_cache_info()
        stats["inflight_builds"] = len(self._inflight)
        # The *_by_key suffix makes the Prometheus renderer emit one labeled
        # family: repro_server_session_hot_keys{key="a-b,c-d"} N.
        stats["session_hot_keys_by_key"] = self.hot_keys()
        with self._hot_lock:
            stats["session_hot_keys_tracked"] = len(self._hot_keys)
        return stats

    def close(self) -> None:
        """Shut down the worker pool (only if this manager created it)."""
        if self._own_executor:
            self._executor.shutdown(wait=True)


def _key_digest(key: tuple) -> str:
    """Short stable digest of a canonical fault key (collision tiebreak)."""
    import hashlib

    return hashlib.blake2b(repr(key).encode(), digest_size=3).hexdigest()


def _render_fault_set(fault_list: list) -> str:
    """A compact, human-identifiable rendering of one fault set.

    Uses the client-facing edges (not the opaque canonical key) so operators
    can replay the set against ``client-query --fault``; sorted so
    permutations of one set render identically.
    """
    if not fault_list:
        return "(none)"
    rendered = sorted({"%s-%s" % (u, v) for u, v in fault_list})
    if len(rendered) > 8:
        rendered = rendered[:8] + ["+%d" % (len(rendered) - 8)]
    return ",".join(rendered)


__all__ = ["SessionManager"]
