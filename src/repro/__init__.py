"""repro — Deterministic Fault-Tolerant Connectivity Labeling Scheme.

A full reproduction of "Deterministic Fault-Tolerant Connectivity Labeling
Scheme" (Izumi, Emek, Wadayama, Masuzawa; PODC 2023, arXiv:2208.11459): the
deterministic f-FTC labeling schemes of Theorems 1-2, the randomized
counterparts they are compared against, the applications of Corollaries 1-2,
and a CONGEST-model simulation of the distributed construction (Theorem 3).

Quickstart
----------
>>> from repro import FTConnectivityOracle, Graph
>>> graph = Graph([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
>>> oracle = FTConnectivityOracle(graph, max_faults=2)
>>> oracle.connected(0, 2, faults=[(1, 2), (3, 0)])
True
>>> oracle.connected(0, 2, faults=[(1, 2), (2, 3)])
False
"""

from repro.core import (FTCConfig, FTCLabeling, FTCSnapshot, FTConnectivityOracle,
                        RehydratedOracle, SchemeVariant, load_snapshot)
from repro.graphs import Graph
from repro.hierarchy.config import ThresholdRule

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "FTCConfig",
    "FTCLabeling",
    "FTCSnapshot",
    "FTConnectivityOracle",
    "RehydratedOracle",
    "SchemeVariant",
    "ThresholdRule",
    "load_snapshot",
    "__version__",
]
