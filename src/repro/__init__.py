"""repro — Deterministic Fault-Tolerant Connectivity Labeling Scheme.

A full reproduction of "Deterministic Fault-Tolerant Connectivity Labeling
Scheme" (Izumi, Emek, Wadayama, Masuzawa; PODC 2023, arXiv:2208.11459): the
deterministic f-FTC labeling schemes of Theorems 1-2, the randomized
counterparts they are compared against, the applications of Corollaries 1-2,
and a CONGEST-model simulation of the distributed construction (Theorem 3).

Quickstart
----------
>>> from repro import Graph, Oracle
>>> graph = Graph([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
>>> oracle = Oracle.build(graph, max_faults=2)
>>> oracle.connected(0, 2, faults=[(1, 2), (3, 0)])
True
>>> oracle.connected(0, 2, faults=[(1, 2), (2, 3)])
False

The same oracle contract (:class:`OracleProtocol`) is served by three
transports — built in process (``Oracle.build``), rehydrated from a snapshot
(``Oracle.load``), or over TCP from a query server (``Oracle.connect``) —
selectable by one URI via :func:`open_oracle`.
"""

from repro.core import (FTCConfig, FTCLabeling, FTCSnapshot, FTConnectivityOracle,
                        RehydratedOracle, SchemeVariant, load_snapshot)
from repro.graphs import Graph
from repro.hierarchy.config import ThresholdRule
from repro.api import (Oracle, OracleProtocol, OracleStats, RemoteOracle,
                       open_oracle)
from repro.build import BuildExecutor, BuildReport, build_labeling
from repro.errors import OracleError, TransportError

__version__ = "1.2.0"

__all__ = [
    "Graph",
    "BuildExecutor",
    "BuildReport",
    "FTCConfig",
    "FTCLabeling",
    "FTCSnapshot",
    "FTConnectivityOracle",
    "Oracle",
    "OracleError",
    "OracleProtocol",
    "OracleStats",
    "RehydratedOracle",
    "RemoteOracle",
    "SchemeVariant",
    "ThresholdRule",
    "TransportError",
    "build_labeling",
    "load_snapshot",
    "open_oracle",
    "__version__",
]
