"""Deterministic construction of (S_{f,T}, k)-good hierarchies (Lemma 5).

Each level is sparsified by a deterministic epsilon-net for axis-aligned
rectangles computed on the Euler-tour embedding of the level's edges:

* every cut set of a vertex set with at most ``f`` faulty tree edges is a
  union of at most ``(2f + 1)^2 / 2`` rectangles (Lemma 3 + Section 4.3), so
* hitting every rectangle with at least ``12 log2 |E_i|`` points hits every
  cut set with at least ``6 (2f + 1)^2 log2 |E_i|`` edges, which is exactly
  the level's decoding threshold under the PAPER rule, and
* the net has at most half the points, so the hierarchy has O(log m) levels.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.epsnet.greedy_net import greedy_rectangle_net
from repro.epsnet.netfind import hitting_threshold, net_find
from repro.graphs.euler import EulerTour
from repro.graphs.graph import Edge
from repro.hierarchy.base import EdgeHierarchy
from repro.hierarchy.config import HierarchyConfig, NetAlgorithm

Vertex = Hashable


def build_deterministic_hierarchy(edges: Sequence[Edge], tour: EulerTour,
                                  config: HierarchyConfig) -> EdgeHierarchy:
    """Build the deterministic hierarchy for the given non-tree edges.

    Parameters
    ----------
    edges:
        The non-tree edges ``E_0 = E_{G'} - E_{T'}`` (canonical pairs).
    tour:
        The Euler tour of the spanning tree, providing the 2-D embedding.
    config:
        Threshold rule, net algorithm, and level cap.
    """
    hierarchy = EdgeHierarchy()
    current = sorted(edges, key=_edge_sort_key)
    level_cap = config.level_cap(len(current))
    for _ in range(level_cap):
        if not current:
            break
        hierarchy.levels.append(list(current))
        hierarchy.thresholds.append(config.threshold_for(len(current)))
        points = [tour.point_of_edge(u, v) for u, v in current]
        selected_indices = _select_net(points, config)
        next_level = [current[index] for index in selected_indices]
        if len(next_level) >= len(current):
            # Defensive: force progress so the hierarchy always terminates.
            next_level = next_level[: len(current) - 1]
        current = next_level
    else:
        if current:
            # The level cap was hit with edges remaining; absorb the remainder
            # into a final level whose threshold covers everything.
            hierarchy.levels.append(list(current))
            hierarchy.thresholds.append(len(current))
    _finalize_thresholds(hierarchy, config)
    hierarchy.validate_nesting()
    return hierarchy


def _select_net(points: list[tuple], config: HierarchyConfig) -> list[int]:
    if config.net_algorithm is NetAlgorithm.GREEDY:
        threshold = hitting_threshold(len(points))
        return greedy_rectangle_net(points, threshold)
    return net_find(points)


def _finalize_thresholds(hierarchy: EdgeHierarchy, config: HierarchyConfig) -> None:
    """Make the deepest level unconditionally decodable.

    The level following the deepest non-empty level is empty, so a query whose
    cut survives down there has no further fallback; raising that level's
    threshold to its full size keeps the scheme correct regardless of the
    threshold rule (for the PAPER rule this is a no-op whenever the last level
    is already smaller than its threshold).
    """
    if not hierarchy.levels:
        return
    last = len(hierarchy.levels) - 1
    hierarchy.thresholds[last] = max(hierarchy.thresholds[last], len(hierarchy.levels[last]))
    if config.rule is not None:  # keep the cap at the level size for all levels
        for index, level in enumerate(hierarchy.levels):
            hierarchy.thresholds[index] = min(max(hierarchy.thresholds[index], 1), max(len(level), 1))
    # Ensure the deepest level again after capping.
    hierarchy.thresholds[last] = max(hierarchy.thresholds[last], len(hierarchy.levels[last]))


def _edge_sort_key(edge: Edge) -> tuple:
    u, v = edge
    return (type(u).__name__, repr(u), type(v).__name__, repr(v))
