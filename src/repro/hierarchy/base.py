"""The hierarchy object shared by the deterministic and randomized builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.graphs.graph import Edge

Vertex = Hashable


@dataclass
class EdgeHierarchy:
    """A decreasing chain of edge sets with per-level decoding thresholds.

    Attributes
    ----------
    levels:
        ``levels[i]`` is the edge set ``E_i``; ``levels[0]`` is the full
        non-tree edge set and the (implicit) final level is empty.
    thresholds:
        ``thresholds[i]`` is the decoding threshold ``k_i`` the outdetect
        labeling will use for level ``i``.
    """

    levels: list[list[Edge]] = field(default_factory=list)
    thresholds: list[int] = field(default_factory=list)

    def depth(self) -> int:
        """Number of non-empty levels."""
        return len(self.levels)

    def level_sizes(self) -> list[int]:
        return [len(level) for level in self.levels]

    def validate_nesting(self) -> None:
        """Check that the chain is decreasing and thresholds are positive."""
        if len(self.levels) != len(self.thresholds):
            raise ValueError("levels and thresholds have different lengths")
        previous: set | None = None
        for index, level in enumerate(self.levels):
            current = set(level)
            if previous is not None and not current.issubset(previous):
                raise ValueError("level %d is not a subset of level %d" % (index, index - 1))
            if self.thresholds[index] < 1:
                raise ValueError("threshold of level %d is not positive" % index)
            previous = current

    def describe(self) -> dict:
        """Summary statistics used by benchmarks and EXPERIMENTS.md."""
        return {
            "depth": self.depth(),
            "level_sizes": self.level_sizes(),
            "thresholds": list(self.thresholds),
            "total_label_elements": sum(2 * k for k in self.thresholds),
        }


def check_strictly_decreasing(sizes: Sequence[int]) -> bool:
    """Whether a sequence of level sizes is strictly decreasing."""
    return all(later < earlier for earlier, later in zip(sizes, sizes[1:]))
