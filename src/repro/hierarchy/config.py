"""Configuration of sparsification hierarchies: threshold rules and presets.

The decoding threshold ``k`` of each level governs both correctness (it must
dominate the residual cut size the hierarchy can leave at that level) and the
label size (each level contributes ``2k`` field elements per vertex).  Two
presets are provided:

``ThresholdRule.PAPER``
    The proven constants of Lemma 5: ``k_i = 6 (2f + 1)^2 log2 |E_i|`` (capped
    at ``|E_i|``, which never weakens the guarantee).  Labels are large but
    correctness is unconditional — this is the deterministic scheme of
    Theorem 1/2.

``ThresholdRule.PRACTICAL``
    The empirically sufficient ``k_i = 5 f log2 |E_i|`` (the randomized bound
    of Proposition 5).  Smaller labels; relies on the decoder's failure
    detection, and the layered scheme reports (rather than hides) the rare
    case where a residual cut exceeds the threshold.  Used by the larger
    benchmark instances and measured in the hierarchy ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class ThresholdRule(Enum):
    """How the per-level decoding threshold is derived from f and |E_i|."""

    PAPER = "paper"
    PRACTICAL = "practical"

    def threshold(self, max_faults: int, level_size: int) -> int:
        """The decoding threshold for one hierarchy level of ``level_size`` edges."""
        if level_size <= 0:
            return 1
        log_term = max(math.log2(max(level_size, 2)), 1.0)
        if self is ThresholdRule.PAPER:
            raw = 6 * (2 * max_faults + 1) ** 2 * log_term
        else:
            raw = 5 * max_faults * log_term
        threshold = int(math.ceil(raw))
        threshold = max(threshold, 1)
        return min(threshold, level_size)


class NetAlgorithm(Enum):
    """Which deterministic epsilon-net construction sparsifies each level."""

    NETFIND = "netfind"          # near-linear, Lemma 12 (the default)
    GREEDY = "greedy"            # polynomial greedy net (stands in for MDG18)


@dataclass(frozen=True)
class HierarchyConfig:
    """Parameters of a hierarchy construction."""

    max_faults: int
    rule: ThresholdRule = ThresholdRule.PAPER
    net_algorithm: NetAlgorithm = NetAlgorithm.NETFIND
    max_levels: int | None = None
    random_seed: int = 0

    def __post_init__(self):
        if self.max_faults < 1:
            raise ValueError("max_faults must be at least 1, got %d" % self.max_faults)

    def threshold_for(self, level_size: int) -> int:
        return self.rule.threshold(self.max_faults, level_size)

    def level_cap(self, num_edges: int) -> int:
        """A generous cap on the number of levels (O(log m) plus slack)."""
        if self.max_levels is not None:
            return self.max_levels
        return 4 * max(int(math.ceil(math.log2(max(num_edges, 2)))), 1) + 4
