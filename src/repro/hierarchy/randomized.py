"""Randomized sub-sampling hierarchy (Proposition 5, Appendix A).

Each level keeps every edge of the previous level independently with
probability 1/2.  With high probability this yields an
``(S_{f,T}, 5 f log n)``-good hierarchy, which is the ingredient the original
Dory--Parter scheme (and our randomized full-support variant in Table 1) uses
in place of the deterministic epsilon-net construction.  The randomness is
driven by an explicit seed so experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.graphs.graph import Edge
from repro.hierarchy.base import EdgeHierarchy
from repro.hierarchy.config import HierarchyConfig, ThresholdRule


def build_randomized_hierarchy(edges: Sequence[Edge],
                               config: HierarchyConfig) -> EdgeHierarchy:
    """Build the sub-sampling hierarchy of Proposition 5."""
    rng = random.Random(config.random_seed)
    hierarchy = EdgeHierarchy()
    current = sorted(edges, key=_edge_sort_key)
    level_cap = config.level_cap(len(current))
    rule = ThresholdRule.PRACTICAL if config.rule is ThresholdRule.PRACTICAL else ThresholdRule.PRACTICAL
    for _ in range(level_cap):
        if not current:
            break
        threshold = rule.threshold(config.max_faults, len(current))
        hierarchy.levels.append(list(current))
        hierarchy.thresholds.append(threshold)
        if len(current) <= threshold:
            # Every remaining cut fits under the threshold; stop here.
            current = []
            break
        sampled = [edge for edge in current if rng.random() < 0.5]
        if len(sampled) >= len(current):
            sampled = sampled[: len(current) - 1]
        current = sampled
    if current:
        hierarchy.levels.append(list(current))
        hierarchy.thresholds.append(len(current))
    if hierarchy.levels:
        last = len(hierarchy.levels) - 1
        hierarchy.thresholds[last] = max(hierarchy.thresholds[last], len(hierarchy.levels[last]))
    hierarchy.validate_nesting()
    return hierarchy


def _edge_sort_key(edge: Edge) -> tuple:
    u, v = edge
    return (type(u).__name__, repr(u), type(v).__name__, repr(v))
