"""Validation of the (S_{f,T}, k)-goodness property (Definition 1).

Used by the test-suite (exhaustively on small trees) and by the hierarchy
ablation benchmark (on sampled vertex sets).  The property checked is the one
the layered outdetect scheme actually relies on:

    for every vertex set S with |∂_T(S)| <= f and ∂_{E_0}(S) nonempty, the
    deepest level i with ∂_{E_i}(S) nonempty satisfies
    |∂_{E_i}(S)| <= thresholds[i].
"""

from __future__ import annotations

import itertools
import random
from typing import Hashable, Iterable, Sequence

from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.spanning_tree import RootedTree
from repro.graphs.fragments import tree_fragments
from repro.hierarchy.base import EdgeHierarchy

Vertex = Hashable


def outgoing_edges(vertex_set: set, edges: Iterable[Edge]) -> list[Edge]:
    """Edges with exactly one endpoint inside ``vertex_set``."""
    return [edge for edge in edges if (edge[0] in vertex_set) != (edge[1] in vertex_set)]


def goodness_violations(hierarchy: EdgeHierarchy, vertex_sets: Iterable[set]) -> list[dict]:
    """Return one record per vertex set violating the decodability property."""
    violations = []
    for vertex_set in vertex_sets:
        boundary_sizes = [len(outgoing_edges(vertex_set, level)) for level in hierarchy.levels]
        deepest = None
        for index in range(len(boundary_sizes) - 1, -1, -1):
            if boundary_sizes[index] > 0:
                deepest = index
                break
        if deepest is None:
            continue
        if boundary_sizes[deepest] > hierarchy.thresholds[deepest]:
            violations.append({
                "vertex_set_size": len(vertex_set),
                "deepest_level": deepest,
                "boundary_size": boundary_sizes[deepest],
                "threshold": hierarchy.thresholds[deepest],
            })
    return violations


def fault_induced_vertex_sets(tree: RootedTree, max_faults: int,
                              exhaustive_limit: int = 2000,
                              sample_size: int = 200,
                              seed: int = 0) -> list[set]:
    """Vertex sets of S_{f,T} arising as unions of fragments of T - F.

    The query algorithm only ever queries unions of fragments, so these are
    the vertex sets whose decodability matters.  Small instances are
    enumerated exhaustively; larger ones are sampled deterministically.
    """
    tree_edges = tree.tree_edges()
    vertex_sets: list[set] = []
    fault_combinations = _fault_combinations(tree_edges, max_faults, exhaustive_limit,
                                             sample_size, seed)
    for faults in fault_combinations:
        fragments = tree_fragments(tree, faults)
        # All unions of a subset of fragments (bounded) — the sets the decoder grows.
        if len(fragments) <= 6:
            index_subsets = itertools.chain.from_iterable(
                itertools.combinations(range(len(fragments)), size)
                for size in range(1, len(fragments)))
        else:
            rng = random.Random(seed)
            index_subsets = [tuple(sorted(rng.sample(range(len(fragments)),
                                                     rng.randint(1, len(fragments) - 1))))
                             for _ in range(10)]
        for subset in index_subsets:
            union: set = set()
            for index in subset:
                union |= fragments[index]
            vertex_sets.append(union)
    return vertex_sets


def _fault_combinations(tree_edges: Sequence[Edge], max_faults: int,
                        exhaustive_limit: int, sample_size: int, seed: int) -> list[tuple]:
    total = 0
    combos: list[tuple] = []
    for size in range(1, max_faults + 1):
        for combination in itertools.combinations(tree_edges, size):
            combos.append(combination)
            total += 1
            if total > exhaustive_limit:
                break
        if total > exhaustive_limit:
            break
    if total <= exhaustive_limit:
        return combos
    rng = random.Random(seed)
    sampled = []
    for _ in range(sample_size):
        size = rng.randint(1, max_faults)
        sampled.append(tuple(canonical_edge(u, v)
                             for u, v in rng.sample(list(tree_edges), min(size, len(tree_edges)))))
    return sampled
