"""Sparsification hierarchies ((S_{f,T}, k)-good hierarchies, Definition 1).

A hierarchy is a decreasing chain of non-tree edge sets
``E_0 ⊇ E_1 ⊇ ... ⊇ E_h = ∅`` such that every vertex set S with at most ``f``
faulty tree edges and a non-empty outgoing edge set admits a level where its
outgoing edge count is positive but at most the level's threshold ``k`` — the
regime in which the k-threshold outdetect labels can decode.

* :mod:`repro.hierarchy.config` — threshold rules (PAPER / PRACTICAL) and the
  hierarchy configuration object.
* :mod:`repro.hierarchy.deterministic` — the epsilon-net based deterministic
  construction of Lemma 5 (NetFind by default, greedy net optionally).
* :mod:`repro.hierarchy.randomized` — the sub-sampling construction of
  Proposition 5 (the Dory--Parter style randomized baseline).
* :mod:`repro.hierarchy.validation` — exhaustive / sampled validation of the
  goodness property, used by tests and the ablation benchmark.
"""

from repro.hierarchy.config import HierarchyConfig, ThresholdRule
from repro.hierarchy.deterministic import build_deterministic_hierarchy
from repro.hierarchy.randomized import build_randomized_hierarchy
from repro.hierarchy.base import EdgeHierarchy

__all__ = [
    "HierarchyConfig",
    "ThresholdRule",
    "EdgeHierarchy",
    "build_deterministic_hierarchy",
    "build_randomized_hierarchy",
]
