"""Ancestry labeling scheme (Kannan, Naor, Rudich [KNR92]; Lemma 7).

Every vertex of a rooted tree receives the pair ``(pre, post)`` of its DFS
pre-order and post-order indices.  Vertex ``u`` is an ancestor of ``v``
(inclusive) exactly when the interval ``[pre_u, post_u]`` contains
``[pre_v, post_v]``.  Labels are ``O(log n)`` bits, construction is linear,
and decoding is constant time — exactly the guarantees of Lemma 7.

The decoder side of the FTC scheme manipulates only these label objects (never
the tree), which is what keeps the overall decoding function universal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.graphs.spanning_tree import RootedTree

Vertex = Hashable


@dataclass(frozen=True, order=True)
class AncestryLabel:
    """An interval label ``[pre, post]`` of one vertex."""

    pre: int
    post: int

    def is_ancestor_of(self, other: "AncestryLabel") -> bool:
        """Inclusive ancestry: every label is an ancestor of itself."""
        return self.pre <= other.pre and other.post <= self.post

    def is_strict_ancestor_of(self, other: "AncestryLabel") -> bool:
        return self != other and self.is_ancestor_of(other)

    def contains_preorder(self, preorder: int) -> bool:
        """Whether a vertex with the given preorder lies in this subtree."""
        return self.pre <= preorder <= self.post

    def bit_size(self) -> int:
        """Number of bits needed to store the label."""
        return max(self.pre.bit_length(), 1) + max(self.post.bit_length(), 1)

    def pack(self, modulus: int) -> int:
        """Pack into a single integer given an exclusive bound on pre/post."""
        return self.pre * modulus + self.post

    @classmethod
    def unpack(cls, packed: int, modulus: int) -> "AncestryLabel":
        return cls(pre=packed // modulus, post=packed % modulus)


def ancestry_relation(a: AncestryLabel, b: AncestryLabel) -> int:
    """The universal decoder of Lemma 7.

    Returns ``1`` if ``a`` is a strict ancestor of ``b``, ``-1`` if ``b`` is a
    strict ancestor of ``a``, and ``0`` otherwise (including equality).
    """
    if a == b:
        return 0
    if a.is_ancestor_of(b):
        return 1
    if b.is_ancestor_of(a):
        return -1
    return 0


class AncestryLabeling:
    """Assigns :class:`AncestryLabel` objects to all vertices of a rooted tree."""

    def __init__(self, tree: RootedTree):
        self.tree = tree
        self._labels: dict[Vertex, AncestryLabel] = {}
        self._build()

    def _build(self) -> None:
        counter = 0
        order: dict[Vertex, int] = {}
        post: dict[Vertex, int] = {}
        stack: list[tuple] = [(self.tree.root, False)]
        while stack:
            vertex, expanded = stack.pop()
            if expanded:
                post[vertex] = counter
                counter += 1
                continue
            order[vertex] = counter
            counter += 1
            stack.append((vertex, True))
            for child in reversed(self.tree.children(vertex)):
                stack.append((child, False))
        for vertex in self.tree.vertices():
            self._labels[vertex] = AncestryLabel(pre=order[vertex], post=post[vertex])

    # ------------------------------------------------------------- accessors

    def label(self, vertex: Vertex) -> AncestryLabel:
        return self._labels[vertex]

    def labels(self) -> dict:
        """A copy of the full vertex -> label mapping."""
        return dict(self._labels)

    def max_value(self) -> int:
        """Exclusive upper bound on any pre/post value (used for packing)."""
        return 2 * self.tree.num_vertices()

    def max_bit_size(self) -> int:
        """Maximum label size in bits over all vertices."""
        return max(label.bit_size() for label in self._labels.values())

    def is_ancestor(self, u: Vertex, v: Vertex) -> bool:
        """Convenience ancestry test through the labels (inclusive)."""
        return self._labels[u].is_ancestor_of(self._labels[v])
