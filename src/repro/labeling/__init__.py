"""Ancestry labels and edge identifiers.

* :mod:`repro.labeling.ancestry` — the Kannan--Naor--Rudich interval labeling
  (Lemma 7): O(log n)-bit vertex labels from which ancestry in the spanning
  tree is decided with no access to the tree.
* :mod:`repro.labeling.edge_ids` — packing a pair of ancestry labels into a
  single non-zero element of GF(2^w), which serves as the edge identifier fed
  to the Reed--Solomon outdetect labels (Section 7.2).
"""

from repro.labeling.ancestry import AncestryLabel, AncestryLabeling, ancestry_relation
from repro.labeling.edge_ids import EdgeIdCodec

__all__ = [
    "AncestryLabel",
    "AncestryLabeling",
    "ancestry_relation",
    "EdgeIdCodec",
]
