"""Edge identifiers: packing ancestry-label pairs into field elements.

Section 7.2 of the paper assigns every non-tree edge ``(u, v)`` the identifier
``L_anc(u) ∘ L_anc(v)``, i.e. the concatenation of the ancestry labels of its
endpoints, and builds the outdetect labeling over that identifier domain.
Recovering an edge identifier from a syndrome therefore immediately tells the
decoder which fragments the edge connects — no access to the graph is needed.

:class:`EdgeIdCodec` realizes the identifier domain as the non-zero elements of
a field GF(2^w).  Two packings are supported:

``full``
    Packs both complete ancestry labels ``(pre_u, post_u, pre_v, post_v)``,
    exactly as in the paper.
``compact``
    Packs only ``(pre_u, pre_v)``.  The query algorithm only ever needs the
    pre-order of an endpoint (to locate its fragment via interval containment),
    so this halves the field width — a constant-factor engineering
    optimization documented in DESIGN.md.  It is the default.
"""

from __future__ import annotations

from repro.gf2.field import GF2m
from repro.labeling.ancestry import AncestryLabel


class EdgeIdCodec:
    """Bijective map between endpoint-label pairs and non-zero field elements."""

    MODES = ("compact", "full")

    def __init__(self, max_label_value: int, mode: str = "compact", min_width: int = 2):
        """Create a codec.

        Parameters
        ----------
        max_label_value:
            Exclusive upper bound on any pre/post value of the ancestry
            labeling (``AncestryLabeling.max_value()``).
        mode:
            ``"compact"`` or ``"full"`` (see module docstring).
        min_width:
            Lower bound on the field width (useful for tests).
        """
        if mode not in self.MODES:
            raise ValueError("unknown edge-id mode %r" % (mode,))
        if max_label_value < 1:
            raise ValueError("max_label_value must be positive")
        self.mode = mode
        self.modulus = max_label_value
        # +1 for the shift that keeps identifiers non-zero.
        width = max(min_width, self._required_width(max_label_value, mode))
        self.field = GF2m(width)

    @staticmethod
    def _required_width(max_label_value: int, mode: str) -> int:
        if mode == "compact":
            domain_size = max_label_value ** 2
        else:
            domain_size = max_label_value ** 4
        return (domain_size + 1).bit_length()

    @classmethod
    def for_field(cls, max_label_value: int, mode: str, field: GF2m) -> "EdgeIdCodec":
        """A codec over an explicitly provided field (snapshot rehydration).

        Skips the irreducible-polynomial search of the normal constructor —
        the field (width *and* modulus) comes from the stored artifact — but
        still validates that it can hold the identifier domain.
        """
        if mode not in cls.MODES:
            raise ValueError("unknown edge-id mode %r" % (mode,))
        if max_label_value < 1:
            raise ValueError("max_label_value must be positive")
        needed = cls._required_width(max_label_value, mode)
        if field.width < needed:
            raise ValueError("field width %d cannot hold the %s edge-id domain "
                             "of modulus %d (needs %d bits)"
                             % (field.width, mode, max_label_value, needed))
        codec = cls.__new__(cls)
        codec.mode = mode
        codec.modulus = max_label_value
        codec.field = field
        return codec

    # -------------------------------------------------------------- encoding

    def encode(self, label_u: AncestryLabel, label_v: AncestryLabel) -> int:
        """Encode an ordered endpoint pair into a non-zero field element."""
        self._check(label_u)
        self._check(label_v)
        modulus = self.modulus
        if self.mode == "compact":
            packed = label_u.pre * modulus + label_v.pre
        else:
            packed = ((label_u.pre * modulus + label_u.post) * modulus + label_v.pre) * modulus + label_v.post
        return packed + 1

    def decode(self, identifier: int) -> tuple[int, int] | tuple[AncestryLabel, AncestryLabel]:
        """Decode an identifier back into endpoint information.

        In ``compact`` mode the result is the pair ``(pre_u, pre_v)``; in
        ``full`` mode it is the pair of complete :class:`AncestryLabel`s.
        """
        if identifier <= 0:
            raise ValueError("identifiers are positive (zero is the formal zero)")
        packed = identifier - 1
        modulus = self.modulus
        if self.mode == "compact":
            pre_u, pre_v = divmod(packed, modulus)
            if pre_u >= modulus:
                raise ValueError("identifier %d is outside the compact domain" % identifier)
            return (pre_u, pre_v)
        post_v = packed % modulus
        packed //= modulus
        pre_v = packed % modulus
        packed //= modulus
        post_u = packed % modulus
        packed //= modulus
        pre_u = packed
        if pre_u >= modulus:
            raise ValueError("identifier %d is outside the full domain" % identifier)
        return (AncestryLabel(pre_u, post_u), AncestryLabel(pre_v, post_v))

    def endpoint_preorders(self, identifier: int) -> tuple[int, int]:
        """Return ``(pre_u, pre_v)`` regardless of the packing mode."""
        decoded = self.decode(identifier)
        if self.mode == "compact":
            return decoded  # type: ignore[return-value]
        label_u, label_v = decoded  # type: ignore[misc]
        return (label_u.pre, label_v.pre)

    def is_plausible(self, identifier: int) -> bool:
        """Cheap sanity check used for decode-failure detection."""
        if identifier <= 0 or not self.field.contains(identifier):
            return False
        try:
            self.decode(identifier)
        except ValueError:
            return False
        return True

    def bit_size(self) -> int:
        """Number of bits of one identifier (== the field width)."""
        return self.field.width

    # ---------------------------------------------------------------- helpers

    def _check(self, label: AncestryLabel) -> None:
        if not (0 <= label.pre < self.modulus and 0 <= label.post < self.modulus):
            raise ValueError("ancestry label %r exceeds the codec modulus %d"
                             % (label, self.modulus))
