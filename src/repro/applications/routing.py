"""Forbidden-set (fault-tolerant) compact routing (Corollary 2).

The routing scheme combines three ingredients, matching the DP21 reduction at
a high level:

* **tree routing** on the spanning tree ``T'`` via ancestry intervals (each
  vertex's table holds, per incident tree edge, the DFS interval of the
  subtree behind it);
* the **f-FTC labeling**, whose fragment/outdetect machinery the route
  computation uses to discover *recovery edges* connecting the fragments of
  ``T' - F``;
* a per-vertex **port map** from edge identifiers to incident edges (the
  compact-routing analogue of ports).

``route(s, t, F)`` simulates the packet: it computes the fragment-level path
with the labeling's own merging procedure, walks tree paths inside fragments,
and crosses recovery edges between them.  The result is an actual path of the
original graph avoiding ``F`` (or a certified "disconnected"), whose length
divided by the true shortest path length is the observed stretch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.core.query import FragmentStructure
from repro.graphs.auxiliary import SubdivisionVertex
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.outdetect.base import OutdetectDecodeError

Vertex = Hashable


@dataclass
class RouteResult:
    """Outcome of routing one packet."""

    delivered: bool
    path: list                     # vertices of the original graph (empty if undelivered)
    hops: int
    fragments_crossed: int

    def stretch_against(self, shortest: int) -> float:
        """Observed stretch given the true shortest-path length in G - F."""
        if not self.delivered or shortest <= 0:
            return float("inf") if not self.delivered else 1.0
        return self.hops / shortest


class ForbiddenSetRoutingScheme:
    """Compact routing avoiding a forbidden edge set given at query time."""

    def __init__(self, graph: Graph, max_faults: int,
                 variant: SchemeVariant = SchemeVariant.DETERMINISTIC_NEARLINEAR,
                 seed: int = 0):
        self.graph = graph
        self.max_faults = max_faults
        self.labeling = FTCLabeling(graph, FTCConfig(max_faults=max_faults, variant=variant,
                                                     random_seed=seed))
        instance = self.labeling.instance
        self._tree_prime = instance.auxiliary.tree_prime
        self._ancestry = instance.ancestry
        # Port map: edge identifier -> the non-tree edge of G' it names.
        self._edge_of_identifier = {identifier: edge
                                    for edge, identifier in instance.edge_ids.items()}

    # ----------------------------------------------------------------- routing

    def route(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> RouteResult:
        """Simulate routing a packet from s to t avoiding the faulty edges."""
        fault_list = [canonical_edge(u, v) for u, v in faults]
        if len(fault_list) > self.max_faults:
            raise ValueError("route avoids %d faults but the scheme supports f=%d"
                             % (len(fault_list), self.max_faults))
        if s == t:
            return RouteResult(delivered=True, path=[s], hops=0, fragments_crossed=0)

        crossing_plan = self._fragment_level_plan(s, t, fault_list)
        if crossing_plan is None:
            return RouteResult(delivered=False, path=[], hops=0, fragments_crossed=0)

        mapped_faults = set(self.labeling.instance.auxiliary.map_faults(fault_list))
        path_prime: list = [s]
        current = s
        for edge in crossing_plan:
            u, v = edge
            # Enter the endpoint lying in the current fragment first.
            first, second = (u, v)
            if not self._same_fragment(current, first, mapped_faults):
                first, second = v, u
            path_prime.extend(self._tree_path(current, first, mapped_faults)[1:])
            path_prime.append(second)
            current = second
        path_prime.extend(self._tree_path(current, t, mapped_faults)[1:])

        path = self._project_path(path_prime)
        if not self._path_is_valid(path, set(fault_list)) or path[-1] != t:
            return RouteResult(delivered=False, path=[], hops=0, fragments_crossed=len(crossing_plan))
        return RouteResult(delivered=True, path=path, hops=len(path) - 1,
                           fragments_crossed=len(crossing_plan))

    # ------------------------------------------------------------ plan (labels)

    def _fragment_level_plan(self, s: Vertex, t: Vertex, faults: list) -> list | None:
        """Sequence of recovery edges (non-tree edges of G') joining s's fragment to t's.

        Uses the same fragment-growing procedure as the query engine, but
        records which decoded edge merged which fragment so the crossings can
        be replayed by the packet.
        """
        labeling = self.labeling
        fault_labels = [labeling.edge_label(u, v) for u, v in faults]
        structure = FragmentStructure(fault_labels)
        source_label = labeling.vertex_label(s)
        target_label = labeling.vertex_label(t)
        source_fragment = structure.fragment_of_vertex(source_label.ancestry)
        target_fragment = structure.fragment_of_vertex(target_label.ancestry)
        if source_fragment == target_fragment:
            return []

        outdetect = labeling.outdetect
        codec = labeling.instance.codec
        merged = {source_fragment}
        combined = structure.fragment_outdetect_label(source_fragment, outdetect)
        # For path reconstruction: fragment -> (crossing edge, previous fragment).
        reached_via: dict[int, tuple] = {}
        for _ in range(structure.num_fragments()):
            try:
                identifiers = outdetect.decode(combined)
            except OutdetectDecodeError:
                return None
            progress = False
            for identifier in identifiers:
                if not codec.is_plausible(identifier) or identifier not in self._edge_of_identifier:
                    continue
                pre_u, pre_v = codec.endpoint_preorders(identifier)
                fragment_u = structure.fragment_of_preorder(pre_u)
                fragment_v = structure.fragment_of_preorder(pre_v)
                if (fragment_u in merged) == (fragment_v in merged):
                    continue
                new_fragment = fragment_v if fragment_u in merged else fragment_u
                reached_via[new_fragment] = (self._edge_of_identifier[identifier],
                                             fragment_u if fragment_u in merged else fragment_v)
                merged.add(new_fragment)
                combined = outdetect.combine(
                    combined, structure.fragment_outdetect_label(new_fragment, outdetect))
                progress = True
                break
            if not progress:
                return None
            if target_fragment in merged:
                break
        if target_fragment not in merged:
            return None
        # Reconstruct the crossing sequence from target back to source.
        crossings = []
        fragment = target_fragment
        while fragment != source_fragment:
            edge, previous = reached_via[fragment]
            crossings.append(edge)
            fragment = previous
        crossings.reverse()
        return crossings

    # ------------------------------------------------------------ tree walking

    def _tree_path(self, a: Vertex, b: Vertex, forbidden_tree_edges: set) -> list:
        """Path from a to b along T' (must not use forbidden tree edges)."""
        if a == b:
            return [a]
        tree = self._tree_prime
        ancestors_a = tree.path_to_root(a)
        ancestor_set = set(ancestors_a)
        path_b = [b]
        current = b
        while current not in ancestor_set:
            current = tree.parent(current)
            path_b.append(current)
        meeting = current
        path_a = []
        current = a
        while current != meeting:
            path_a.append(current)
            current = tree.parent(current)
        path_a.append(meeting)
        full = path_a + list(reversed(path_b[:-1]))
        for u, v in zip(full, full[1:]):
            if canonical_edge(u, v) in forbidden_tree_edges:
                raise RuntimeError("tree path crosses a faulty edge; fragments were "
                                   "computed inconsistently")
        return full

    def _same_fragment(self, a: Vertex, b: Vertex, forbidden_tree_edges: set) -> bool:
        try:
            self._tree_path(a, b, forbidden_tree_edges)
            return True
        except RuntimeError:
            return False

    # ------------------------------------------------------------- projection

    def _project_path(self, path_prime: list) -> list:
        """Drop subdivision vertices, mapping a G' walk back to a G walk."""
        projected = [vertex for vertex in path_prime
                     if not isinstance(vertex, SubdivisionVertex)]
        # Collapse consecutive duplicates that arise from dropped midpoints.
        collapsed: list = []
        for vertex in projected:
            if not collapsed or collapsed[-1] != vertex:
                collapsed.append(vertex)
        return collapsed

    def _path_is_valid(self, path: list, faults: set) -> bool:
        if len(path) < 1:
            return False
        for u, v in zip(path, path[1:]):
            if not self.graph.has_edge(u, v):
                return False
            if canonical_edge(u, v) in faults:
                return False
        return True

    # -------------------------------------------------------------- statistics

    def table_size_stats(self) -> dict:
        """Per-vertex routing-table sizes in bits (ports + intervals + labels)."""
        interval_bits = self._ancestry.max_bit_size()
        identifier_bits = self.labeling.instance.codec.bit_size()
        sizes = []
        for vertex in self.graph.vertices():
            degree = self.graph.degree(vertex)
            label_bits = self.labeling.vertex_label(vertex).bit_size()
            sizes.append(degree * (interval_bits + identifier_bits) + label_bits)
        return {
            "max_table_bits": max(sizes) if sizes else 0,
            "mean_table_bits": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "total_table_bits": sum(sizes),
        }

    def stretch_report(self, queries: Iterable[tuple]) -> dict:
        """Observed routing stretch over (s, t, F) queries."""
        import networkx as nx

        stretches = []
        undelivered = 0
        disconnected = 0
        total = 0
        for s, t, faults in queries:
            total += 1
            reduced = self.graph.without_edges(faults).to_networkx()
            try:
                shortest = nx.shortest_path_length(reduced, s, t)
            except nx.NetworkXNoPath:
                disconnected += 1
                result = self.route(s, t, faults)
                if result.delivered:
                    undelivered += 1  # delivered despite disconnection: impossible
                continue
            result = self.route(s, t, faults)
            if not result.delivered:
                undelivered += 1
                continue
            stretches.append(result.stretch_against(shortest))
        return {
            "total": total,
            "delivered": len(stretches),
            "undelivered": undelivered,
            "disconnected_queries": disconnected,
            "max_stretch": max(stretches) if stretches else 0.0,
            "mean_stretch": (sum(stretches) / len(stretches)) if stretches else 0.0,
        }
