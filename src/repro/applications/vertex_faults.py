"""Vertex-fault-tolerant connectivity labeling via the edge-fault reduction.

The paper handles edge faults; Section 1.4 and the concluding remarks discuss
the vertex-fault variant and note the folklore reduction: a failed vertex is
simulated by failing all of its incident edges, giving a vertex-fault scheme
with Õ(Δ f) label size (Δ = maximum degree).  This module implements exactly
that reduction on top of the edge scheme — it is the baseline the open problem
in Section 9 asks to beat, and it rounds out the library for users who need
vertex faults today.

Label contents: every vertex stores its own FTC vertex label *plus* the FTC
edge labels of all its incident edges, so a query needs only the labels of
``s``, ``t``, and the failed vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.core.labels import EdgeLabel, VertexLabel
from repro.graphs.graph import Graph, canonical_edge

Vertex = Hashable


@dataclass(frozen=True)
class VertexFaultLabel:
    """Label of one vertex in the vertex-fault-tolerant scheme."""

    vertex_label: VertexLabel
    incident_edge_labels: tuple          # tuple of (neighbor-ancestry-pre, EdgeLabel)

    def bit_size(self) -> int:
        return (self.vertex_label.bit_size()
                + sum(label.bit_size() for _, label in self.incident_edge_labels))


class VertexFaultTolerantLabeling:
    """f-vertex-fault-tolerant connectivity labels (the Õ(Δ f) reduction).

    Parameters
    ----------
    graph:
        The input graph.
    max_vertex_faults:
        Maximum number of simultaneously failed vertices ``f``.
    variant:
        Which underlying edge scheme to use.
    """

    def __init__(self, graph: Graph, max_vertex_faults: int,
                 variant: SchemeVariant = SchemeVariant.DETERMINISTIC_NEARLINEAR,
                 seed: int = 0):
        if max_vertex_faults < 1:
            raise ValueError("max_vertex_faults must be at least 1")
        self.graph = graph
        self.max_vertex_faults = max_vertex_faults
        max_degree = max((graph.degree(v) for v in graph.vertices()), default=0)
        edge_budget = max(max_vertex_faults * max_degree, 1)
        self.edge_scheme = FTCLabeling(
            graph, FTCConfig(max_faults=edge_budget, variant=variant, random_seed=seed))
        self._labels: dict[Vertex, VertexFaultLabel] = {}
        for vertex in graph.vertices():
            incident = []
            for neighbor in sorted(graph.neighbors(vertex), key=lambda v: repr(v)):
                edge_label = self.edge_scheme.edge_label(vertex, neighbor)
                incident.append((neighbor, edge_label))
            self._labels[vertex] = VertexFaultLabel(
                vertex_label=self.edge_scheme.vertex_label(vertex),
                incident_edge_labels=tuple(incident))

    # ------------------------------------------------------------------ labels

    def label(self, vertex: Vertex) -> VertexFaultLabel:
        return self._labels[vertex]

    def max_label_bits(self) -> int:
        return max(label.bit_size() for label in self._labels.values())

    # ----------------------------------------------------------------- queries

    def connected(self, s: Vertex, t: Vertex, failed_vertices: Iterable[Vertex] = ()) -> bool:
        """Connectivity of s and t after deleting the failed vertices.

        Decided from the labels of ``s``, ``t`` and the failed vertices only
        (their stored incident edge labels provide the induced edge faults).
        """
        failed = list(dict.fromkeys(failed_vertices))
        if len(failed) > self.max_vertex_faults:
            raise ValueError("query has %d failed vertices but the scheme supports %d"
                             % (len(failed), self.max_vertex_faults))
        if s in failed or t in failed:
            return False
        if s == t:
            return True
        fault_edge_labels: list[EdgeLabel] = []
        seen_intervals = set()
        for vertex in failed:
            for _, edge_label in self._labels[vertex].incident_edge_labels:
                key = (edge_label.ancestry_lower.pre, edge_label.ancestry_lower.post)
                if key in seen_intervals:
                    continue
                seen_intervals.add(key)
                fault_edge_labels.append(edge_label)
        decoder = self.edge_scheme.decoder()
        return decoder.connected(self._labels[s].vertex_label,
                                 self._labels[t].vertex_label,
                                 fault_edge_labels)

    def connected_exact(self, s: Vertex, t: Vertex,
                        failed_vertices: Iterable[Vertex] = ()) -> bool:
        """Ground truth by BFS on the graph with the failed vertices removed."""
        failed = set(failed_vertices)
        if s in failed or t in failed:
            return False
        removed_edges = [canonical_edge(u, v) for u, v in self.graph.edges()
                         if u in failed or v in failed]
        return self.graph.connected(s, t, removed=removed_edges)
