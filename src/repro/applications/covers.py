"""Sparse neighborhood covers (Awerbuch--Peleg style region growing).

A cover at scale ``r`` is a family of clusters (connected vertex sets) such
that the ball of radius ``r`` around every vertex is fully contained in at
least one cluster, every cluster has radius ``O(k r)``, and every vertex
belongs to few clusters.  The fault-tolerant distance labeling of Corollary 1
labels every cluster of every scale with an f-FTC labeling; connectivity of s
and t inside a common cluster at scale ``r`` certifies distance ``O(k r)``.

The construction is the classic deterministic region-growing argument: grow a
ball from an uncovered vertex, one layer at a time, until a layer fails to
multiply the ball size by ``n^{1/k}``; the grown ball becomes a cluster and
its inner part is marked covered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.graphs.graph import Graph

Vertex = Hashable


@dataclass
class SparseNeighborhoodCover:
    """A cover at one scale."""

    radius: int
    clusters: list = field(default_factory=list)          # list[set]
    cluster_radius: list = field(default_factory=list)    # grown radius per cluster

    def clusters_of(self, vertex: Vertex) -> list[int]:
        """Indices of the clusters containing ``vertex``."""
        return [index for index, cluster in enumerate(self.clusters) if vertex in cluster]

    def max_membership(self) -> int:
        """Maximum number of clusters any vertex belongs to (the sparsity)."""
        counts: dict[Vertex, int] = {}
        for cluster in self.clusters:
            for vertex in cluster:
                counts[vertex] = counts.get(vertex, 0) + 1
        return max(counts.values()) if counts else 0

    def covers_all_balls(self, graph: Graph) -> bool:
        """Verify the covering property: every ball of radius ``radius`` is inside a cluster."""
        for vertex in graph.vertices():
            ball = _ball(graph, vertex, self.radius)
            if not any(ball <= cluster for cluster in self.clusters):
                return False
        return True


def build_cover(graph: Graph, radius: int, stretch_parameter: int = 2) -> SparseNeighborhoodCover:
    """Build a sparse cover at one scale by deterministic region growing."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if stretch_parameter < 1:
        raise ValueError("stretch parameter k must be at least 1")
    n = graph.num_vertices()
    growth_factor = max(n ** (1.0 / stretch_parameter), 1.0 + 1e-9)
    uncovered = set(graph.vertices())
    cover = SparseNeighborhoodCover(radius=radius)
    order = sorted(graph.vertices(), key=lambda v: (type(v).__name__, repr(v)))
    for center in order:
        if center not in uncovered:
            continue
        inner_radius = 0
        inner = _ball(graph, center, 0)
        while True:
            outer = _ball(graph, center, inner_radius + radius)
            if len(outer) <= growth_factor * len(inner) or inner_radius > stretch_parameter * (radius + 1) + 1:
                break
            inner_radius += radius if radius > 0 else 1
            inner = _ball(graph, center, inner_radius)
        cluster = _ball(graph, center, inner_radius + radius)
        cover.clusters.append(cluster)
        cover.cluster_radius.append(inner_radius + radius)
        uncovered -= inner
    return cover


def build_scale_covers(graph: Graph, stretch_parameter: int = 2,
                       max_radius: int | None = None) -> list[SparseNeighborhoodCover]:
    """Covers at geometrically increasing scales 1, 2, 4, ... up to the diameter."""
    if max_radius is None:
        max_radius = max(graph.num_vertices(), 2)
    covers = []
    radius = 1
    while radius <= max_radius:
        covers.append(build_cover(graph, radius, stretch_parameter))
        if len(covers[-1].clusters) == 1 and len(covers[-1].clusters[0]) == graph.num_vertices():
            break
        radius *= 2
    return covers


def _ball(graph: Graph, center: Vertex, radius: int) -> set:
    """Closed BFS ball of the given radius."""
    ball = {center}
    frontier = [center]
    for _ in range(radius):
        next_frontier = []
        for vertex in frontier:
            for neighbor in graph.neighbors(vertex):
                if neighbor not in ball:
                    ball.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return ball
