"""Applications of the f-FTC labeling scheme (Corollaries 1 and 2).

The paper obtains these applications by plugging any f-FTC labeling scheme
into the black-box reductions of Dory--Parter; because our scheme is
deterministic, so are the resulting schemes.

* :mod:`repro.applications.covers` — sparse neighborhood covers (the substrate
  of the distance-labeling reduction).
* :mod:`repro.applications.distance_labeling` — fault-tolerant approximate
  distance labels (Corollary 1).
* :mod:`repro.applications.routing` — forbidden-set / fault-tolerant compact
  routing with a packet-level simulator (Corollary 2).
"""

from repro.applications.covers import SparseNeighborhoodCover, build_scale_covers
from repro.applications.distance_labeling import FaultTolerantDistanceLabeling
from repro.applications.routing import ForbiddenSetRoutingScheme, RouteResult
from repro.applications.vertex_faults import VertexFaultTolerantLabeling

__all__ = [
    "SparseNeighborhoodCover",
    "build_scale_covers",
    "FaultTolerantDistanceLabeling",
    "ForbiddenSetRoutingScheme",
    "RouteResult",
    "VertexFaultTolerantLabeling",
]
