"""Fault-tolerant approximate distance labeling (Corollary 1).

Following the Dory--Parter reduction in spirit: build sparse neighborhood
covers at geometrically increasing scales, give every cluster its own f-FTC
labeling, and estimate the distance of ``s`` and ``t`` under faults ``F`` as
the diameter bound of the smallest-scale cluster in which ``s`` and ``t`` are
still connected after removing the faults inside the cluster.

If the true distance in ``G - F`` is ``d``, then at the first scale whose
cluster radius reaches ``d`` (under fault-free growth plus the detours forced
by at most ``|F|`` faults) some common cluster certifies connectivity, so the
estimate never errs below and its ratio to ``d`` is the observed stretch,
which the COR1 benchmark compares against the paper's ``O(|F| k)`` bound.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

from repro.applications.covers import SparseNeighborhoodCover, build_scale_covers
from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.graphs.graph import Edge, Graph, canonical_edge

Vertex = Hashable

#: Returned when s and t are disconnected in G - F at every scale.
UNREACHABLE = math.inf


class FaultTolerantDistanceLabeling:
    """Approximate distance labels built from per-cluster f-FTC labelings."""

    def __init__(self, graph: Graph, max_faults: int, stretch_parameter: int = 2,
                 variant: SchemeVariant = SchemeVariant.DETERMINISTIC_NEARLINEAR,
                 seed: int = 0):
        self.graph = graph
        self.max_faults = max_faults
        self.stretch_parameter = stretch_parameter
        self.covers: list[SparseNeighborhoodCover] = build_scale_covers(
            graph, stretch_parameter=stretch_parameter)
        self._cluster_labelings: list[list[FTCLabeling | None]] = []
        self._cluster_graphs: list[list[Graph]] = []
        config_template = dict(max_faults=max_faults, variant=variant, random_seed=seed)
        for cover in self.covers:
            labelings: list[FTCLabeling | None] = []
            graphs: list[Graph] = []
            for cluster in cover.clusters:
                cluster_graph = _induced_subgraph(graph, cluster)
                graphs.append(cluster_graph)
                if cluster_graph.num_vertices() >= 2 and cluster_graph.is_connected():
                    labelings.append(FTCLabeling(cluster_graph, FTCConfig(**config_template)))
                else:
                    labelings.append(None)
            self._cluster_labelings.append(labelings)
            self._cluster_graphs.append(graphs)

    # ----------------------------------------------------------------- queries

    def estimate_distance(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> float:
        """An upper estimate of dist_{G-F}(s, t); ``UNREACHABLE`` if disconnected."""
        if s == t:
            return 0.0
        fault_list = [canonical_edge(u, v) for u, v in faults]
        for scale_index, cover in enumerate(self.covers):
            estimate = self._estimate_at_scale(scale_index, cover, s, t, fault_list)
            if estimate is not None:
                return estimate
        return UNREACHABLE

    def _estimate_at_scale(self, scale_index: int, cover: SparseNeighborhoodCover,
                           s: Vertex, t: Vertex, faults: list) -> float | None:
        common = set(cover.clusters_of(s)) & set(cover.clusters_of(t))
        best = None
        for cluster_index in sorted(common):
            labeling = self._cluster_labelings[scale_index][cluster_index]
            cluster_graph = self._cluster_graphs[scale_index][cluster_index]
            if labeling is None:
                continue
            cluster_faults = [edge for edge in faults if cluster_graph.has_edge(*edge)]
            if len(cluster_faults) > self.max_faults:
                cluster_faults = cluster_faults[: self.max_faults]
            if labeling.connected(s, t, cluster_faults):
                # The cluster has fault-free diameter <= 2 * radius; a path
                # surviving |F'| faults inside it detours around each fault, so
                # the certified distance is (2 |F'| + 1) times that diameter —
                # the |F| k shape of Corollary 1.
                diameter_bound = (2.0 * len(cluster_faults) + 1.0) * 2.0 * cover.cluster_radius[cluster_index]
                if best is None or diameter_bound < best:
                    best = diameter_bound
        return best

    # -------------------------------------------------------------- statistics

    def label_size_stats(self) -> dict:
        """Aggregate per-vertex label size across scales and clusters (bits)."""
        per_vertex_bits: dict[Vertex, int] = {vertex: 0 for vertex in self.graph.vertices()}
        for scale_labelings, cover in zip(self._cluster_labelings, self.covers):
            for labeling, cluster in zip(scale_labelings, cover.clusters):
                if labeling is None:
                    continue
                for vertex in cluster:
                    per_vertex_bits[vertex] += labeling.vertex_label(vertex).bit_size()
        values = list(per_vertex_bits.values())
        return {
            "scales": len(self.covers),
            "clusters_per_scale": [len(c.clusters) for c in self.covers],
            "max_vertex_label_bits": max(values) if values else 0,
            "mean_vertex_label_bits": (sum(values) / len(values)) if values else 0.0,
        }

    def stretch_report(self, queries: Iterable[tuple]) -> dict:
        """Observed stretch over queries (s, t, F) with finite true distance."""
        import networkx as nx

        stretches = []
        unreachable_agreements = 0
        total = 0
        for s, t, faults in queries:
            total += 1
            reduced = self.graph.without_edges(faults).to_networkx()
            try:
                true_distance = nx.shortest_path_length(reduced, s, t)
            except nx.NetworkXNoPath:
                if self.estimate_distance(s, t, faults) == UNREACHABLE:
                    unreachable_agreements += 1
                continue
            estimate = self.estimate_distance(s, t, faults)
            if estimate == UNREACHABLE:
                continue
            stretches.append(max(estimate, 1.0) / max(true_distance, 1))
        return {
            "total": total,
            "finite_queries": len(stretches),
            "max_stretch": max(stretches) if stretches else 0.0,
            "mean_stretch": (sum(stretches) / len(stretches)) if stretches else 0.0,
            "unreachable_agreements": unreachable_agreements,
        }


def _induced_subgraph(graph: Graph, vertices: set) -> Graph:
    subgraph = Graph(vertices=vertices)
    for u, v in graph.edges():
        if u in vertices and v in vertices:
            subgraph.add_edge(u, v)
    return subgraph
