"""A deterministic greedy epsilon-net for axis-aligned rectangles.

This is the second deterministic net construction exposed by the library.  It
plays the role of the Mustafa--Dutta--Ghosh net in Lemma 10/Lemma 4 of the
paper: the paper only needs *some* deterministic polynomial-time net
construction with a better-than-trivial size to instantiate the
"poly(m) construction time" variant of Theorem 1.  The MDG18 algorithm has a
very high-exponent polynomial running time; as documented in DESIGN.md we
substitute a classic greedy hitting-set over the canonical rectangle family,
which is deterministic, polynomial, and achieves the standard
``O(log N / epsilon)`` size bound via the greedy set-cover guarantee.  The
hierarchy and labeling machinery built on top is identical, so the
substitution only affects constants in the label size, which the hierarchy
ablation benchmark measures.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.epsnet.rectangles import Rectangle

Point = tuple


def greedy_rectangle_net(points: Sequence[Point], threshold: int) -> list[int]:
    """Greedy hitting set for all canonical rectangles containing >= threshold points.

    Returns indices of the selected points.  Runs in polynomial time
    (O(N^4) canonical rectangles in the worst case, pruned aggressively), so it
    is intended for moderate instance sizes; ``net_find`` is the near-linear
    default.
    """
    if threshold < 1:
        raise ValueError("threshold must be positive, got %d" % threshold)
    total = len(points)
    if total == 0 or total < threshold:
        return []

    heavy = _heavy_canonical_rectangles(points, threshold)
    if not heavy:
        return []

    # Greedy set cover: repeatedly pick the point contained in the largest
    # number of not-yet-hit heavy rectangles.
    selected: list[int] = []
    remaining = list(range(len(heavy)))
    containment = _containment_lists(points, heavy)
    while remaining:
        counts = [0] * total
        for rect_index in remaining:
            for point_index in containment[rect_index]:
                counts[point_index] += 1
        best_point = max(range(total), key=lambda index: (counts[index], -index))
        if counts[best_point] == 0:  # pragma: no cover - defensive, cannot happen
            break
        selected.append(best_point)
        remaining = [rect_index for rect_index in remaining
                     if best_point not in containment[rect_index]]
    return sorted(set(selected))


def greedy_net_size_bound(total_points: int, threshold: int) -> int:
    """The standard greedy guarantee: |net| <= (N/threshold) * (1 + ln N)."""
    if total_points == 0:
        return 0
    return int(math.ceil((total_points / threshold) * (1.0 + math.log(max(total_points, 2)))))


def _heavy_canonical_rectangles(points: Sequence[Point], threshold: int) -> list[Rectangle]:
    """Inclusion-minimal canonical rectangles containing at least ``threshold`` points.

    Minimality keeps the greedy instance small: hitting every minimal heavy
    rectangle hits every heavy rectangle.
    """
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    heavy: list[Rectangle] = []
    for i, x_low in enumerate(xs):
        for x_high in xs[i:]:
            column = [p for p in points if x_low <= p[0] <= x_high]
            if len(column) < threshold:
                continue
            column_ys = sorted(p[1] for p in column)
            # Slide a window of exactly `threshold` points in y-order: the
            # minimal heavy rectangles for this x-range.
            for start in range(len(column_ys) - threshold + 1):
                y_low = column_ys[start]
                y_high = column_ys[start + threshold - 1]
                heavy.append(Rectangle(x_low, x_high, y_low, y_high))
    # Deduplicate.
    unique = []
    seen = set()
    for rectangle in heavy:
        key = (rectangle.x_low, rectangle.x_high, rectangle.y_low, rectangle.y_high)
        if key not in seen:
            seen.add(key)
            unique.append(rectangle)
    return unique


def _containment_lists(points: Sequence[Point], rectangles: Sequence[Rectangle]) -> list[set]:
    containment = []
    for rectangle in rectangles:
        containment.append({index for index, point in enumerate(points)
                            if rectangle.contains(point)})
    return containment
