"""The near-linear deterministic epsilon-net of Lemma 12 (``NetFind``).

``NetFind`` is a divide-and-conquer over the x-axis.  At every node it splits
the point set at a median vertical line and adds the *slab net* of Lemma 11
for that line: group the points by y-coordinate into blocks, and from every
block keep the point closest to the line from the left and from the right.
Any axis-aligned rectangle containing enough points must either avoid the
median line (and is handled by a recursive call) or cross it (and then some
block is fully covered by the rectangle's y-range, so one of its two kept
points is inside the rectangle).

The functions work on point *indices* so callers can carry arbitrary payloads
(for the hierarchy: edges) alongside the points without worrying about
coordinate collisions.
"""

from __future__ import annotations

import math
from typing import Sequence

Point = tuple


def slab_net(points: Sequence[Point], indices: Sequence[int], group_size: int,
             line_x: float) -> list[int]:
    """The slab construction of Lemma 11 for the vertical line ``x = line_x``.

    Splits the points (given by ``indices`` into ``points``) into blocks of
    ``group_size`` consecutive points in y-order and keeps, per block, the
    point with the largest x-coordinate not exceeding ``line_x`` and the point
    with the smallest x-coordinate exceeding it.

    Guarantee: every axis-aligned rectangle that crosses the line and contains
    at least ``3 * group_size`` of the points contains a selected point.  The
    output has at most ``2 * ceil(len(indices) / group_size)`` points.
    """
    if group_size < 1:
        raise ValueError("group_size must be positive, got %d" % group_size)
    by_y = sorted(indices, key=lambda index: (points[index][1], points[index][0], index))
    selected: list[int] = []
    for start in range(0, len(by_y), group_size):
        block = by_y[start:start + group_size]
        left_candidates = [index for index in block if points[index][0] <= line_x]
        right_candidates = [index for index in block if points[index][0] > line_x]
        if left_candidates:
            selected.append(max(left_candidates, key=lambda index: (points[index][0], -index)))
        if right_candidates:
            selected.append(min(right_candidates, key=lambda index: (points[index][0], index)))
    return selected


def net_find(points: Sequence[Point], capacity: int | None = None,
             leaf_threshold: float | None = None) -> list[int]:
    """The ``NetFind`` algorithm of Lemma 12.

    Parameters
    ----------
    points:
        The point set P (2-D tuples).
    capacity:
        The parameter ``N`` of the lemma (an upper bound on ``|P|``); defaults
        to ``len(points)``.
    leaf_threshold:
        Recursion stops (returning the empty set) below this size; defaults to
        the lemma's ``12 * log2(N)``.

    Returns
    -------
    list[int]
        Indices of the selected points.  The selection is a
        ``(12 log2 N / |P|)``-net for axis-aligned rectangles of size at most
        ``|P| * log2(|P|) / (2 log2 N)`` — in particular at most ``|P| / 2``
        when ``capacity == len(points)``, which is what drives the
        logarithmic depth of the sparsification hierarchy.
    """
    total = len(points)
    if total == 0:
        return []
    if capacity is None:
        capacity = total
    if capacity < total:
        raise ValueError("capacity %d is smaller than the point count %d" % (capacity, total))
    log_capacity = max(math.log2(capacity), 1.0)
    if leaf_threshold is None:
        leaf_threshold = 12.0 * log_capacity
    group_size = max(int(math.ceil(4.0 * log_capacity)), 1)
    all_indices = list(range(total))
    selected = _net_find_recursive(points, all_indices, leaf_threshold, group_size)
    return sorted(set(selected))


def hitting_threshold(capacity: int) -> int:
    """The rectangle size guaranteed to be hit by :func:`net_find` (``12 log2 N``)."""
    return int(math.ceil(12.0 * max(math.log2(max(capacity, 2)), 1.0)))


def _net_find_recursive(points: Sequence[Point], indices: list[int],
                        leaf_threshold: float, group_size: int) -> list[int]:
    if len(indices) < leaf_threshold:
        return []
    by_x = sorted(indices, key=lambda index: (points[index][0], points[index][1], index))
    half = len(by_x) // 2
    median_x = points[by_x[half]][0]
    left, right = by_x[:half], by_x[half:]
    selected = slab_net(points, indices, group_size, median_x)
    selected.extend(_net_find_recursive(points, left, leaf_threshold, group_size))
    selected.extend(_net_find_recursive(points, right, leaf_threshold, group_size))
    return selected
