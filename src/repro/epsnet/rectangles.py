"""Axis-aligned rectangles and point utilities for the epsilon-net machinery."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

Point = tuple


@dataclass(frozen=True)
class Rectangle:
    """A closed axis-aligned rectangle ``[x_low, x_high] x [y_low, y_high]``."""

    x_low: float
    x_high: float
    y_low: float
    y_high: float

    def __post_init__(self):
        if self.x_low > self.x_high or self.y_low > self.y_high:
            raise ValueError("degenerate rectangle: %r" % (self,))

    def contains(self, point: Point) -> bool:
        x, y = point
        return self.x_low <= x <= self.x_high and self.y_low <= y <= self.y_high

    def crosses_vertical_line(self, x: float) -> bool:
        """Whether the rectangle intersects the vertical line at abscissa ``x``."""
        return self.x_low <= x <= self.x_high

    def intersects(self, other: "Rectangle") -> bool:
        return not (self.x_high < other.x_low or other.x_high < self.x_low
                    or self.y_high < other.y_low or other.y_high < self.y_low)

    @classmethod
    def bounding(cls, points: Sequence[Point]) -> "Rectangle":
        """The bounding rectangle of a non-empty point set."""
        if not points:
            raise ValueError("cannot bound an empty point set")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return cls(min(xs), max(xs), min(ys), max(ys))


def points_in_rectangle(points: Iterable[Point], rectangle: Rectangle) -> list[Point]:
    """All points of the iterable lying inside the rectangle."""
    return [point for point in points if rectangle.contains(point)]


def canonical_rectangles(points: Sequence[Point]) -> list[Rectangle]:
    """A canonical family of rectangles spanned by point coordinates.

    Every axis-aligned rectangle can be shrunk, without changing which of the
    given points it contains, until its four sides pass through point
    coordinates.  The family of such "canonical" rectangles therefore captures
    every distinct point subset an arbitrary rectangle can cut out; it has
    O(N^4) members.  It is used by the greedy net construction and by the
    exhaustive validators in the test-suite (on small inputs only).
    """
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    rectangles = []
    for i, x_low in enumerate(xs):
        for x_high in xs[i:]:
            for j, y_low in enumerate(ys):
                for y_high in ys[j:]:
                    rectangles.append(Rectangle(x_low, x_high, y_low, y_high))
    return rectangles
