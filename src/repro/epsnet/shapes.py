"""The H_{2f} shape family of Section 4.3.

A cut set ``∂_{E'}(S)`` for ``S`` with at most ``f`` faulty tree edges maps,
under the Euler-tour embedding, to the points lying in the symmetric
difference of at most ``2f`` horizontal half-planes and the corresponding
``2f`` vertical half-planes (Lemma 3).  Such a "checkered" region decomposes
into at most ``(2f + 1)^2 / 2`` axis-aligned rectangles, which is the
reduction that turns rectangle epsilon-nets into nets for cut sets (and hence
into good sparsification hierarchies, Lemma 5).

The class here provides exact membership tests and the rectangle
decomposition; it is used by the hierarchy validator and by the Figure-2
benchmark, not by the construction hot path (which only needs the rectangle
net itself).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.epsnet.rectangles import Rectangle

Point = tuple


class SymmetricDifferenceShape:
    """The symmetric difference of half-planes ``{x >= a}`` and ``{y >= a}``.

    Parameters
    ----------
    cut_positions:
        The multiset of threshold coordinates ``a`` — in the paper these are
        the Euler-tour positions of the directed tree edges crossing the cut.
        Each position contributes both a vertical and a horizontal half-plane.
    """

    def __init__(self, cut_positions: Iterable[int]):
        self.cut_positions = sorted(cut_positions)

    def contains(self, point: Point) -> bool:
        """Membership: the point lies in an odd number of the half-planes."""
        x, y = point
        count = 0
        for position in self.cut_positions:
            if x >= position:
                count += 1
            if y >= position:
                count += 1
        return count % 2 == 1

    def filter_points(self, points: Sequence[Point]) -> list[Point]:
        return [point for point in points if self.contains(point)]

    def rectangle_decomposition(self, bound: int) -> list[Rectangle]:
        """Decompose the shape (clipped to ``[0, bound]^2``) into rectangles.

        The thresholds split each axis into at most ``2f + 1`` intervals; the
        shape is a union of cells of the resulting grid, and each cell is an
        axis-aligned rectangle.  Adjacent cells in the same row are merged so
        the output size matches the paper's ``(2f + 1)^2 / 2`` bound up to
        constants.
        """
        boundaries = [0] + [p for p in self.cut_positions if 0 < p <= bound] + [bound + 1]
        boundaries = sorted(set(boundaries))
        intervals = [(boundaries[i], boundaries[i + 1] - 1)
                     for i in range(len(boundaries) - 1)
                     if boundaries[i] <= boundaries[i + 1] - 1]
        rectangles: list[Rectangle] = []
        for y_low, y_high in intervals:
            run_start = None
            for x_low, x_high in intervals:
                cell_point = (x_low, y_low)
                if self.contains(cell_point):
                    if run_start is None:
                        run_start = x_low
                    run_end = x_high
                else:
                    if run_start is not None:
                        rectangles.append(Rectangle(run_start, run_end, y_low, y_high))
                        run_start = None
            if run_start is not None:
                rectangles.append(Rectangle(run_start, run_end, y_low, y_high))
        return rectangles

    def max_rectangles_bound(self) -> int:
        """The paper's bound on the number of rectangles: (q + 1)^2 / 2 for q thresholds."""
        q = len(self.cut_positions)
        return max((q + 1) * (q + 1) // 2, 1)


def shape_from_cut_positions(cut_positions: Iterable[int]) -> SymmetricDifferenceShape:
    """Convenience constructor mirroring Lemma 3's notation."""
    return SymmetricDifferenceShape(cut_positions)
