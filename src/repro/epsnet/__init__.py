"""Deterministic epsilon-net constructions (Section 4.3, Lemmas 10-12).

The deterministic sparsification of the paper needs, at every level of the
hierarchy, a constant-fraction subset of the current edge set that hits every
"large" cut set.  Through the Euler-tour embedding (Lemma 3) cut sets become
symmetric differences of axis-aligned half-planes, which decompose into
axis-aligned rectangles — so the whole problem reduces to deterministic
epsilon-nets for points and axis-aligned rectangles.

* :mod:`repro.epsnet.rectangles` — points, rectangles, membership and counting.
* :mod:`repro.epsnet.netfind` — the near-linear divide-and-conquer net of
  Lemma 12, built on the slab construction of Lemma 11.
* :mod:`repro.epsnet.greedy_net` — a deterministic greedy hitting-set baseline
  over a canonical family of grid rectangles (used in the hierarchy ablation
  and standing in for the high-exponent MDG18 construction, see DESIGN.md).
* :mod:`repro.epsnet.shapes` — the H_{2f} symmetric-difference shapes and the
  reduction from shapes to rectangles.
"""

from repro.epsnet.rectangles import Rectangle, points_in_rectangle
from repro.epsnet.netfind import net_find, slab_net
from repro.epsnet.greedy_net import greedy_rectangle_net
from repro.epsnet.shapes import SymmetricDifferenceShape, shape_from_cut_positions

__all__ = [
    "Rectangle",
    "points_in_rectangle",
    "net_find",
    "slab_net",
    "greedy_rectangle_net",
    "SymmetricDifferenceShape",
    "shape_from_cut_positions",
]
