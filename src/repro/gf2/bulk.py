"""Bulk (vectorized) GF(2^w) arithmetic backends.

The label-construction hot path of the scheme is embarrassingly data-parallel:
every non-tree edge contributes the consecutive powers ``x_e, x_e^2, ...,
x_e^{2k}`` of its identifier (Proposition 2), and vertex labels are XOR
accumulations of those rows.  :class:`BulkOps` captures exactly that shape so
the outdetect layer can be written once and executed by interchangeable
backends:

``PyBulkOps``
    Pure Python, table-driven (reuses :class:`~repro.gf2.field.FixedMultiplier`
    windows and the field's log/exp tables when present).  Always available.

``NumpyBulkOps``
    Bit-sliced numpy implementation: carry-less products are assembled by
    XOR-ing shifted operand arrays one multiplier bit at a time and reduced
    modulo the field polynomial with vectorized conditional XORs.  Requires
    ``numpy`` and a field width ``w <= 32`` (so degree < 2w products fit in
    ``uint64``); :func:`get_bulk_ops` falls back to the pure-Python backend
    cleanly when either precondition fails.

Both backends compute the *exact same* field arithmetic, so their outputs are
bit-identical — the cross-check tests and ``bench_batch_queries.py`` assert
this.  Backend selection can be forced with the ``REPRO_GF2_BACKEND``
environment variable (``auto`` / ``python`` / ``numpy``).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from repro.gf2.field import GF2m

try:  # numpy is an optional accelerator, never a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-absent CI job
    _np = None

#: Environment variable that forces a backend (``auto``, ``python``, ``numpy``).
BACKEND_ENV_VAR = "REPRO_GF2_BACKEND"

#: Widest field the uint64 bit-sliced kernels support (products have degree
#: ``< 2w``, so ``2w - 1 <= 63``).
NUMPY_MAX_WIDTH = 32


class BackendUnavailable(RuntimeError):
    """Raised when an explicitly requested backend cannot run here."""


class BulkOps(ABC):
    """Vectorized bulk operations over one GF(2^w) field.

    The XOR-only operations (:meth:`xor_accumulate`, :meth:`scatter_xor`,
    :meth:`scatter_xor_rows`) also work without a field (``field=None``),
    which is what the randomized sketch scheme uses — its cell values are
    fingerprint-extended integers, not field elements.
    """

    #: Short backend identifier (``"python"`` or ``"numpy"``).
    name: str = "abstract"

    def __init__(self, field: GF2m | None = None):
        self.field = field

    def _require_field(self) -> GF2m:
        if self.field is None:
            raise ValueError("this BulkOps instance was built without a field; "
                             "only XOR operations are available")
        return self.field

    # -------------------------------------------------------------- field ops

    @abstractmethod
    def mul_many(self, elements: Sequence[int], multiplier) -> list[int]:
        """Multiply many field elements at once.

        ``multiplier`` is either a single field element (every entry of
        ``elements`` is scaled by it) or a sequence of the same length as
        ``elements`` (element-wise products).
        """

    @abstractmethod
    def pow_range(self, base: int, count: int) -> list[int]:
        """Consecutive powers ``[base, base^2, ..., base^count]``.

        This is an edge's entire outdetect contribution computed in one shot.
        """

    @abstractmethod
    def pow_range_many(self, bases: Sequence[int], count: int) -> list[list[int]]:
        """``pow_range`` for many bases: returns one row of powers per base."""

    # --------------------------------------------------------------- xor ops

    @abstractmethod
    def xor_accumulate(self, target: list[int], rows: Iterable[Sequence[int]]) -> list[int]:
        """XOR every row of ``rows`` into ``target`` in place and return it."""

    @abstractmethod
    def scatter_xor_rows(self, num_rows: int, row_len: int,
                         indices: Sequence[int],
                         rows: Sequence[Sequence[int]]) -> list[list[int]]:
        """Build a ``num_rows x row_len`` zero matrix and XOR ``rows[i]`` into
        row ``indices[i]`` for every ``i`` (duplicate indices accumulate)."""

    @abstractmethod
    def scatter_xor(self, num_rows: int, row_len: int,
                    row_indices: Sequence[int], col_indices: Sequence[int],
                    values: Sequence[int]) -> list[list[int]]:
        """Build a zero matrix and XOR ``values[i]`` into cell
        ``(row_indices[i], col_indices[i])`` for every ``i``."""


class PyBulkOps(BulkOps):
    """Pure-Python, table-driven reference backend (always available).

    Windowed multiplier tables are memoized per base element: one session
    decode re-encodes the same small supports (edge identifiers) many times
    during verification, and the decode hot path multiplies by the same
    syndrome elements across Berlekamp--Massey steps, so rebuilding the
    16-entry window on every call was pure waste.  The memo is bounded
    (:attr:`MULTIPLIER_CACHE_SIZE`) and affects timing only — the window
    contents are a pure function of the base element.
    """

    name = "python"

    #: Bound on the per-instance window-table memo (tables are ~16 ints each).
    MULTIPLIER_CACHE_SIZE = 1024

    def __init__(self, field: GF2m | None = None):
        super().__init__(field)
        self._multiplier_cache: dict[int, object] = {}

    def _multiplier(self, base: int):
        """The (memoized) windowed multiplier for one base element."""
        window = self._multiplier_cache.get(base)
        if window is None:
            if len(self._multiplier_cache) >= self.MULTIPLIER_CACHE_SIZE:
                self._multiplier_cache.clear()
            window = self._multiplier_cache[base] = self.field.multiplier(base)
        return window

    def mul_many(self, elements: Sequence[int], multiplier) -> list[int]:
        field = self._require_field()
        if isinstance(multiplier, int):
            if not elements:
                return []
            window = self._multiplier(multiplier)
            return [window.mul(element) for element in elements]
        if len(multiplier) != len(elements):
            raise ValueError("mul_many got %d elements but %d multipliers"
                             % (len(elements), len(multiplier)))
        return [field.mul(a, b) for a, b in zip(elements, multiplier)]

    def pow_range(self, base: int, count: int) -> list[int]:
        self._require_field()
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        if count == 0:
            return []
        window = self._multiplier(base)
        powers = [base]
        current = base
        for _ in range(count - 1):
            current = window.mul(current)
            powers.append(current)
        return powers

    def pow_range_many(self, bases: Sequence[int], count: int) -> list[list[int]]:
        return [self.pow_range(base, count) for base in bases]

    def xor_accumulate(self, target: list[int], rows: Iterable[Sequence[int]]) -> list[int]:
        length = len(target)
        for row in rows:
            if len(row) != length:
                raise ValueError("xor_accumulate row of length %d does not match "
                                 "target length %d" % (len(row), length))
            for index, value in enumerate(row):
                target[index] ^= value
        return target

    def scatter_xor_rows(self, num_rows: int, row_len: int,
                         indices: Sequence[int],
                         rows: Sequence[Sequence[int]]) -> list[list[int]]:
        matrix = [[0] * row_len for _ in range(num_rows)]
        for index, row in zip(indices, rows):
            target = matrix[index]
            for position, value in enumerate(row):
                target[position] ^= value
        return matrix

    def scatter_xor(self, num_rows: int, row_len: int,
                    row_indices: Sequence[int], col_indices: Sequence[int],
                    values: Sequence[int]) -> list[list[int]]:
        matrix = [[0] * row_len for _ in range(num_rows)]
        for row, col, value in zip(row_indices, col_indices, values):
            matrix[row][col] ^= value
        return matrix


class NumpyBulkOps(BulkOps):
    """Bit-sliced numpy backend (uint64 lanes, bit-identical to PyBulkOps).

    Inputs below ``small_cutoff`` total elements are delegated to the
    pure-Python path: array round-trips cost more than they save on tiny
    instances, and both paths compute the exact same field arithmetic.
    """

    name = "numpy"

    def __init__(self, field: GF2m | None = None, max_bits: int | None = None,
                 small_cutoff: int = 256):
        if _np is None:
            raise BackendUnavailable("numpy is not installed")
        if field is not None and field.width > NUMPY_MAX_WIDTH:
            raise BackendUnavailable(
                "field width %d exceeds the uint64 bit-sliced limit of %d"
                % (field.width, NUMPY_MAX_WIDTH))
        if max_bits is not None and max_bits > 64:
            raise BackendUnavailable(
                "values of %d bits do not fit the uint64 XOR kernels" % max_bits)
        super().__init__(field)
        self.small_cutoff = small_cutoff
        self._py = PyBulkOps(field)

    # ------------------------------------------------------------ primitives

    def _mul_arrays(self, a, b):
        """Element-wise carry-less product + reduction of two uint64 arrays."""
        field = self.field
        width = field.width
        product = _np.zeros_like(a)
        for bit in range(width):
            mask = (b >> _np.uint64(bit)) & _np.uint64(1)
            product ^= (a << _np.uint64(bit)) * mask
        return self._reduce(product)

    def _scale_array(self, a, scalar: int):
        """Multiply a uint64 array by one fixed field element."""
        product = _np.zeros_like(a)
        remaining = scalar
        while remaining:
            low = remaining & -remaining
            product ^= a << _np.uint64(low.bit_length() - 1)
            remaining ^= low
        return self._reduce(product)

    def _reduce(self, product):
        """Vectorized reduction of degree < 2w polynomials mod the field poly."""
        field = self.field
        width = field.width
        modulus = field.modulus
        for degree in range(2 * width - 2, width - 1, -1):
            mask = (product >> _np.uint64(degree)) & _np.uint64(1)
            product ^= _np.uint64(modulus << (degree - width)) * mask
        return product

    # -------------------------------------------------------------- field ops

    def mul_many(self, elements: Sequence[int], multiplier) -> list[int]:
        self._require_field()
        if not len(elements):
            return []
        if len(elements) < self.small_cutoff:
            return self._py.mul_many(elements, multiplier)
        a = _np.asarray(elements, dtype=_np.uint64)
        if isinstance(multiplier, int):
            if multiplier == 0:
                return [0] * len(elements)
            return [int(x) for x in self._scale_array(a, multiplier)]
        if len(multiplier) != len(elements):
            raise ValueError("mul_many got %d elements but %d multipliers"
                             % (len(elements), len(multiplier)))
        b = _np.asarray(multiplier, dtype=_np.uint64)
        return [int(x) for x in self._mul_arrays(a, b)]

    def pow_range(self, base: int, count: int) -> list[int]:
        # A single power chain is inherently sequential; the windowed
        # pure-Python multiplier is the faster kernel for it.
        return self._py.pow_range(base, count)

    def pow_range_many(self, bases: Sequence[int], count: int) -> list[list[int]]:
        self._require_field()
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        if count == 0 or not len(bases):
            return [[] for _ in bases]
        if len(bases) * count < self.small_cutoff:
            return self._py.pow_range_many(bases, count)
        base_array = _np.asarray(bases, dtype=_np.uint64)
        columns = [base_array]
        current = base_array
        for _ in range(count - 1):
            current = self._mul_arrays(current, base_array)
            columns.append(current)
        matrix = _np.stack(columns, axis=1)
        return [[int(x) for x in row] for row in matrix]

    # --------------------------------------------------------------- xor ops

    def xor_accumulate(self, target: list[int], rows: Iterable[Sequence[int]]) -> list[int]:
        rows = list(rows)
        if not rows:
            return target
        length = len(target)
        if len(rows) * length < self.small_cutoff:
            return self._py.xor_accumulate(target, rows)
        for row in rows:
            if len(row) != length:
                raise ValueError("xor_accumulate row of length %d does not match "
                                 "target length %d" % (len(row), length))
        stacked = _np.asarray(rows, dtype=_np.uint64)
        combined = _np.bitwise_xor.reduce(stacked, axis=0)
        for index in range(length):
            target[index] ^= int(combined[index])
        return target

    def scatter_xor_rows(self, num_rows: int, row_len: int,
                         indices: Sequence[int],
                         rows: Sequence[Sequence[int]]) -> list[list[int]]:
        if len(indices) * row_len < self.small_cutoff:
            return self._py.scatter_xor_rows(num_rows, row_len, indices, rows)
        matrix = _np.zeros((num_rows, row_len), dtype=_np.uint64)
        if len(indices):
            index_array = _np.asarray(indices, dtype=_np.intp)
            row_array = _np.asarray(rows, dtype=_np.uint64)
            _np.bitwise_xor.at(matrix, index_array, row_array)
        return [[int(x) for x in row] for row in matrix]

    def scatter_xor(self, num_rows: int, row_len: int,
                    row_indices: Sequence[int], col_indices: Sequence[int],
                    values: Sequence[int]) -> list[list[int]]:
        if len(values) < self.small_cutoff:
            return self._py.scatter_xor(num_rows, row_len, row_indices,
                                        col_indices, values)
        matrix = _np.zeros((num_rows, row_len), dtype=_np.uint64)
        if len(values):
            rows = _np.asarray(row_indices, dtype=_np.intp)
            cols = _np.asarray(col_indices, dtype=_np.intp)
            vals = _np.asarray(values, dtype=_np.uint64)
            _np.bitwise_xor.at(matrix, (rows, cols), vals)
        return [[int(x) for x in row] for row in matrix]


def numpy_available() -> bool:
    """Whether the numpy backend can be constructed at all."""
    return _np is not None


def available_backends(field: GF2m | None = None, max_bits: int | None = None) -> list[str]:
    """Names of the backends usable for the given field / value width."""
    names = ["python"]
    try:
        NumpyBulkOps(field, max_bits=max_bits)
    except BackendUnavailable:
        return names
    names.append("numpy")
    return names


def get_bulk_ops(field: GF2m | None = None, backend: str | None = None,
                 max_bits: int | None = None) -> BulkOps:
    """Select a bulk backend for the given field.

    Parameters
    ----------
    field:
        The GF(2^w) field, or ``None`` for XOR-only use (sketch labels).
    backend:
        ``"auto"`` (default), ``"python"``, or ``"numpy"``.  When omitted the
        ``REPRO_GF2_BACKEND`` environment variable is consulted.  ``"auto"``
        prefers numpy and falls back to pure Python when numpy is missing or
        the field is too wide; forcing ``"numpy"`` raises
        :class:`BackendUnavailable` instead of falling back.
    max_bits:
        Upper bound on the bit length of XOR-ed values (used by the sketch
        scheme, whose fingerprint-extended identifiers are not field elements).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "auto").strip().lower() or "auto"
    if backend == "python":
        return PyBulkOps(field)
    if backend == "numpy":
        return NumpyBulkOps(field, max_bits=max_bits)
    if backend != "auto":
        raise ValueError("unknown GF(2^w) bulk backend %r (expected auto/python/numpy)"
                         % (backend,))
    try:
        return NumpyBulkOps(field, max_bits=max_bits)
    except BackendUnavailable:
        return PyBulkOps(field)
