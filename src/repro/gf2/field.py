"""Arithmetic in GF(2^w).

Field elements are plain Python integers in ``[0, 2^w)`` interpreted as
polynomials over GF(2) modulo the field's irreducible polynomial.  Keeping
elements as raw integers (instead of wrapper objects) keeps the inner loops of
label construction and syndrome decoding reasonably fast in pure Python.

The class :class:`GF2m` bundles the word size, the irreducible polynomial, and
the arithmetic operations.  :class:`FixedMultiplier` provides a windowed
multiplication table for repeatedly multiplying by the same element, which is
the dominant operation when computing the consecutive powers
``x, x^2, ..., x^{2k}`` that make up an edge's outdetect contribution
(Proposition 2 of the paper).
"""

from __future__ import annotations

from repro.gf2.irreducible import find_irreducible


class GF2m:
    """The finite field GF(2^w) for a configurable word size ``w``.

    Parameters
    ----------
    width:
        The extension degree ``w``; the field has ``2^w`` elements.
    modulus:
        Optional irreducible polynomial (as an int with the leading bit set).
        When omitted a deterministic irreducible polynomial of the requested
        degree is selected.
    """

    __slots__ = ("width", "modulus", "order", "_mask", "_small_log", "_small_exp")

    def __init__(self, width: int, modulus: int | None = None):
        if width < 1:
            raise ValueError("field width must be positive, got %d" % width)
        self.width = width
        self.modulus = modulus if modulus is not None else find_irreducible(width)
        if self.modulus.bit_length() - 1 != width:
            raise ValueError("modulus degree %d does not match width %d"
                             % (self.modulus.bit_length() - 1, width))
        self.order = 1 << width
        self._mask = self.order - 1
        self._small_log = None
        self._small_exp = None
        if width <= 12:
            self._build_tables()

    # ------------------------------------------------------------------ setup

    def _build_tables(self) -> None:
        """Build log/antilog tables for small fields (w <= 12).

        The tables give O(1) multiplication and inversion, which matters for
        the test suite where many small instances are exercised.
        """
        size = self.order
        exp_table = [0] * (2 * size)
        log_table = [0] * size
        value = 1
        generator = self._find_generator()
        for exponent in range(size - 1):
            exp_table[exponent] = value
            log_table[value] = exponent
            value = self._mul_nocache(value, generator)
        for exponent in range(size - 1, 2 * size):
            exp_table[exponent] = exp_table[exponent - (size - 1)]
        self._small_exp = exp_table
        self._small_log = log_table

    def _find_generator(self) -> int:
        """Find a multiplicative generator of the field (small fields only)."""
        group_order = self.order - 1
        factors = _distinct_prime_factors(group_order)
        for candidate in range(2, self.order):
            if all(self._pow_nocache(candidate, group_order // q) != 1 for q in factors):
                return candidate
        raise RuntimeError("no generator found; modulus is likely reducible")

    # ------------------------------------------------------------- arithmetic

    def add(self, a: int, b: int) -> int:
        """Field addition (== subtraction): bitwise XOR."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        if self._small_log is not None:
            return self._small_exp[self._small_log[a] + self._small_log[b]]
        return self._mul_nocache(a, b)

    def _mul_nocache(self, a: int, b: int) -> int:
        """Carry-less multiplication followed by reduction, no tables."""
        product = 0
        while b:
            low = b & -b
            product ^= a << (low.bit_length() - 1)
            b ^= low
        return self._reduce(product)

    def _reduce(self, value: int) -> int:
        """Reduce a polynomial of degree < 2w modulo the field polynomial."""
        width = self.width
        modulus = self.modulus
        while value.bit_length() > width:
            value ^= modulus << (value.bit_length() - 1 - width)
        return value

    def square(self, a: int) -> int:
        """Field squaring (the Frobenius map)."""
        return self.mul(a, a)

    def pow(self, base: int, exponent: int) -> int:
        """Field exponentiation by a non-negative integer exponent."""
        if self._small_log is not None and base != 0:
            if exponent == 0:
                return 1
            log_value = (self._small_log[base] * exponent) % (self.order - 1)
            return self._small_exp[log_value]
        return self._pow_nocache(base, exponent)

    def _pow_nocache(self, base: int, exponent: int) -> int:
        result = 1
        base = base & self._mask if base < self.order else self._reduce(base)
        while exponent:
            if exponent & 1:
                result = self._mul_nocache(result, base)
            base = self._mul_nocache(base, base)
            exponent >>= 1
        return result

    def inv(self, a: int) -> int:
        """Multiplicative inverse.  Raises ``ZeroDivisionError`` for zero."""
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse in GF(2^w)")
        if self._small_log is not None:
            return self._small_exp[(self.order - 1) - self._small_log[a]]
        # a^(2^w - 2) == a^{-1}
        return self._pow_nocache(a, self.order - 2)

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inv(b))

    def trace(self, a: int) -> int:
        """Absolute trace Tr(a) = a + a^2 + a^4 + ... + a^(2^(w-1)), in {0, 1}."""
        total = 0
        current = a
        for _ in range(self.width):
            total ^= current
            current = self.mul(current, current)
        return total

    def multiplier(self, a: int) -> "FixedMultiplier":
        """Return a windowed multiplier for repeated multiplication by ``a``."""
        return FixedMultiplier(self, a)

    # ------------------------------------------------------------- conveniences

    def element(self, value: int) -> int:
        """Canonicalize an arbitrary integer into a field element."""
        if 0 <= value < self.order:
            return value
        return self._reduce(value)

    def contains(self, value: int) -> bool:
        """Return whether ``value`` is a canonical field element."""
        return 0 <= value < self.order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "GF2m(width=%d, modulus=0x%x)" % (self.width, self.modulus)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF2m) and other.width == self.width and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash((self.width, self.modulus))


class FixedMultiplier:
    """Windowed multiplication by a fixed field element.

    Building the window table costs 15 additions; each subsequent product
    costs ``w/4`` table lookups plus one reduction, which is several times
    faster than the generic bit-by-bit product when the same multiplicand is
    reused many times (e.g. computing all the powers of one edge ID).
    """

    _WINDOW = 4

    __slots__ = ("field", "value", "_table")

    def __init__(self, field: GF2m, value: int):
        self.field = field
        self.value = value
        table = [0] * (1 << self._WINDOW)
        for nibble in range(1, 1 << self._WINDOW):
            low = nibble & -nibble
            table[nibble] = table[nibble ^ low] ^ (value << (low.bit_length() - 1))
        self._table = table

    def mul(self, other: int) -> int:
        """Return ``other * value`` in the field."""
        if other == 0 or self.value == 0:
            return 0
        table = self._table
        product = 0
        shift = 0
        while other:
            product ^= table[other & 0xF] << shift
            other >>= 4
            shift += 4
        return self.field._reduce(product)


def _distinct_prime_factors(value: int) -> list[int]:
    """Distinct prime factors of a positive integer."""
    factors = []
    candidate = 2
    remaining = value
    while candidate * candidate <= remaining:
        if remaining % candidate == 0:
            factors.append(candidate)
            while remaining % candidate == 0:
                remaining //= candidate
        candidate += 1
    if remaining > 1:
        factors.append(remaining)
    return factors
