"""Irreducible polynomials over GF(2).

A field GF(2^w) is defined by an irreducible polynomial of degree ``w`` over
GF(2).  Polynomials over GF(2) are represented as Python integers whose bit
``i`` is the coefficient of ``x^i`` (so ``0b10011`` is ``x^4 + x + 1``).

The module provides

* a table of well-known low-weight irreducible polynomials for the word sizes
  the labeling schemes typically need (``DEFAULT_IRREDUCIBLES``), and
* a deterministic search (:func:`find_irreducible`) backed by Rabin's
  irreducibility test (:func:`is_irreducible`) for any other degree.

Both are deterministic, in keeping with the paper's goal of a fully
deterministic construction.
"""

from __future__ import annotations

# Low-weight (trinomial / pentanomial) irreducible polynomials over GF(2).
# Keyed by degree; the values include the leading x^w term.
DEFAULT_IRREDUCIBLES = {
    1: 0b11,                       # x + 1
    2: 0b111,                      # x^2 + x + 1
    3: 0b1011,                     # x^3 + x + 1
    4: 0b10011,                    # x^4 + x + 1
    5: 0b100101,                   # x^5 + x^2 + 1
    6: 0b1000011,                  # x^6 + x + 1
    7: 0b10000011,                 # x^7 + x + 1
    8: 0b100011011,                # x^8 + x^4 + x^3 + x + 1
    9: 0b1000010001,               # x^9 + x^4 + 1
    10: 0b10000001001,             # x^10 + x^3 + 1
    11: 0b100000000101,            # x^11 + x^2 + 1
    12: 0b1000001010011,           # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,          # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,         # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,        # x^15 + x + 1
    16: 0b10001000000001011,       # x^16 + x^12 + x^3 + x + 1
    17: 0b100000000000001001,      # x^17 + x^3 + 1
    18: 0b1000000000010000001,     # x^18 + x^7 + 1
    19: 0b10000000000000100111,    # x^19 + x^5 + x^2 + x + 1
    20: 0b100000000000000001001,   # x^20 + x^3 + 1
    21: 0b1000000000000000000101,  # x^21 + x^2 + 1
    22: 0b10000000000000000000011,  # x^22 + x + 1
    23: 0b100000000000000000100001,  # x^23 + x^5 + 1
    24: 0b1000000000000000010000111,  # x^24 + x^7 + x^2 + x + 1
    25: 0b10000000000000000000001001,  # x^25 + x^3 + 1
    26: 0b100000000000000000001000111,  # x^26 + x^6 + x^2 + x + 1 (verified at import if used)
    28: 0b10000000000000000000000000011 | (1 << 2),  # x^28 + x^2 + 1? replaced by search if not irreducible
    32: (1 << 32) | 0b10001101,     # x^32 + x^7 + x^3 + x^2 + 1
    40: (1 << 40) | (1 << 5) | (1 << 4) | (1 << 3) | 1,  # x^40 + x^5 + x^4 + x^3 + 1
    48: (1 << 48) | (1 << 5) | (1 << 3) | (1 << 2) | 1,  # x^48 + x^5 + x^3 + x^2 + 1
    56: (1 << 56) | (1 << 7) | (1 << 4) | (1 << 2) | 1,  # x^56 + x^7 + x^4 + x^2 + 1
    64: (1 << 64) | 0b11011,        # x^64 + x^4 + x^3 + x + 1
}


def _poly_degree(p: int) -> int:
    """Return the degree of a GF(2)[x] polynomial encoded as an int."""
    return p.bit_length() - 1


def _poly_mulmod(a: int, b: int, mod: int) -> int:
    """Multiply two GF(2)[x] polynomials modulo ``mod``."""
    deg = _poly_degree(mod)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a >> deg & 1:
            a ^= mod
    return result


def _poly_powmod(a: int, exponent: int, mod: int) -> int:
    """Compute ``a^exponent mod mod`` in GF(2)[x]."""
    result = 1
    base = _poly_mod(a, mod)
    while exponent:
        if exponent & 1:
            result = _poly_mulmod(result, base, mod)
        base = _poly_mulmod(base, base, mod)
        exponent >>= 1
    return result


def _poly_mod(a: int, mod: int) -> int:
    """Reduce ``a`` modulo ``mod`` in GF(2)[x]."""
    deg_mod = _poly_degree(mod)
    while _poly_degree(a) >= deg_mod and a:
        a ^= mod << (_poly_degree(a) - deg_mod)
    return a


def _poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor of two GF(2)[x] polynomials."""
    while b:
        a, b = b, _poly_mod(a, b)
    return a


def _prime_factors(value: int) -> list[int]:
    """Return the distinct prime factors of ``value``."""
    factors = []
    candidate = 2
    remaining = value
    while candidate * candidate <= remaining:
        if remaining % candidate == 0:
            factors.append(candidate)
            while remaining % candidate == 0:
                remaining //= candidate
        candidate += 1
    if remaining > 1:
        factors.append(remaining)
    return factors


def is_irreducible(poly: int) -> bool:
    """Deterministic Rabin irreducibility test for a GF(2)[x] polynomial.

    ``poly`` is irreducible of degree ``w`` iff ``x^(2^w) == x (mod poly)`` and
    for every prime divisor ``q`` of ``w``, ``gcd(x^(2^(w/q)) - x, poly) == 1``.
    """
    degree = _poly_degree(poly)
    if degree <= 0:
        return False
    if degree == 1:
        return True
    # x^(2^degree) mod poly must equal x.
    frob = 2  # the polynomial "x"
    for _ in range(degree):
        frob = _poly_mulmod(frob, frob, poly)
    if frob != 2:
        return False
    for prime in _prime_factors(degree):
        reduced_degree = degree // prime
        frob = 2
        for _ in range(reduced_degree):
            frob = _poly_mulmod(frob, frob, poly)
        if _poly_gcd(frob ^ 2, poly) != 1:
            return False
    return True


def find_irreducible(degree: int) -> int:
    """Return an irreducible polynomial of the given degree over GF(2).

    The table of known low-weight polynomials is consulted first; otherwise the
    polynomials of the given degree are scanned in increasing order of their
    integer encoding, which makes the result deterministic.
    """
    if degree < 1:
        raise ValueError("degree must be positive, got %d" % degree)
    candidate = DEFAULT_IRREDUCIBLES.get(degree)
    if candidate is not None and is_irreducible(candidate):
        return candidate
    base = 1 << degree
    # Irreducible polynomials of degree >= 2 must have a non-zero constant term.
    for low_bits in range(1, 1 << degree, 2):
        poly = base | low_bits
        if is_irreducible(poly):
            return poly
    raise RuntimeError("no irreducible polynomial of degree %d found" % degree)
