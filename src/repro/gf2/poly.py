"""Dense polynomials with coefficients in GF(2^w).

These polynomials are the workhorse of syndrome decoding: the error-locator
polynomial produced by Berlekamp--Massey lives here, and the deterministic
root-finding procedure (Frobenius map plus trace splitting) is expressed in
terms of modular polynomial arithmetic.

Polynomials are immutable value objects.  Coefficients are stored in a tuple
``coeffs`` with ``coeffs[i]`` the coefficient of ``x^i``; the zero polynomial
is the empty tuple.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.gf2.field import GF2m


class Gf2Poly:
    """A polynomial over a :class:`~repro.gf2.field.GF2m` field."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GF2m, coeffs: Iterable[int] = ()):
        self.field = field
        self.coeffs = _normalize(tuple(coeffs))

    # -------------------------------------------------------------- factories

    @classmethod
    def zero(cls, field: GF2m) -> "Gf2Poly":
        """The zero polynomial."""
        return cls(field, ())

    @classmethod
    def one(cls, field: GF2m) -> "Gf2Poly":
        """The constant polynomial 1."""
        return cls(field, (1,))

    @classmethod
    def x(cls, field: GF2m) -> "Gf2Poly":
        """The monomial x."""
        return cls(field, (0, 1))

    @classmethod
    def constant(cls, field: GF2m, value: int) -> "Gf2Poly":
        """The constant polynomial ``value``."""
        return cls(field, (value,))

    @classmethod
    def monomial(cls, field: GF2m, degree: int, coefficient: int = 1) -> "Gf2Poly":
        """The monomial ``coefficient * x^degree``."""
        if coefficient == 0:
            return cls.zero(field)
        return cls(field, (0,) * degree + (coefficient,))

    @classmethod
    def from_roots(cls, field: GF2m, roots: Sequence[int]) -> "Gf2Poly":
        """The monic polynomial whose roots are exactly ``roots``."""
        result = cls.one(field)
        for root in roots:
            result = result * cls(field, (root, 1))
        return result

    # ------------------------------------------------------------- properties

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """Whether this is the zero polynomial."""
        return not self.coeffs

    def is_one(self) -> bool:
        """Whether this is the constant polynomial 1."""
        return self.coeffs == (1,)

    def leading_coefficient(self) -> int:
        """The leading coefficient (0 for the zero polynomial)."""
        return self.coeffs[-1] if self.coeffs else 0

    def coefficient(self, index: int) -> int:
        """The coefficient of ``x^index`` (0 when out of range)."""
        if 0 <= index < len(self.coeffs):
            return self.coeffs[index]
        return 0

    # ------------------------------------------------------------- arithmetic

    def __add__(self, other: "Gf2Poly") -> "Gf2Poly":
        self._check_field(other)
        longer, shorter = (self.coeffs, other.coeffs)
        if len(longer) < len(shorter):
            longer, shorter = shorter, longer
        summed = list(longer)
        for index, value in enumerate(shorter):
            summed[index] ^= value
        return Gf2Poly(self.field, summed)

    # In characteristic two subtraction and addition coincide.
    __sub__ = __add__

    def __mul__(self, other: "Gf2Poly") -> "Gf2Poly":
        self._check_field(other)
        if self.is_zero() or other.is_zero():
            return Gf2Poly.zero(self.field)
        field = self.field
        product = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            mul = field.multiplier(a) if field.width > 12 else None
            for j, b in enumerate(other.coeffs):
                if b == 0:
                    continue
                term = mul.mul(b) if mul is not None else field.mul(a, b)
                product[i + j] ^= term
        return Gf2Poly(field, product)

    def scale(self, scalar: int) -> "Gf2Poly":
        """Multiply every coefficient by a field scalar."""
        if scalar == 0:
            return Gf2Poly.zero(self.field)
        if scalar == 1:
            return self
        field = self.field
        return Gf2Poly(field, [field.mul(scalar, c) for c in self.coeffs])

    def shift(self, amount: int) -> "Gf2Poly":
        """Multiply by ``x^amount``."""
        if self.is_zero():
            return self
        return Gf2Poly(self.field, (0,) * amount + self.coeffs)

    def divmod(self, divisor: "Gf2Poly") -> tuple["Gf2Poly", "Gf2Poly"]:
        """Polynomial division with remainder."""
        self._check_field(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        field = self.field
        remainder = list(self.coeffs)
        divisor_coeffs = divisor.coeffs
        divisor_degree = divisor.degree
        inv_lead = field.inv(divisor.leading_coefficient())
        quotient = [0] * max(len(remainder) - divisor_degree, 0)
        for shift in range(len(remainder) - divisor_degree - 1, -1, -1):
            coeff = remainder[shift + divisor_degree]
            if coeff == 0:
                continue
            factor = field.mul(coeff, inv_lead)
            quotient[shift] = factor
            mul = field.multiplier(factor) if field.width > 12 else None
            for index, dval in enumerate(divisor_coeffs):
                if dval == 0:
                    continue
                term = mul.mul(dval) if mul is not None else field.mul(factor, dval)
                remainder[shift + index] ^= term
        return Gf2Poly(field, quotient), Gf2Poly(field, remainder)

    def __mod__(self, divisor: "Gf2Poly") -> "Gf2Poly":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "Gf2Poly") -> "Gf2Poly":
        return self.divmod(divisor)[0]

    def monic(self) -> "Gf2Poly":
        """Return the polynomial scaled so its leading coefficient is 1."""
        if self.is_zero():
            return self
        lead = self.leading_coefficient()
        if lead == 1:
            return self
        return self.scale(self.field.inv(lead))

    def gcd(self, other: "Gf2Poly") -> "Gf2Poly":
        """Monic greatest common divisor."""
        a, b = self, other
        while not b.is_zero():
            a, b = b, a % b
        return a.monic()

    def pow_mod(self, exponent: int, modulus: "Gf2Poly") -> "Gf2Poly":
        """Compute ``self^exponent mod modulus``."""
        result = Gf2Poly.one(self.field)
        base = self % modulus
        while exponent:
            if exponent & 1:
                result = (result * base) % modulus
            base = (base * base) % modulus
            exponent >>= 1
        return result

    def square_mod(self, modulus: "Gf2Poly") -> "Gf2Poly":
        """Compute ``self^2 mod modulus`` (used for Frobenius iteration)."""
        return (self * self) % modulus

    def derivative(self) -> "Gf2Poly":
        """Formal derivative.  In characteristic two even-power terms vanish."""
        derived = []
        for index in range(1, len(self.coeffs)):
            if index % 2 == 1:
                derived.append(self.coeffs[index])
            else:
                derived.append(0)
        return Gf2Poly(self.field, derived)

    def evaluate(self, point: int) -> int:
        """Evaluate the polynomial at a field element (Horner's rule)."""
        field = self.field
        result = 0
        mul = field.multiplier(point) if field.width > 12 else None
        for coefficient in reversed(self.coeffs):
            if mul is not None:
                result = mul.mul(result) ^ coefficient
            else:
                result = field.mul(result, point) ^ coefficient
        return result

    # -------------------------------------------------------------- plumbing

    def _check_field(self, other: "Gf2Poly") -> None:
        if self.field is not other.field and self.field != other.field:
            raise ValueError("polynomials belong to different fields")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Gf2Poly)
                and other.field == self.field
                and other.coeffs == self.coeffs)

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_zero():
            return "Gf2Poly(0)"
        terms = ["%s*x^%d" % (hex(c), i) for i, c in enumerate(self.coeffs) if c]
        return "Gf2Poly(%s)" % " + ".join(terms)


def _normalize(coeffs: tuple[int, ...]) -> tuple[int, ...]:
    """Strip trailing zero coefficients."""
    end = len(coeffs)
    while end > 0 and coeffs[end - 1] == 0:
        end -= 1
    return coeffs[:end]
