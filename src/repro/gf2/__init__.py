"""Finite fields of characteristic two and polynomials over them.

This subpackage is the lowest-level substrate of the reproduction.  The
deterministic outgoing-edge detection of the paper (Section 4.2 and 7.4) is
built on syndrome decoding of a Reed--Solomon-style code over a finite field
of characteristic two; everything in :mod:`repro.coding` is expressed in terms
of the primitives defined here.

Public API
----------
``GF2m``
    A finite field GF(2^w) represented by an irreducible polynomial.
``Gf2Poly``
    Dense polynomials with coefficients in a ``GF2m`` field.
``find_irreducible`` / ``is_irreducible``
    Deterministic irreducible-polynomial machinery used to build fields of an
    arbitrary word size.
``BulkOps`` / ``get_bulk_ops``
    Pluggable bulk (vectorized) backends — a pure-Python table-driven
    implementation and an optional numpy bit-sliced one — used by the
    outdetect layer to compute many consecutive-power rows and XOR
    accumulations in one shot.
"""

from repro.gf2.field import GF2m, FixedMultiplier
from repro.gf2.irreducible import find_irreducible, is_irreducible, DEFAULT_IRREDUCIBLES
from repro.gf2.poly import Gf2Poly
from repro.gf2.bulk import (BackendUnavailable, BulkOps, NumpyBulkOps, PyBulkOps,
                            available_backends, get_bulk_ops, numpy_available)

__all__ = [
    "GF2m",
    "FixedMultiplier",
    "Gf2Poly",
    "find_irreducible",
    "is_irreducible",
    "DEFAULT_IRREDUCIBLES",
    "BulkOps",
    "PyBulkOps",
    "NumpyBulkOps",
    "BackendUnavailable",
    "available_backends",
    "get_bulk_ops",
    "numpy_available",
]
