"""Outgoing-edge detection ("outdetect") labeling schemes.

An S-outdetect labeling assigns every vertex a short label such that the XOR
of the labels over a vertex set S reveals an outgoing edge of S (or certifies
that there is none).  The paper's central contribution is a *deterministic*
such scheme; the randomized graph-sketch version underlying Dory--Parter is
also provided as a baseline.

* :mod:`repro.outdetect.base` — the common interface.
* :mod:`repro.outdetect.rs_threshold` — the deterministic k-threshold scheme
  built on Reed--Solomon syndromes (Proposition 2).
* :mod:`repro.outdetect.layered` — the S_{f,T}-outdetect scheme layered over a
  sparsification hierarchy (Lemma 2).
* :mod:`repro.outdetect.sketch` — the randomized AGM-style graph sketch.
"""

from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme
from repro.outdetect.rs_threshold import RSThresholdOutdetect
from repro.outdetect.layered import LayeredOutdetect
from repro.outdetect.sketch import SketchOutdetect

__all__ = [
    "OutdetectScheme",
    "OutdetectDecodeError",
    "RSThresholdOutdetect",
    "LayeredOutdetect",
    "SketchOutdetect",
]
