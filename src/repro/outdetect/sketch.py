"""Randomized graph-sketch outdetect labeling (Ahn--Guha--McGregor style).

This is the randomized ingredient the Dory--Parter scheme builds on and the
baseline the paper derandomizes.  Every edge identifier is extended with a
deterministic fingerprint; for each sampling level ``j`` and repetition ``r``
the edge is placed into cell ``(r, j)`` iff a seeded hash of the identifier
has ``j`` trailing zero bits.  A vertex label is, per cell, the XOR of the
extended identifiers of its incident sampled edges.  XOR-ing over a vertex set
leaves only outgoing edges; a cell containing exactly one of them holds a
valid extended identifier (the fingerprint checks out), which happens with
constant probability per repetition at the sampling level matching the cut
size — hence ``O(log n)`` repetitions give success with high probability, and
``O(f log n)`` repetitions give the "full query support" variant of [DP21].
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Mapping

from repro.gf2.bulk import BulkOps, get_bulk_ops
from repro.graphs.graph import Edge
from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme

Vertex = Hashable
Label = tuple

_FINGERPRINT_BITS = 32


class SketchOutdetect(OutdetectScheme):
    """An L0-sampling sketch supporting single outgoing-edge detection.

    Parameters
    ----------
    vertices:
        All vertices of the (sub)graph.
    edge_ids:
        Mapping from canonical edges to distinct positive integers.
    num_levels:
        Number of geometric sampling levels (defaults to ``ceil(log2 m) + 2``).
    repetitions:
        Independent repetitions per level; ``O(log n)`` for whp-per-query
        correctness, ``O(f log n)`` for the full-query-support variant.
    seed:
        Seed of the (deterministic, hash-based) sampling and fingerprints —
        the scheme is randomized in the sense of the paper, with the random
        bits made explicit and reproducible.
    bulk:
        Bulk XOR backend (no field needed); auto-selected when omitted.  The
        numpy backend scatters every sampled cell contribution in one pass.
    """

    deterministic = False

    def __init__(self, vertices: Iterable[Vertex], edge_ids: Mapping[Edge, int],
                 num_levels: int | None = None, repetitions: int = 8, seed: int = 0,
                 bulk: BulkOps | None = None):
        self.edge_ids = dict(edge_ids)
        geometry = self.plan_geometry(self.edge_ids, num_levels=num_levels,
                                      repetitions=repetitions)
        self.num_levels = geometry["num_levels"]
        self.repetitions = geometry["repetitions"]
        self.seed = seed
        self.id_bits = geometry["id_bits"]
        self._cells = self.num_levels * self.repetitions
        self.bulk = bulk if bulk is not None else get_bulk_ops(
            None, max_bits=self.id_bits + _FINGERPRINT_BITS)
        self._build_labels(list(vertices))

    @classmethod
    def plan_geometry(cls, edge_ids: Mapping[Edge, int],
                      num_levels: int | None = None,
                      repetitions: int = 8) -> dict:
        """The sketch dimensions implied by a full edge set.

        Factored out of the constructor so the sharded build plan can fix the
        geometry from *all* edges up front and hand every shard identical
        ``(num_levels, repetitions, id_bits)`` — shards hashing into different
        cell grids would not XOR-merge into the single-shot labels.
        """
        if num_levels is None:
            edge_count = max(len(edge_ids), 2)
            num_levels = edge_count.bit_length() + 1
        id_bits = max((max(edge_ids.values()).bit_length() if edge_ids else 1), 1)
        return {"num_levels": max(num_levels, 1),
                "repetitions": max(repetitions, 1),
                "id_bits": id_bits,
                # Width of one cell value (fingerprint-extended identifier) —
                # what XOR-only bulk backends must size for.
                "value_bits": id_bits + _FINGERPRINT_BITS}

    @classmethod
    def decode_only(cls, num_levels: int, repetitions: int, seed: int,
                    id_bits: int, bulk: BulkOps | None = None) -> "SketchOutdetect":
        """A decode-side sketch rebuilt from parameters alone.

        The seeded hashes make decoding fully determined by
        ``(num_levels, repetitions, seed)``; ``id_bits`` is carried for size
        accounting and backend sizing.  No labels are built — ``label_of``
        raises ``KeyError`` for every vertex (snapshot rehydration answers
        queries from stored labels, see :mod:`repro.core.snapshot`).
        """
        if num_levels < 1 or repetitions < 1 or id_bits < 1:
            raise ValueError("invalid sketch geometry: %d levels, %d repetitions, "
                             "%d id bits (all must be >= 1)"
                             % (num_levels, repetitions, id_bits))
        scheme = cls.__new__(cls)
        scheme.edge_ids = {}
        scheme.num_levels = num_levels
        scheme.repetitions = repetitions
        scheme.seed = seed
        scheme.id_bits = id_bits
        scheme._cells = scheme.num_levels * scheme.repetitions
        scheme.bulk = bulk if bulk is not None else get_bulk_ops(
            None, max_bits=scheme.id_bits + _FINGERPRINT_BITS)
        scheme._labels = {}
        return scheme

    @classmethod
    def from_label_matrix(cls, vertices: Iterable[Vertex],
                          edge_ids: Mapping[Edge, int], matrix: list, *,
                          num_levels: int, repetitions: int, seed: int,
                          id_bits: int,
                          bulk: BulkOps | None = None) -> "SketchOutdetect":
        """Assemble a sketch from an externally built label matrix.

        Counterpart of the sharded build plan's merge step: the geometry must
        be the one :meth:`plan_geometry` derived from the full edge set, and
        ``matrix`` the XOR of the shards' :meth:`label_matrix` outputs —
        bit-identical to a single-shot construction by the XOR argument.
        """
        scheme = cls.decode_only(num_levels, repetitions, seed, id_bits, bulk=bulk)
        scheme.edge_ids = dict(edge_ids)
        vertices = list(vertices)
        if len(matrix) != len(vertices):
            raise ValueError("label matrix has %d rows for %d vertices"
                             % (len(matrix), len(vertices)))
        scheme._labels = {vertex: list(row) for vertex, row in zip(vertices, matrix)}
        return scheme

    def label_matrix(self, vertices: list, edge_items: list) -> list:
        """Partial label matrix of one edge slice, aligned with ``vertices``.

        ``edge_items`` is a sequence of ``((u, v), identifier)`` pairs — any
        subset of the sketch's edges.  Sampling depends only on the seeded
        hashes and the fixed geometry, never on the other edges, so the
        matrices of any partition of the edge set XOR back into the
        single-shot matrix (the shard-friendly shape of the build plan).
        """
        vertex_index = {vertex: position for position, vertex in enumerate(vertices)}
        row_indices: list[int] = []
        col_indices: list[int] = []
        values: list[int] = []
        for (u, v), identifier in edge_items:
            extended = self._extend(identifier)
            row_u = vertex_index[u]
            row_v = vertex_index[v]
            for cell in self._cells_of(identifier):
                row_indices.append(row_u)
                row_indices.append(row_v)
                col_indices.append(cell)
                col_indices.append(cell)
                values.append(extended)
                values.append(extended)
        return self.bulk.scatter_xor(len(vertices), self._cells,
                                     row_indices, col_indices, values)

    def _build_labels(self, vertices: list) -> None:
        """Accumulate all sampled cell contributions through the bulk backend."""
        matrix = self.label_matrix(vertices, list(self.edge_ids.items()))
        self._labels: dict[Vertex, list[int]] = {
            vertex: row for vertex, row in zip(vertices, matrix)}

    # ----------------------------------------------------------------- hashing

    def _hash(self, identifier: int, repetition: int) -> int:
        digest = hashlib.blake2b(
            b"%d:%d:%d" % (self.seed, repetition, identifier), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _fingerprint(self, identifier: int) -> int:
        digest = hashlib.blake2b(
            b"fp:%d:%d" % (self.seed, identifier), digest_size=4).digest()
        return int.from_bytes(digest, "big")

    def _extend(self, identifier: int) -> int:
        return (identifier << _FINGERPRINT_BITS) | self._fingerprint(identifier)

    def _cells_of(self, identifier: int) -> list[int]:
        cells = []
        for repetition in range(self.repetitions):
            hashed = self._hash(identifier, repetition)
            for level in range(self.num_levels):
                if level == 0 or hashed % (1 << level) == 0:
                    cells.append(repetition * self.num_levels + level)
        return cells

    # ------------------------------------------------------------ OutdetectScheme

    def label_of(self, vertex: Vertex) -> Label:
        return tuple(self._labels[vertex])

    def zero_label(self) -> Label:
        return tuple([0] * self._cells)

    def combine(self, first: Label, second: Label) -> Label:
        if len(first) != len(second):
            raise ValueError("sketch labels of different sizes cannot be combined")
        return tuple(a ^ b for a, b in zip(first, second))

    def combine_all(self, labels) -> Label:
        labels = list(labels)
        if not labels:
            return self.zero_label()
        total = list(labels[0])
        self.bulk.xor_accumulate(total, labels[1:])
        return tuple(total)

    def decode(self, label: Label) -> list[int]:
        if all(value == 0 for value in label):
            return []
        found: list[int] = []
        # Prefer sparser levels (higher level index) where a single survivor is likely.
        for level in range(self.num_levels - 1, -1, -1):
            for repetition in range(self.repetitions):
                value = label[repetition * self.num_levels + level]
                if value == 0:
                    continue
                identifier = value >> _FINGERPRINT_BITS
                fingerprint = value & ((1 << _FINGERPRINT_BITS) - 1)
                if identifier > 0 and self._fingerprint(identifier) == fingerprint:
                    if identifier not in found:
                        found.append(identifier)
            if found:
                return found
        raise OutdetectDecodeError(
            "sketch decoding failed: no cell holds a single valid edge identifier")

    def label_bit_size(self, label: Label) -> int:
        return len(label) * (self.id_bits + _FINGERPRINT_BITS)
