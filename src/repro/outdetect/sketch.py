"""Randomized graph-sketch outdetect labeling (Ahn--Guha--McGregor style).

This is the randomized ingredient the Dory--Parter scheme builds on and the
baseline the paper derandomizes.  Every edge identifier is extended with a
deterministic fingerprint; for each sampling level ``j`` and repetition ``r``
the edge is placed into cell ``(r, j)`` iff a seeded hash of the identifier
has ``j`` trailing zero bits.  A vertex label is, per cell, the XOR of the
extended identifiers of its incident sampled edges.  XOR-ing over a vertex set
leaves only outgoing edges; a cell containing exactly one of them holds a
valid extended identifier (the fingerprint checks out), which happens with
constant probability per repetition at the sampling level matching the cut
size — hence ``O(log n)`` repetitions give success with high probability, and
``O(f log n)`` repetitions give the "full query support" variant of [DP21].
"""

from __future__ import annotations

import hashlib
from typing import Hashable, Iterable, Mapping

from repro.gf2.bulk import BulkOps, get_bulk_ops
from repro.graphs.graph import Edge
from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme

Vertex = Hashable
Label = tuple

_FINGERPRINT_BITS = 32


class SketchOutdetect(OutdetectScheme):
    """An L0-sampling sketch supporting single outgoing-edge detection.

    Parameters
    ----------
    vertices:
        All vertices of the (sub)graph.
    edge_ids:
        Mapping from canonical edges to distinct positive integers.
    num_levels:
        Number of geometric sampling levels (defaults to ``ceil(log2 m) + 2``).
    repetitions:
        Independent repetitions per level; ``O(log n)`` for whp-per-query
        correctness, ``O(f log n)`` for the full-query-support variant.
    seed:
        Seed of the (deterministic, hash-based) sampling and fingerprints —
        the scheme is randomized in the sense of the paper, with the random
        bits made explicit and reproducible.
    bulk:
        Bulk XOR backend (no field needed); auto-selected when omitted.  The
        numpy backend scatters every sampled cell contribution in one pass.
    """

    deterministic = False

    def __init__(self, vertices: Iterable[Vertex], edge_ids: Mapping[Edge, int],
                 num_levels: int | None = None, repetitions: int = 8, seed: int = 0,
                 bulk: BulkOps | None = None):
        self.edge_ids = dict(edge_ids)
        if num_levels is None:
            edge_count = max(len(self.edge_ids), 2)
            num_levels = edge_count.bit_length() + 1
        self.num_levels = max(num_levels, 1)
        self.repetitions = max(repetitions, 1)
        self.seed = seed
        self.id_bits = max((max(self.edge_ids.values()).bit_length() if self.edge_ids else 1), 1)
        self._cells = self.num_levels * self.repetitions
        self.bulk = bulk if bulk is not None else get_bulk_ops(
            None, max_bits=self.id_bits + _FINGERPRINT_BITS)
        self._build_labels(list(vertices))

    @classmethod
    def decode_only(cls, num_levels: int, repetitions: int, seed: int,
                    id_bits: int, bulk: BulkOps | None = None) -> "SketchOutdetect":
        """A decode-side sketch rebuilt from parameters alone.

        The seeded hashes make decoding fully determined by
        ``(num_levels, repetitions, seed)``; ``id_bits`` is carried for size
        accounting and backend sizing.  No labels are built — ``label_of``
        raises ``KeyError`` for every vertex (snapshot rehydration answers
        queries from stored labels, see :mod:`repro.core.snapshot`).
        """
        if num_levels < 1 or repetitions < 1 or id_bits < 1:
            raise ValueError("invalid sketch geometry: %d levels, %d repetitions, "
                             "%d id bits (all must be >= 1)"
                             % (num_levels, repetitions, id_bits))
        scheme = cls.__new__(cls)
        scheme.edge_ids = {}
        scheme.num_levels = num_levels
        scheme.repetitions = repetitions
        scheme.seed = seed
        scheme.id_bits = id_bits
        scheme._cells = scheme.num_levels * scheme.repetitions
        scheme.bulk = bulk if bulk is not None else get_bulk_ops(
            None, max_bits=scheme.id_bits + _FINGERPRINT_BITS)
        scheme._labels = {}
        return scheme

    def _build_labels(self, vertices: list) -> None:
        """Accumulate all sampled cell contributions through the bulk backend."""
        vertex_index = {vertex: position for position, vertex in enumerate(vertices)}
        row_indices: list[int] = []
        col_indices: list[int] = []
        values: list[int] = []
        for (u, v), identifier in self.edge_ids.items():
            extended = self._extend(identifier)
            row_u = vertex_index[u]
            row_v = vertex_index[v]
            for cell in self._cells_of(identifier):
                row_indices.append(row_u)
                row_indices.append(row_v)
                col_indices.append(cell)
                col_indices.append(cell)
                values.append(extended)
                values.append(extended)
        matrix = self.bulk.scatter_xor(len(vertices), self._cells,
                                       row_indices, col_indices, values)
        self._labels: dict[Vertex, list[int]] = {
            vertex: matrix[position] for vertex, position in vertex_index.items()}

    # ----------------------------------------------------------------- hashing

    def _hash(self, identifier: int, repetition: int) -> int:
        digest = hashlib.blake2b(
            b"%d:%d:%d" % (self.seed, repetition, identifier), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _fingerprint(self, identifier: int) -> int:
        digest = hashlib.blake2b(
            b"fp:%d:%d" % (self.seed, identifier), digest_size=4).digest()
        return int.from_bytes(digest, "big")

    def _extend(self, identifier: int) -> int:
        return (identifier << _FINGERPRINT_BITS) | self._fingerprint(identifier)

    def _cells_of(self, identifier: int) -> list[int]:
        cells = []
        for repetition in range(self.repetitions):
            hashed = self._hash(identifier, repetition)
            for level in range(self.num_levels):
                if level == 0 or hashed % (1 << level) == 0:
                    cells.append(repetition * self.num_levels + level)
        return cells

    # ------------------------------------------------------------ OutdetectScheme

    def label_of(self, vertex: Vertex) -> Label:
        return tuple(self._labels[vertex])

    def zero_label(self) -> Label:
        return tuple([0] * self._cells)

    def combine(self, first: Label, second: Label) -> Label:
        if len(first) != len(second):
            raise ValueError("sketch labels of different sizes cannot be combined")
        return tuple(a ^ b for a, b in zip(first, second))

    def combine_all(self, labels) -> Label:
        labels = list(labels)
        if not labels:
            return self.zero_label()
        total = list(labels[0])
        self.bulk.xor_accumulate(total, labels[1:])
        return tuple(total)

    def decode(self, label: Label) -> list[int]:
        if all(value == 0 for value in label):
            return []
        found: list[int] = []
        # Prefer sparser levels (higher level index) where a single survivor is likely.
        for level in range(self.num_levels - 1, -1, -1):
            for repetition in range(self.repetitions):
                value = label[repetition * self.num_levels + level]
                if value == 0:
                    continue
                identifier = value >> _FINGERPRINT_BITS
                fingerprint = value & ((1 << _FINGERPRINT_BITS) - 1)
                if identifier > 0 and self._fingerprint(identifier) == fingerprint:
                    if identifier not in found:
                        found.append(identifier)
            if found:
                return found
        raise OutdetectDecodeError(
            "sketch decoding failed: no cell holds a single valid edge identifier")

    def label_bit_size(self, label: Label) -> int:
        return len(label) * (self.id_bits + _FINGERPRINT_BITS)
