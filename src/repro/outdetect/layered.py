"""The S_{f,T}-outdetect labeling scheme layered over a hierarchy (Lemma 2).

A vertex label is the concatenation of its per-level k-threshold labels.  To
decode, the levels are scanned from the deepest (sparsest) upwards: the first
level whose syndrome is non-zero is decoded, and by the goodness of the
hierarchy the outgoing edge count at that level is within the level's
threshold, so the decode succeeds and returns genuine outgoing edges.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme

Vertex = Hashable
Label = tuple


class LayeredOutdetect(OutdetectScheme):
    """Concatenation of per-level outdetect schemes over a hierarchy."""

    def __init__(self, level_schemes: Sequence[OutdetectScheme]):
        if not level_schemes:
            raise ValueError("a layered scheme needs at least one level")
        self.level_schemes = list(level_schemes)
        self.deterministic = all(scheme.deterministic for scheme in level_schemes)

    # ------------------------------------------------------------ OutdetectScheme

    def label_of(self, vertex: Vertex) -> Label:
        return tuple(scheme.label_of(vertex) for scheme in self.level_schemes)

    def zero_label(self) -> Label:
        return tuple(scheme.zero_label() for scheme in self.level_schemes)

    def combine(self, first: Label, second: Label) -> Label:
        if len(first) != len(second):
            raise ValueError("layered labels of different depths cannot be combined")
        return tuple(scheme.combine(a, b)
                     for scheme, a, b in zip(self.level_schemes, first, second))

    def combine_all(self, labels) -> Label:
        labels = list(labels)
        if not labels:
            return self.zero_label()
        depth = len(self.level_schemes)
        for label in labels:
            if len(label) != depth:
                raise ValueError("layered labels of different depths cannot be combined")
        # Delegate per level so each level scheme's bulk backend is used.
        return tuple(self.level_schemes[index].combine_all(
            [label[index] for label in labels]) for index in range(depth))

    def decode(self, label: Label) -> list[int]:
        deepest_nonzero = None
        for index in range(len(self.level_schemes) - 1, -1, -1):
            if label[index] != self.level_schemes[index].zero_label():
                deepest_nonzero = index
                break
        if deepest_nonzero is None:
            return []
        try:
            edges = self.level_schemes[deepest_nonzero].decode(label[deepest_nonzero])
        except OutdetectDecodeError as error:
            raise OutdetectDecodeError(
                "level %d of the layered outdetect failed to decode: %s"
                % (deepest_nonzero, error)) from error
        if not edges:
            raise OutdetectDecodeError(
                "level %d has a non-zero syndrome but decoded to the empty set"
                % deepest_nonzero)
        return edges

    def decode_many(self, labels) -> list:
        """Batched decode: group labels by deepest non-zero level.

        Every label routes to exactly one level (the deepest with a non-zero
        syndrome), so the batch splits into at most ``depth`` per-level groups
        and each group decodes through that level scheme's ``decode_many`` —
        one bulk pipeline per *touched level* rather than one scalar decode
        per label.  Entries are results or deferred
        :class:`OutdetectDecodeError` instances, exactly matching what
        :meth:`decode` returns or raises per label.
        """
        labels = list(labels)
        results: list = [None] * len(labels)
        zero_labels = [scheme.zero_label() for scheme in self.level_schemes]
        grouped: dict[int, list[int]] = {}
        for position, label in enumerate(labels):
            deepest_nonzero = None
            for index in range(len(self.level_schemes) - 1, -1, -1):
                if label[index] != zero_labels[index]:
                    deepest_nonzero = index
                    break
            if deepest_nonzero is None:
                results[position] = []
            else:
                grouped.setdefault(deepest_nonzero, []).append(position)
        for index, positions in grouped.items():
            entries = self.level_schemes[index].decode_many(
                [labels[position][index] for position in positions])
            for position, entry in zip(positions, entries):
                if isinstance(entry, OutdetectDecodeError):
                    wrapped = OutdetectDecodeError(
                        "level %d of the layered outdetect failed to decode: %s"
                        % (index, entry))
                    wrapped.__cause__ = entry
                    results[position] = wrapped
                elif not entry:
                    results[position] = OutdetectDecodeError(
                        "level %d has a non-zero syndrome but decoded to the empty set"
                        % index)
                else:
                    results[position] = entry
        return results

    def label_bit_size(self, label: Label) -> int:
        return sum(scheme.label_bit_size(part)
                   for scheme, part in zip(self.level_schemes, label))

    # ------------------------------------------------------------------ misc

    def depth(self) -> int:
        """Number of hierarchy levels."""
        return len(self.level_schemes)
