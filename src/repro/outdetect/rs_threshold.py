"""The deterministic k-threshold outdetect labeling scheme (Proposition 2).

Every edge ``e`` of the (sub)graph is identified by a non-zero field element
``x_e``; its parity-check row is ``g(e) = (x_e, x_e^2, ..., x_e^{2k})``, and a
vertex label is the XOR of the rows of its incident edges.  XOR-ing the labels
over a vertex set S cancels internal edges and leaves the syndrome of the
outgoing edge set, from which up to ``k`` edge identifiers are recovered by
syndrome decoding — deterministically.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.coding.rs_decoder import DecodeFailure, SparseRecoveryDecoder
from repro.coding.syndrome import SyndromeEncoder
from repro.gf2.field import GF2m
from repro.graphs.graph import Edge, canonical_edge
from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme

Vertex = Hashable
Label = tuple


class RSThresholdOutdetect(OutdetectScheme):
    """k-threshold outdetect labels for one edge set over a fixed vertex set.

    Parameters
    ----------
    field:
        The GF(2^w) field edge identifiers live in.
    threshold:
        The decoding threshold ``k`` (labels are ``2k`` field elements).
    vertices:
        All vertices that may be queried (isolated ones get the zero label).
    edge_ids:
        Mapping from canonical edges of this level to non-zero field elements.
    adaptive:
        Whether decoding uses geometrically growing prefixes (Appendix B),
        making its cost depend on the actual outgoing-edge count.
    """

    deterministic = True

    def __init__(self, field: GF2m, threshold: int, vertices: Iterable[Vertex],
                 edge_ids: Mapping[Edge, int], adaptive: bool = True):
        self.field = field
        self.threshold = threshold
        self.adaptive = adaptive
        self._encoder = SyndromeEncoder(field, threshold)
        self._decoder = SparseRecoveryDecoder(field, threshold)
        self._labels: dict[Vertex, list[int]] = {vertex: self._encoder.zero()
                                                 for vertex in vertices}
        self.edge_ids = dict(edge_ids)
        for (u, v), identifier in self.edge_ids.items():
            row = self._encoder.encode(identifier)
            self._xor_into(u, row)
            self._xor_into(v, row)

    def _xor_into(self, vertex: Vertex, row: Sequence[int]) -> None:
        if vertex not in self._labels:
            raise KeyError("edge endpoint %r is not among the scheme's vertices" % (vertex,))
        label = self._labels[vertex]
        for index, value in enumerate(row):
            label[index] ^= value

    # ------------------------------------------------------------ OutdetectScheme

    def label_of(self, vertex: Vertex) -> Label:
        return tuple(self._labels[vertex])

    def zero_label(self) -> Label:
        return tuple(self._encoder.zero())

    def combine(self, first: Label, second: Label) -> Label:
        if len(first) != len(second):
            raise ValueError("labels of different lengths cannot be combined")
        return tuple(a ^ b for a, b in zip(first, second))

    def decode(self, label: Label) -> list[int]:
        try:
            if self.adaptive:
                return self._decoder.decode_adaptive(list(label))
            return self._decoder.decode(list(label))
        except DecodeFailure as error:
            raise OutdetectDecodeError(str(error)) from error

    def label_bit_size(self, label: Label) -> int:
        return len(label) * self.field.width

    # ------------------------------------------------------------------ misc

    def syndrome_of_edge_set(self, edges: Iterable[Edge]) -> Label:
        """Syndrome of an explicit edge set (testing and validation helper)."""
        identifiers = [self.edge_ids[canonical_edge(u, v)] for u, v in edges]
        return tuple(self._encoder.syndrome_of(identifiers))
