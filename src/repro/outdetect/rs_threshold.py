"""The deterministic k-threshold outdetect labeling scheme (Proposition 2).

Every edge ``e`` of the (sub)graph is identified by a non-zero field element
``x_e``; its parity-check row is ``g(e) = (x_e, x_e^2, ..., x_e^{2k})``, and a
vertex label is the XOR of the rows of its incident edges.  XOR-ing the labels
over a vertex set S cancels internal edges and leaves the syndrome of the
outgoing edge set, from which up to ``k`` edge identifiers are recovered by
syndrome decoding — deterministically.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.coding.rs_decoder import DecodeFailure, SparseRecoveryDecoder
from repro.coding.syndrome import SyndromeEncoder
from repro.gf2.bulk import BulkOps, get_bulk_ops
from repro.gf2.field import GF2m
from repro.graphs.graph import Edge, canonical_edge
from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme

Vertex = Hashable
Label = tuple


class RSThresholdOutdetect(OutdetectScheme):
    """k-threshold outdetect labels for one edge set over a fixed vertex set.

    Parameters
    ----------
    field:
        The GF(2^w) field edge identifiers live in.
    threshold:
        The decoding threshold ``k`` (labels are ``2k`` field elements).
    vertices:
        All vertices that may be queried (isolated ones get the zero label).
    edge_ids:
        Mapping from canonical edges of this level to non-zero field elements.
    adaptive:
        Whether decoding uses geometrically growing prefixes (Appendix B),
        making its cost depend on the actual outgoing-edge count.
    bulk:
        Bulk GF(2^w) backend used for construction and label combination;
        auto-selected when omitted (numpy bit-sliced when available).
    """

    deterministic = True

    def __init__(self, field: GF2m, threshold: int, vertices: Iterable[Vertex],
                 edge_ids: Mapping[Edge, int], adaptive: bool = True,
                 bulk: BulkOps | None = None):
        self.field = field
        self.threshold = threshold
        self.adaptive = adaptive
        self.bulk = bulk if bulk is not None else get_bulk_ops(field)
        self._encoder = SyndromeEncoder(field, threshold, bulk=self.bulk)
        self._decoder = SparseRecoveryDecoder(field, threshold, bulk=self.bulk)
        self.edge_ids = dict(edge_ids)
        self._build_labels(list(vertices))

    @classmethod
    def decode_only(cls, field: GF2m, threshold: int, adaptive: bool = True,
                    bulk: BulkOps | None = None) -> "RSThresholdOutdetect":
        """A decode-side scheme rebuilt from parameters alone.

        Snapshot rehydration (:mod:`repro.core.snapshot`) needs everything the
        query engines use — ``zero_label``, ``combine`` / ``combine_all``,
        ``decode``, ``label_bit_size`` — but no vertex labels and no edge set,
        so nothing is constructed.  ``label_of`` raises ``KeyError`` for every
        vertex.
        """
        if threshold < 1:
            raise ValueError("decoding threshold must be >= 1, got %d" % threshold)
        scheme = cls.__new__(cls)
        scheme.field = field
        scheme.threshold = threshold
        scheme.adaptive = adaptive
        scheme.bulk = bulk if bulk is not None else get_bulk_ops(field)
        scheme._encoder = SyndromeEncoder(field, threshold, bulk=scheme.bulk)
        scheme._decoder = SparseRecoveryDecoder(field, threshold, bulk=scheme.bulk)
        scheme.edge_ids = {}
        scheme._labels = {}
        return scheme

    @classmethod
    def from_label_matrix(cls, field: GF2m, threshold: int, vertices: Iterable[Vertex],
                          edge_ids: Mapping[Edge, int], matrix: Sequence,
                          adaptive: bool = True,
                          bulk: BulkOps | None = None) -> "RSThresholdOutdetect":
        """Assemble a scheme from an externally built label matrix.

        The merge step of the sharded build plan (:mod:`repro.build.plan`)
        XORs per-shard partial matrices back together and hands the result
        here; nothing is recomputed, so the scheme is bit-identical to one
        whose constructor built the same matrix in a single shot.
        """
        scheme = cls.decode_only(field, threshold, adaptive=adaptive, bulk=bulk)
        scheme.edge_ids = dict(edge_ids)
        vertices = list(vertices)
        if len(matrix) != len(vertices):
            raise ValueError("label matrix has %d rows for %d vertices"
                             % (len(matrix), len(vertices)))
        scheme._labels = {vertex: list(row) for vertex, row in zip(vertices, matrix)}
        return scheme

    def label_matrix(self, vertices: Sequence[Vertex],
                     edge_items: Sequence) -> list:
        """Partial label matrix of one edge slice, aligned with ``vertices``.

        ``edge_items`` is a sequence of ``((u, v), identifier)`` pairs —
        any subset of a level's edges.  Every edge's parity-check row (its
        consecutive powers) is produced by one ``pow_range_many`` over the
        identifiers, and the rows are scattered into the per-vertex matrix in
        one XOR pass.  Because labels are XOR sums over incident edges, the
        matrices of any partition of the edge set XOR back into the
        full-build matrix — the shard-friendly shape of the build plan.
        """
        vertex_index = {vertex: position for position, vertex in enumerate(vertices)}
        edge_items = list(edge_items)
        for (u, v), _ in edge_items:
            for endpoint in (u, v):
                if endpoint not in vertex_index:
                    raise KeyError("edge endpoint %r is not among the scheme's vertices"
                                   % (endpoint,))
        rows = self._encoder.encode_many([identifier for _, identifier in edge_items])
        indices: list[int] = []
        scattered: list[list[int]] = []
        for ((u, v), _), row in zip(edge_items, rows):
            indices.append(vertex_index[u])
            indices.append(vertex_index[v])
            scattered.append(row)
            scattered.append(row)
        return self.bulk.scatter_xor_rows(len(vertices), self._encoder.length,
                                          indices, scattered)

    def _build_labels(self, vertices: list) -> None:
        """Compute all vertex labels with two bulk calls (single-shot build)."""
        matrix = self.label_matrix(vertices, list(self.edge_ids.items()))
        self._labels: dict[Vertex, list[int]] = {
            vertex: row for vertex, row in zip(vertices, matrix)}

    # ------------------------------------------------------------ OutdetectScheme

    def label_of(self, vertex: Vertex) -> Label:
        return tuple(self._labels[vertex])

    def zero_label(self) -> Label:
        return tuple(self._encoder.zero())

    def combine(self, first: Label, second: Label) -> Label:
        if len(first) != len(second):
            raise ValueError("labels of different lengths cannot be combined")
        return tuple(a ^ b for a, b in zip(first, second))

    def combine_all(self, labels) -> Label:
        labels = list(labels)
        if not labels:
            return self.zero_label()
        total = list(labels[0])
        self.bulk.xor_accumulate(total, labels[1:])
        return tuple(total)

    def decode(self, label: Label) -> list[int]:
        try:
            if self.adaptive:
                return self._decoder.decode_adaptive(list(label))
            return self._decoder.decode(list(label))
        except DecodeFailure as error:
            raise OutdetectDecodeError(str(error)) from error

    def decode_many(self, labels) -> list:
        entries = self._decoder.decode_many_deferred(
            [list(label) for label in labels], adaptive=self.adaptive)
        results: list = []
        for entry in entries:
            if isinstance(entry, DecodeFailure):
                wrapped = OutdetectDecodeError(str(entry))
                wrapped.__cause__ = entry
                results.append(wrapped)
            else:
                results.append(entry)
        return results

    def label_bit_size(self, label: Label) -> int:
        return len(label) * self.field.width

    # ------------------------------------------------------------------ misc

    def syndrome_of_edge_set(self, edges: Iterable[Edge]) -> Label:
        """Syndrome of an explicit edge set (testing and validation helper)."""
        identifiers = [self.edge_ids[canonical_edge(u, v)] for u, v in edges]
        return tuple(self._encoder.syndrome_of(identifiers))
