"""Common interface of outdetect labeling schemes.

A scheme assigns every vertex a label; labels form a group under ``combine``
(XOR), and decoding the combined label of a vertex set S yields identifiers of
outgoing edges of S.  The identifiers are opaque integers here — the FTC
scheme interprets them through its edge-ID codec.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable

Vertex = Hashable
Label = Any


class OutdetectDecodeError(Exception):
    """Raised when an outdetect decode is detectably inconsistent.

    With the paper's (PAPER preset) constants this never happens; with the
    heuristic PRACTICAL preset or the randomized sketch it signals that the
    scheme's sparsity/validity promise was violated for this query, so the
    caller can report an explicit failure instead of a silently wrong answer.
    """


class OutdetectScheme(ABC):
    """Abstract base class of all outdetect labelings."""

    #: Whether the scheme (construction and decoding) is deterministic.
    deterministic: bool = True

    @abstractmethod
    def label_of(self, vertex: Vertex) -> Label:
        """The label assigned to one vertex."""

    @abstractmethod
    def zero_label(self) -> Label:
        """The identity element of the label group (label of the empty set)."""

    @abstractmethod
    def combine(self, first: Label, second: Label) -> Label:
        """XOR-combine two labels."""

    @abstractmethod
    def decode(self, label: Label) -> list[int]:
        """Edge identifiers of outgoing edges encoded by a combined label.

        Returns the empty list when the label certifies an empty outgoing edge
        set, and raises :class:`OutdetectDecodeError` when the label is
        detectably inconsistent.
        """

    @abstractmethod
    def label_bit_size(self, label: Label) -> int:
        """Size of one label in bits (for the experiment harness)."""

    def decode_many(self, labels) -> list:
        """Decode many combined labels, deferring failures into the result.

        Each entry of the returned list is either the decoded edge-identifier
        list or the :class:`OutdetectDecodeError` that :meth:`decode` would
        have raised for that label — callers that decode lazily (the batch
        session's merge forest) surface a deferred error only when the failing
        label is actually consumed.  The base implementation just loops; bulk
        schemes override it to advance the whole batch through each decode
        stage together, with bit-identical per-label results.
        """
        results = []
        for label in labels:
            try:
                results.append(self.decode(label))
            except OutdetectDecodeError as error:
                results.append(error)
        return results

    # ------------------------------------------------------------ conveniences

    def combine_all(self, labels) -> Label:
        """Combine an iterable of labels."""
        total = self.zero_label()
        for label in labels:
            total = self.combine(total, label)
        return total

    def label_of_set(self, vertices) -> Label:
        """The combined label of an explicit vertex set (testing helper)."""
        return self.combine_all(self.label_of(vertex) for vertex in vertices)

    def max_label_bits(self, vertices) -> int:
        """Maximum label size over a collection of vertices."""
        sizes = [self.label_bit_size(self.label_of(vertex)) for vertex in vertices]
        return max(sizes) if sizes else 0
