"""A centralized connectivity-oracle wrapper around the labeling scheme.

Any f-FTC labeling scheme doubles as a centralized connectivity oracle by
simply storing all labels (Section 1.4); this wrapper does exactly that and is
the "build" transport of the oracle protocol (:mod:`repro.api`): the same
``connected`` / ``connected_many`` / ``batch_session`` / ``stats`` / ``close``
surface is served by a snapshot-rehydrated oracle and by the TCP client, so
transports are swappable deployment details.  It also exposes the exact
recomputation answer for auditing.

Queries are served through the batched session pipeline of
:mod:`repro.core.batch`: ``connected_many`` answers any number of ``(s, t)``
pairs against one shared fault set, and the single-query ``connected`` is a
thin wrapper over the same (LRU-cached) session, so repeated queries against
the same fault set never rebuild the component decomposition.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.core.batch import BatchQuerySession
from repro.core.config import (FTCConfig, SchemeVariant, resolve_build_executor,
                               resolve_ftc_config)
from repro.core.ftc import FTCLabeling
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.query import QueryFailure
from repro.graphs.graph import Edge, Graph

Vertex = Hashable


class FTConnectivityOracle:
    """Answers ``connected(s, t, F)`` queries for one graph under a fault budget.

    The canonical construction shape is ``FTConnectivityOracle(graph,
    config=FTCConfig(...))`` (or the :func:`repro.api.Oracle.build` factory);
    the legacy loose parameters (``max_faults`` / ``variant``) still work and
    are normalized through :func:`~repro.core.config.resolve_ftc_config`,
    which warns when they are passed redundantly alongside ``config``.
    """

    #: Transport tag of the oracle protocol (:mod:`repro.api`).
    transport = "build"

    def __init__(self, graph: Graph, max_faults: int | None = None,
                 variant: SchemeVariant | str | None = None,
                 config: FTCConfig | None = None, use_fast_engine: bool = True,
                 executor=None, jobs: int | None = None):
        self.config = resolve_ftc_config(max_faults=max_faults, config=config,
                                         variant=variant)
        self.graph = graph
        self.labeling = FTCLabeling(graph, self.config,
                                    executor=resolve_build_executor(executor, jobs))
        self.use_fast_engine = use_fast_engine
        self._queries_answered = 0

    @classmethod
    def from_labeling(cls, graph: Graph, labeling: FTCLabeling,
                      use_fast_engine: bool = True) -> "FTConnectivityOracle":
        """Wrap an already-constructed labeling (no rebuild).

        The adoption path of :meth:`repro.api.Oracle.build_delta`: an
        incremental rebuild produces the :class:`~repro.core.ftc.FTCLabeling`
        directly, and this constructor gives it the same oracle surface the
        normal construction path gets.
        """
        oracle = cls.__new__(cls)
        oracle.config = labeling.config
        oracle.graph = graph
        oracle.labeling = labeling
        oracle.use_fast_engine = use_fast_engine
        oracle._queries_answered = 0
        return oracle

    def connected(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> bool:
        """Connectivity of s and t in G - F, answered from labels.

        Thin wrapper over :meth:`connected_many` (which already counts the
        query — no double counting) so consecutive queries against the same
        fault set reuse one cached batch session.
        """
        return self.connected_many([(s, t)], faults)[0]

    def connected_many(self, pairs: Sequence[tuple],
                       faults: Iterable[Edge] = ()) -> list[bool]:
        """Answer many ``(s, t)`` pairs against one shared fault set.

        ``use_fast_engine=False`` keeps the basic Lemma-1 engine reachable for
        comparison runs; the default path goes through the cached batch
        session.
        """
        if self.use_fast_engine:
            answers = self.labeling.connected_many(pairs, faults)
        else:
            fault_list = list(faults)
            answers = [self.labeling.connected(s, t, fault_list, use_fast_engine=False)
                       for s, t in pairs]
        self._queries_answered += len(answers)
        return answers

    def batch_session(self, faults: Iterable[Edge] = ()) -> BatchQuerySession:
        """The (LRU-cached) batched query session for one fault set.

        Exposed so callers holding an oracle — live, rehydrated from a
        snapshot (:mod:`repro.core.snapshot`), or remote — see the same
        ``connected`` / ``connected_many`` / ``batch_session`` surface.
        """
        return self.labeling.batch_session(faults)

    def build_sessions(self, fault_sets: Sequence[Iterable[Edge]],
                       executor=None, jobs: int | None = None) -> list:
        """Construct sessions for many distinct fault sets, possibly in
        parallel (see :meth:`~repro.core.ftc.LabelBackedQueries.build_sessions`)."""
        return self.labeling.build_sessions(fault_sets, executor=executor,
                                            jobs=jobs)

    def connected_exact(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> bool:
        """Ground-truth answer by BFS on G - F (for auditing and tests)."""
        return self.graph.connected(s, t, removed=list(faults))

    def audit(self, queries: Iterable[tuple]) -> dict:
        """Compare the labeling answers against ground truth for many queries.

        Each query is a tuple ``(s, t, faults)``.  Returns counts of agreements
        and disagreements — the T1-correctness experiment in EXPERIMENTS.md.
        """
        agree = 0
        disagree = 0
        failures = 0
        for s, t, faults in queries:
            expected = self.connected_exact(s, t, faults)
            try:
                answer = self.connected(s, t, faults)
            except QueryFailure:
                # Benign decode failure (randomized sketches / heuristic
                # PRACTICAL thresholds).  Anything else — KeyError, TypeError —
                # is a genuine defect and must propagate, not be counted as a
                # scheme failure.
                failures += 1
                continue
            if answer == expected:
                agree += 1
            else:
                disagree += 1
        total = agree + disagree + failures
        return {
            "total": total,
            "agree": agree,
            "disagree": disagree,
            "failures": failures,
            "accuracy": agree / total if total else 1.0,
        }

    # ------------------------------------------------------------- topology

    @property
    def max_faults(self) -> int:
        return self.config.max_faults

    def vertices(self) -> list:
        return list(self.graph.vertices())

    def has_vertex(self, vertex: Vertex) -> bool:
        return self.graph.has_vertex(vertex)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return self.graph.has_edge(u, v)

    def num_vertices(self) -> int:
        return self.graph.num_vertices()

    def num_edges(self) -> int:
        return self.graph.num_edges()

    # ---------------------------------------------------------------- labels

    def vertex_label(self, vertex: Vertex) -> VertexLabel:
        return self.labeling.vertex_label(vertex)

    def edge_label(self, u: Vertex, v: Vertex) -> EdgeLabel:
        return self.labeling.edge_label(u, v)

    # ----------------------------------------------------------- persistence

    def to_snapshot_bytes(self) -> bytes:
        """Serialize the whole labeling to the FTCS snapshot format."""
        return self.labeling.to_snapshot_bytes()

    def save(self, path) -> int:
        """Write the snapshot bytes to ``path``; returns the byte count."""
        return self.labeling.save(path)

    @property
    def construction_seconds(self) -> float:
        return self.labeling.construction_seconds

    @property
    def build_report(self):
        """The :class:`~repro.build.plan.BuildReport` of the construction."""
        return self.labeling.build_report

    # ------------------------------------------------------------ statistics

    def label_size_stats(self) -> dict:
        return self.labeling.label_size_stats()

    def stats(self):
        """Normalized :class:`~repro.api.OracleStats` (the protocol's view)."""
        from repro.api import local_oracle_stats
        return local_oracle_stats(self, self.labeling.session_cache_info())

    @property
    def queries_answered(self) -> int:
        return self._queries_answered

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Drop cached batch sessions (labels stay usable).  Idempotent."""
        self.labeling.close()

    def __enter__(self) -> "FTConnectivityOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
