"""A centralized connectivity-oracle wrapper around the labeling scheme.

Any f-FTC labeling scheme doubles as a centralized connectivity oracle by
simply storing all labels (Section 1.4); this wrapper does exactly that and is
the object the benchmarks and examples interact with.  It also exposes the
exact recomputation answer for auditing.

Queries are served through the batched session pipeline of
:mod:`repro.core.batch`: ``connected_many`` answers any number of ``(s, t)``
pairs against one shared fault set, and the single-query ``connected`` is a
thin wrapper over the same (LRU-cached) session, so repeated queries against
the same fault set never rebuild the component decomposition.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.core.batch import BatchQuerySession
from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.core.query import QueryFailure
from repro.graphs.graph import Edge, Graph

Vertex = Hashable


class FTConnectivityOracle:
    """Answers ``connected(s, t, F)`` queries for one graph under a fault budget."""

    def __init__(self, graph: Graph, max_faults: int,
                 variant: SchemeVariant = SchemeVariant.DETERMINISTIC_NEARLINEAR,
                 config: FTCConfig | None = None, use_fast_engine: bool = True):
        if config is None:
            config = FTCConfig(max_faults=max_faults, variant=variant)
        elif config.max_faults != max_faults:
            raise ValueError("config.max_faults (%d) disagrees with max_faults (%d)"
                             % (config.max_faults, max_faults))
        self.graph = graph
        self.config = config
        self.labeling = FTCLabeling(graph, config)
        self.use_fast_engine = use_fast_engine
        self._queries_answered = 0

    def connected(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> bool:
        """Connectivity of s and t in G - F, answered from labels.

        Thin wrapper over :meth:`connected_many` (which already counts the
        query — no double counting) so consecutive queries against the same
        fault set reuse one cached batch session.
        """
        return self.connected_many([(s, t)], faults)[0]

    def connected_many(self, pairs: Sequence[tuple],
                       faults: Iterable[Edge] = ()) -> list[bool]:
        """Answer many ``(s, t)`` pairs against one shared fault set.

        ``use_fast_engine=False`` keeps the basic Lemma-1 engine reachable for
        comparison runs; the default path goes through the cached batch
        session.
        """
        if self.use_fast_engine:
            answers = self.labeling.connected_many(pairs, faults)
        else:
            fault_list = list(faults)
            answers = [self.labeling.connected(s, t, fault_list, use_fast_engine=False)
                       for s, t in pairs]
        self._queries_answered += len(answers)
        return answers

    def batch_session(self, faults: Iterable[Edge] = ()) -> BatchQuerySession:
        """The (LRU-cached) batched query session for one fault set.

        Exposed so callers holding an oracle — live or rehydrated from a
        snapshot (:mod:`repro.core.snapshot`) — see the same
        ``connected`` / ``connected_many`` / ``batch_session`` surface.
        """
        return self.labeling.batch_session(faults)

    def connected_exact(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> bool:
        """Ground-truth answer by BFS on G - F (for auditing and tests)."""
        return self.graph.connected(s, t, removed=list(faults))

    def audit(self, queries: Iterable[tuple]) -> dict:
        """Compare the labeling answers against ground truth for many queries.

        Each query is a tuple ``(s, t, faults)``.  Returns counts of agreements
        and disagreements — the T1-correctness experiment in EXPERIMENTS.md.
        """
        agree = 0
        disagree = 0
        failures = 0
        for s, t, faults in queries:
            expected = self.connected_exact(s, t, faults)
            try:
                answer = self.connected(s, t, faults)
            except QueryFailure:
                # Benign decode failure (randomized sketches / heuristic
                # PRACTICAL thresholds).  Anything else — KeyError, TypeError —
                # is a genuine defect and must propagate, not be counted as a
                # scheme failure.
                failures += 1
                continue
            if answer == expected:
                agree += 1
            else:
                disagree += 1
        total = agree + disagree + failures
        return {
            "total": total,
            "agree": agree,
            "disagree": disagree,
            "failures": failures,
            "accuracy": agree / total if total else 1.0,
        }

    def label_size_stats(self) -> dict:
        return self.labeling.label_size_stats()

    @property
    def queries_answered(self) -> int:
        return self._queries_answered
