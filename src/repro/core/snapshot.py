"""Whole-labeling snapshots: ship a complete labeling, rehydrate an oracle.

The scheme's central promise (Section 7.1) is a *universal* decoder: queries
are answered from labels alone, never the graph.  A complete labeling plus the
decoder's parameters is therefore a self-contained artifact — this module
gives it a byte format (:class:`FTCSnapshot`) and a zero-rebuild loader
(:func:`load_snapshot`) that yields a :class:`RehydratedOracle` answering
``connected`` / ``connected_many`` / ``batch_session`` exactly like a live
:class:`~repro.core.oracle.FTConnectivityOracle`, without constructing a
graph, a hierarchy, or any label.

Snapshot format (version 1)
---------------------------

All integers are the unsigned LEB128 varints of :mod:`repro.core.serialize`
(``svarint`` below means zig-zag-mapped for signed values), strings are a
varint length plus UTF-8 bytes::

    magic  b"FTCS"                         4 bytes
    format version                         1 byte
    -- FTCConfig ----------------------------------------------------------
    varint  max_faults
    string  variant                        (SchemeVariant value)
    string  threshold_rule                 (ThresholdRule value)
    string  edge_id_mode                   ("compact" | "full")
    byte    adaptive_decoding              (0 | 1)
    svarint random_seed
    varint  sketch_repetitions
    -- decode-side field / codec parameters -------------------------------
    varint  codec modulus                  (exclusive bound on pre/post values)
    varint  field width w
    varint  field modulus                  (irreducible polynomial of GF(2^w))
    -- outdetect descriptor -----------------------------------------------
    byte    scheme kind                    (1 = layered RS, 2 = sketch)
    kind 1: varint level count, then one varint threshold per level
    kind 2: varint num_levels, varint repetitions, svarint seed, varint id_bits
    -- labels -------------------------------------------------------------
    varint  vertex count, then per vertex:
            vertex key, varint blob length, serialized VertexLabel
    varint  edge count, then per edge:
            key u, key v, varint blob length, serialized EdgeLabel

Vertex keys are tagged values: ``0x00`` + svarint for an int, ``0x01`` +
string for a str, ``0x02`` + varint length + children for a tuple — covering
every vertex type the graph families and the CLI produce.  Label blobs are the
self-describing per-label format of :mod:`repro.core.serialize` (own magic,
version, and kind byte), so per-label tooling reads them unchanged.

Every malformed input fails closed with
:class:`~repro.core.serialize.LabelDecodeError` — truncation, oversized
declared lengths, unknown tags/kinds, and trailing bytes are all rejected
without unbounded allocation.

Snapshot format (version 2: the mmap layout)
--------------------------------------------

Version 2 stores the same information rearranged for ``mmap`` serving: all
label blobs are concatenated into one page-aligned *label region* at the end
of the file, and the index up front records each label's ``(offset, length)``
within that region instead of inlining the bytes::

    magic  b"FTCS"                         4 bytes
    format version (= 2)                   1 byte
    u64 LE region_offset                   absolute file offset, page aligned
    u64 LE region_length                   bytes in the label region
    -- header -------------------------------------------------------------
    FTCConfig / codec / outdetect fields, exactly as in version 1
    -- index --------------------------------------------------------------
    varint  vertex count, then per vertex:
            vertex key, varint region offset, varint blob length
    varint  edge count, then per edge:
            key u, key v, varint region offset, varint blob length
    -- padding ------------------------------------------------------------
    zero bytes up to region_offset (a multiple of 4096)
    -- label region -------------------------------------------------------
    region_length bytes of concatenated label blobs

When a v2 file is loaded *by path*, :func:`load_snapshot` maps it read-only
and hands out zero-copy ``memoryview`` slices as the lazy label blobs: N
worker processes mapping the same artifact share one page-cached copy, and
per-worker RSS stays proportional to the labels actually decoded.  Version 1
artifacts keep loading exactly as before (fully read into bytes);
:func:`upgrade_snapshot_file` (``repro snapshot-upgrade``) converts between
the layouts without decoding a single label, so answers are bit-identical
across versions by construction.
"""

from __future__ import annotations

import mmap
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Any, Hashable, Iterable, Sequence

from repro.core.config import FTCConfig, SchemeVariant
from repro.errors import OracleClosedError
from repro.core.ftc import FTCLabeling, LabelBackedQueries
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.serialize import (LabelDecodeError, read_varint, write_varint)
from repro.gf2.field import GF2m
from repro.gf2.irreducible import is_irreducible
from repro.graphs.graph import Edge, _vertex_key, canonical_edge
from repro.hierarchy.config import ThresholdRule
from repro.labeling.edge_ids import EdgeIdCodec
from repro.outdetect.base import OutdetectScheme
from repro.outdetect.layered import LayeredOutdetect
from repro.outdetect.rs_threshold import RSThresholdOutdetect
from repro.outdetect.sketch import SketchOutdetect

Vertex = Hashable

#: File magic of a serialized whole-labeling snapshot.
SNAPSHOT_MAGIC = b"FTCS"

#: The original inline-blob snapshot format version.
SNAPSHOT_VERSION = 1

#: The mmap-oriented layout: page-aligned label region + offset index.
SNAPSHOT_VERSION_V2 = 2

#: Alignment of the v2 label region.  4096 covers every page size the
#: serving tier targets; a larger system page still maps the region with at
#: most one partially-shared leading page.
SNAPSHOT_PAGE_SIZE = 4096

#: Scheme-kind byte: layered Reed--Solomon threshold outdetect.
SCHEME_LAYERED_RS = 0x01

#: Scheme-kind byte: randomized graph-sketch outdetect.
SCHEME_SKETCH = 0x02

_KEY_INT = 0x00
_KEY_STR = 0x01
_KEY_TUPLE = 0x02

#: Nesting cap for tuple-typed vertex keys (mirrors the label-tree cap).
_MAX_KEY_DEPTH = 16

#: Sanity caps on decode-side parameters.  Real values sit far below these
#: (compact edge ids for a billion-vertex graph need a ~63-bit field; paper
#: thresholds are ~f log^2 n; sketches use ~log m levels), but a corrupt
#: snapshot must not be able to trigger an enormous irreducible-polynomial
#: search or a giant zero-label allocation before failing.
MAX_FIELD_WIDTH = 512
MAX_RS_THRESHOLD = 1 << 16
MAX_SKETCH_CELLS = 1 << 22
MAX_SKETCH_ID_BITS = 1 << 12


# ------------------------------------------------------------- primitives

def write_svarint(value: int, out: bytearray) -> None:
    """Append the zig-zag varint encoding of a (possibly negative) integer."""
    write_varint(value * 2 if value >= 0 else -value * 2 - 1, out)


def read_svarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read one zig-zag varint; returns ``(value, next_offset)``."""
    encoded, offset = read_varint(data, offset)
    value = encoded >> 1 if encoded % 2 == 0 else -((encoded + 1) >> 1)
    return value, offset


def write_string(text: str, out: bytearray) -> None:
    encoded = text.encode("utf-8")
    write_varint(len(encoded), out)
    out += encoded


def _read_exact(data: bytes, offset: int, length: int, what: str) -> tuple[bytes, int]:
    if length > len(data) - offset:
        raise LabelDecodeError("%s of declared length %d runs past the end of "
                               "the snapshot" % (what, length))
    return data[offset:offset + length], offset + length


def _label_blob(label) -> bytes:
    """The serialized bytes of a label-map value.

    Values are decoded label objects, raw ``bytes`` blobs (lazy v1 load), or
    ``memoryview`` slices of an mmap'd v2 region — all re-serialize to the
    identical blob, so round-tripping a lazily-loaded snapshot is byte-exact.
    """
    if isinstance(label, bytes):
        return label
    if isinstance(label, memoryview):
        return bytes(label)
    return label.to_bytes()


def _region_slice(region, relative: int, length: int, region_length: int,
                  what: str):
    """One label blob out of the v2 region, bounds-checked fail-closed."""
    if relative + length > region_length:
        raise LabelDecodeError(
            "%s blob at %d + %d bytes runs past the %d-byte label region"
            % (what, relative, length, region_length))
    return region[relative:relative + length]


def read_string(data: bytes, offset: int) -> tuple[str, int]:
    length, offset = read_varint(data, offset)
    raw, offset = _read_exact(data, offset, length, "string")
    try:
        return raw.decode("utf-8"), offset
    except UnicodeDecodeError as error:
        raise LabelDecodeError("invalid UTF-8 in snapshot string: %s" % error) from error


def write_vertex_key(key: Any, out: bytearray, _depth: int = 0) -> None:
    """Append the tagged encoding of a vertex key (int, str, or tuple)."""
    if _depth > _MAX_KEY_DEPTH:
        raise ValueError("vertex key nested deeper than %d levels" % _MAX_KEY_DEPTH)
    if isinstance(key, bool):
        raise TypeError("bool vertex keys are not supported in snapshots")
    if isinstance(key, int):
        out.append(_KEY_INT)
        write_svarint(key, out)
    elif isinstance(key, str):
        out.append(_KEY_STR)
        write_string(key, out)
    elif isinstance(key, tuple):
        out.append(_KEY_TUPLE)
        write_varint(len(key), out)
        for part in key:
            write_vertex_key(part, out, _depth + 1)
    else:
        raise TypeError("snapshot vertex keys must be ints, strings, or tuples "
                        "of those, got %r" % type(key).__name__)


def read_vertex_key(data: bytes, offset: int, _depth: int = 0) -> tuple[Any, int]:
    """Read one tagged vertex key; returns ``(key, next_offset)``."""
    if _depth > _MAX_KEY_DEPTH:
        raise LabelDecodeError("vertex key nested deeper than %d levels" % _MAX_KEY_DEPTH)
    if offset >= len(data):
        raise LabelDecodeError("truncated vertex key")
    tag = data[offset]
    offset += 1
    if tag == _KEY_INT:
        return read_svarint(data, offset)
    if tag == _KEY_STR:
        return read_string(data, offset)
    if tag == _KEY_TUPLE:
        length, offset = read_varint(data, offset)
        remaining = len(data) - offset
        if 2 * length > remaining:
            raise LabelDecodeError("vertex-key tuple declares %d parts but only "
                                   "%d bytes remain" % (length, remaining))
        parts = []
        for _ in range(length):
            part, offset = read_vertex_key(data, offset, _depth + 1)
            parts.append(part)
        return tuple(parts), offset
    raise LabelDecodeError("unknown vertex-key tag 0x%02x" % tag)


# ----------------------------------------------------- outdetect descriptor

@dataclass(frozen=True)
class OutdetectDescriptor:
    """Decode-side parameters of an outdetect scheme, as stored in a snapshot.

    ``kind`` is ``"layered-rs"`` (``thresholds`` holds one decoding threshold
    per hierarchy level) or ``"sketch"`` (``num_levels`` / ``repetitions`` /
    ``seed`` / ``id_bits`` reproduce the seeded hashing exactly).
    """

    kind: str
    thresholds: tuple = ()
    num_levels: int = 0
    repetitions: int = 0
    seed: int = 0
    id_bits: int = 0


def describe_outdetect(scheme: OutdetectScheme) -> OutdetectDescriptor:
    """Extract the decode-side parameters of a constructed outdetect scheme."""
    if isinstance(scheme, LayeredOutdetect):
        thresholds = []
        for level in scheme.level_schemes:
            if not isinstance(level, RSThresholdOutdetect):
                raise TypeError("cannot snapshot layered level of type %r"
                                % type(level).__name__)
            thresholds.append(level.threshold)
        return OutdetectDescriptor(kind="layered-rs", thresholds=tuple(thresholds))
    if isinstance(scheme, SketchOutdetect):
        return OutdetectDescriptor(kind="sketch", num_levels=scheme.num_levels,
                                   repetitions=scheme.repetitions,
                                   seed=scheme.seed, id_bits=scheme.id_bits)
    raise TypeError("cannot snapshot outdetect scheme of type %r"
                    % type(scheme).__name__)


def build_decode_outdetect(descriptor: OutdetectDescriptor, field: GF2m,
                           adaptive: bool) -> OutdetectScheme:
    """Reconstruct a decode-side outdetect scheme from stored parameters.

    No vertex labels are built — the result supports exactly what the query
    engines and batch sessions use (``zero_label``, ``combine[_all]``,
    ``decode``, ``label_bit_size``).
    """
    if descriptor.kind == "layered-rs":
        if not descriptor.thresholds:
            raise LabelDecodeError("layered outdetect descriptor has no levels")
        for threshold in descriptor.thresholds:
            if not 1 <= threshold <= MAX_RS_THRESHOLD:
                raise LabelDecodeError("implausible RS decoding threshold %d "
                                       "(limit %d)" % (threshold, MAX_RS_THRESHOLD))
        return LayeredOutdetect([
            RSThresholdOutdetect.decode_only(field, threshold, adaptive=adaptive)
            for threshold in descriptor.thresholds])
    if descriptor.kind == "sketch":
        if descriptor.num_levels < 1 or descriptor.repetitions < 1 \
                or descriptor.num_levels * descriptor.repetitions > MAX_SKETCH_CELLS:
            raise LabelDecodeError(
                "implausible sketch geometry: %d levels x %d repetitions (limit "
                "%d cells)" % (descriptor.num_levels, descriptor.repetitions,
                               MAX_SKETCH_CELLS))
        if not 1 <= descriptor.id_bits <= MAX_SKETCH_ID_BITS:
            raise LabelDecodeError("implausible sketch id width %d bits (limit %d)"
                                   % (descriptor.id_bits, MAX_SKETCH_ID_BITS))
        return SketchOutdetect.decode_only(
            descriptor.num_levels, descriptor.repetitions,
            descriptor.seed, descriptor.id_bits)
    raise LabelDecodeError("unknown outdetect scheme kind %r" % descriptor.kind)


# ------------------------------------------------------------- the snapshot

@dataclass
class FTCSnapshot:
    """A whole labeling plus every decode-side parameter, as one artifact."""

    config: FTCConfig
    codec_modulus: int
    field_width: int
    field_modulus: int
    outdetect: OutdetectDescriptor
    vertex_labels: dict = dataclass_field(default_factory=dict)
    edge_labels: dict = dataclass_field(default_factory=dict)
    #: Which container layout this snapshot was parsed from (1 or 2).  Both
    #: layouts carry identical information, so the version is provenance, not
    #: content — it is excluded from equality.
    format_version: int = dataclass_field(default=SNAPSHOT_VERSION, compare=False)

    # ------------------------------------------------------------- creation

    @classmethod
    def from_labeling(cls, labeling: FTCLabeling) -> "FTCSnapshot":
        """Capture a constructed :class:`~repro.core.ftc.FTCLabeling`.

        Vertices and edges are stored in the library's deterministic sort
        order, so equal labelings serialize to byte-identical snapshots
        regardless of set-iteration order (which varies with the per-process
        hash seed).
        """
        codec = labeling.codec
        vertex_labels = labeling.all_vertex_labels()
        edge_labels = labeling.all_edge_labels()
        return cls(
            config=labeling.config,
            codec_modulus=codec.modulus,
            field_width=codec.field.width,
            field_modulus=codec.field.modulus,
            outdetect=describe_outdetect(labeling.outdetect),
            vertex_labels={vertex: vertex_labels[vertex]
                           for vertex in sorted(vertex_labels, key=_vertex_key)},
            edge_labels={edge: edge_labels[edge]
                         for edge in sorted(edge_labels,
                                            key=lambda e: (_vertex_key(e[0]),
                                                           _vertex_key(e[1])))},
        )

    # ------------------------------------------------------------- encoding

    def _write_header_fields(self, out: bytearray) -> None:
        """Append the config / codec / outdetect fields (identical in v1/v2)."""
        config = self.config
        write_varint(config.max_faults, out)
        write_string(config.variant.value, out)
        write_string(config.threshold_rule.value, out)
        write_string(config.edge_id_mode, out)
        out.append(1 if config.adaptive_decoding else 0)
        write_svarint(config.random_seed, out)
        write_varint(config.sketch_repetitions, out)

        write_varint(self.codec_modulus, out)
        write_varint(self.field_width, out)
        write_varint(self.field_modulus, out)

        descriptor = self.outdetect
        if descriptor.kind == "layered-rs":
            out.append(SCHEME_LAYERED_RS)
            write_varint(len(descriptor.thresholds), out)
            for threshold in descriptor.thresholds:
                write_varint(threshold, out)
        elif descriptor.kind == "sketch":
            out.append(SCHEME_SKETCH)
            write_varint(descriptor.num_levels, out)
            write_varint(descriptor.repetitions, out)
            write_svarint(descriptor.seed, out)
            write_varint(descriptor.id_bits, out)
        else:
            raise ValueError("unknown outdetect scheme kind %r" % descriptor.kind)

    def to_bytes(self) -> bytes:
        """Serialize to the version-1 (inline-blob) layout."""
        out = bytearray(SNAPSHOT_MAGIC)
        out.append(SNAPSHOT_VERSION)
        self._write_header_fields(out)

        write_varint(len(self.vertex_labels), out)
        for vertex, label in self.vertex_labels.items():
            write_vertex_key(vertex, out)
            blob = _label_blob(label)
            write_varint(len(blob), out)
            out += blob
        write_varint(len(self.edge_labels), out)
        for (u, v), label in self.edge_labels.items():
            write_vertex_key(u, out)
            write_vertex_key(v, out)
            blob = _label_blob(label)
            write_varint(len(blob), out)
            out += blob
        return bytes(out)

    def to_bytes_v2(self) -> bytes:
        """Serialize to the version-2 (mmap) layout.

        Deterministic like :meth:`to_bytes`: blobs land in the label region in
        index order, the index records region-relative offsets (which depend
        only on blob sizes, never on where the region starts), and the region
        itself starts at the first page boundary past the index.
        """
        region = bytearray()
        body = bytearray()
        self._write_header_fields(body)

        write_varint(len(self.vertex_labels), body)
        for vertex, label in self.vertex_labels.items():
            blob = _label_blob(label)
            write_vertex_key(vertex, body)
            write_varint(len(region), body)
            write_varint(len(blob), body)
            region += blob
        write_varint(len(self.edge_labels), body)
        for (u, v), label in self.edge_labels.items():
            blob = _label_blob(label)
            write_vertex_key(u, body)
            write_vertex_key(v, body)
            write_varint(len(region), body)
            write_varint(len(blob), body)
            region += blob

        prefix_length = len(SNAPSHOT_MAGIC) + 1 + 16
        index_end = prefix_length + len(body)
        region_offset = -(-index_end // SNAPSHOT_PAGE_SIZE) * SNAPSHOT_PAGE_SIZE
        out = bytearray(SNAPSHOT_MAGIC)
        out.append(SNAPSHOT_VERSION_V2)
        out += region_offset.to_bytes(8, "little")
        out += len(region).to_bytes(8, "little")
        out += body
        out += bytes(region_offset - index_end)
        out += region
        return bytes(out)

    # ------------------------------------------------------------- decoding

    @classmethod
    def from_bytes(cls, data: bytes, decode_labels: bool = True) -> "FTCSnapshot":
        """Parse a snapshot; raises :class:`LabelDecodeError` on malformed input.

        With ``decode_labels=False`` the label maps hold the raw per-label
        blobs instead of decoded label objects — the whole container structure
        (header, config, descriptor, keys, lengths, trailing bytes) is still
        validated, but the label payloads are deferred.
        :class:`RehydratedOracle` uses this to decode each label lazily on
        first use, which makes rehydration time proportional to the number of
        labels rather than their total bit-size.
        """
        return cls._from_bytes(data, decode_labels)

    @classmethod
    def _from_bytes(cls, data, decode_labels: bool) -> "FTCSnapshot":
        if len(data) < len(SNAPSHOT_MAGIC) + 1:
            raise LabelDecodeError("byte string too short to hold a snapshot header")
        if bytes(data[:len(SNAPSHOT_MAGIC)]) != SNAPSHOT_MAGIC:
            raise LabelDecodeError("bad snapshot magic %r (expected %r)"
                                   % (bytes(data[:len(SNAPSHOT_MAGIC)]), SNAPSHOT_MAGIC))
        version = data[len(SNAPSHOT_MAGIC)]
        if version == SNAPSHOT_VERSION_V2:
            return cls._parse_v2(data, decode_labels)
        if version != SNAPSHOT_VERSION:
            raise LabelDecodeError(
                "unsupported snapshot format version %d (this build reads "
                "versions %d and %d)"
                % (version, SNAPSHOT_VERSION, SNAPSHOT_VERSION_V2))
        if not isinstance(data, bytes):
            data = bytes(data)
        offset = len(SNAPSHOT_MAGIC) + 1

        config, codec_modulus, field_width, field_modulus, descriptor, offset = \
            cls._read_header_fields(data, offset)

        vertex_count, offset = read_varint(data, offset)
        remaining = len(data) - offset
        if 3 * vertex_count > remaining:
            raise LabelDecodeError("snapshot declares %d vertex labels but only %d "
                                   "bytes remain" % (vertex_count, remaining))
        vertex_labels: dict = {}
        for _ in range(vertex_count):
            vertex, offset = read_vertex_key(data, offset)
            length, offset = read_varint(data, offset)
            blob, offset = _read_exact(data, offset, length, "vertex-label blob")
            vertex_labels[vertex] = VertexLabel.from_bytes(blob) if decode_labels else blob

        edge_count, offset = read_varint(data, offset)
        remaining = len(data) - offset
        if 5 * edge_count > remaining:
            raise LabelDecodeError("snapshot declares %d edge labels but only %d "
                                   "bytes remain" % (edge_count, remaining))
        edge_labels: dict = {}
        for _ in range(edge_count):
            u, offset = read_vertex_key(data, offset)
            v, offset = read_vertex_key(data, offset)
            length, offset = read_varint(data, offset)
            blob, offset = _read_exact(data, offset, length, "edge-label blob")
            try:
                edge = canonical_edge(u, v)
            except ValueError as error:
                raise LabelDecodeError("invalid snapshot edge: %s" % error) from error
            edge_labels[edge] = EdgeLabel.from_bytes(blob) if decode_labels else blob

        if offset != len(data):
            raise LabelDecodeError("%d trailing bytes after the snapshot payload"
                                   % (len(data) - offset))
        return cls(config=config, codec_modulus=codec_modulus,
                   field_width=field_width, field_modulus=field_modulus,
                   outdetect=descriptor, vertex_labels=vertex_labels,
                   edge_labels=edge_labels)

    @classmethod
    def _read_header_fields(cls, data: bytes, offset: int):
        """Parse the config / codec / outdetect fields (identical in v1/v2)."""
        max_faults, offset = read_varint(data, offset)
        variant_value, offset = read_string(data, offset)
        rule_value, offset = read_string(data, offset)
        edge_id_mode, offset = read_string(data, offset)
        if offset >= len(data):
            raise LabelDecodeError("truncated snapshot (missing adaptive flag)")
        adaptive_byte = data[offset]
        offset += 1
        if adaptive_byte not in (0, 1):
            raise LabelDecodeError("invalid adaptive-decoding flag 0x%02x" % adaptive_byte)
        random_seed, offset = read_svarint(data, offset)
        sketch_repetitions, offset = read_varint(data, offset)
        try:
            config = FTCConfig(
                max_faults=max_faults,
                variant=SchemeVariant(variant_value),
                threshold_rule=ThresholdRule(rule_value),
                edge_id_mode=edge_id_mode,
                adaptive_decoding=bool(adaptive_byte),
                random_seed=random_seed,
                sketch_repetitions=sketch_repetitions,
            )
        except ValueError as error:
            raise LabelDecodeError("invalid snapshot config: %s" % error) from error

        codec_modulus, offset = read_varint(data, offset)
        field_width, offset = read_varint(data, offset)
        field_modulus, offset = read_varint(data, offset)

        if offset >= len(data):
            raise LabelDecodeError("truncated snapshot (missing outdetect descriptor)")
        kind_byte = data[offset]
        offset += 1
        if kind_byte == SCHEME_LAYERED_RS:
            level_count, offset = read_varint(data, offset)
            remaining = len(data) - offset
            if level_count > remaining:
                raise LabelDecodeError("outdetect descriptor declares %d levels but "
                                       "only %d bytes remain" % (level_count, remaining))
            thresholds = []
            for _ in range(level_count):
                threshold, offset = read_varint(data, offset)
                thresholds.append(threshold)
            descriptor = OutdetectDescriptor(kind="layered-rs",
                                             thresholds=tuple(thresholds))
        elif kind_byte == SCHEME_SKETCH:
            num_levels, offset = read_varint(data, offset)
            repetitions, offset = read_varint(data, offset)
            seed, offset = read_svarint(data, offset)
            id_bits, offset = read_varint(data, offset)
            descriptor = OutdetectDescriptor(kind="sketch", num_levels=num_levels,
                                             repetitions=repetitions, seed=seed,
                                             id_bits=id_bits)
        else:
            raise LabelDecodeError("unknown outdetect scheme kind byte 0x%02x" % kind_byte)
        return config, codec_modulus, field_width, field_modulus, descriptor, offset

    @classmethod
    def _parse_v2(cls, data, decode_labels: bool) -> "FTCSnapshot":
        """Parse the mmap layout.

        ``data`` may be ``bytes`` or a ``memoryview`` over an mmap.  The
        index (everything before the label region) is always materialized as
        small bytes for parsing; label blobs are *slices of the source
        buffer* — zero-copy views when the source is a mapped file.
        """
        total = len(data)
        prefix = len(SNAPSHOT_MAGIC) + 1
        if total < prefix + 16:
            raise LabelDecodeError("truncated snapshot (missing v2 region header)")
        region_offset = int.from_bytes(bytes(data[prefix:prefix + 8]), "little")
        region_length = int.from_bytes(bytes(data[prefix + 8:prefix + 16]), "little")
        if region_offset % SNAPSHOT_PAGE_SIZE != 0:
            raise LabelDecodeError(
                "v2 label region offset %d is not %d-byte page aligned"
                % (region_offset, SNAPSHOT_PAGE_SIZE))
        if not prefix + 16 <= region_offset <= total:
            raise LabelDecodeError(
                "v2 label region offset %d is outside the %d-byte snapshot"
                % (region_offset, total))
        if region_offset + region_length != total:
            raise LabelDecodeError(
                "v2 label region (%d + %d bytes) does not end at the "
                "snapshot's %d bytes" % (region_offset, region_length, total))
        index = bytes(data[:region_offset])
        region = data[region_offset:total]
        offset = prefix + 16

        config, codec_modulus, field_width, field_modulus, descriptor, offset = \
            cls._read_header_fields(index, offset)

        vertex_count, offset = read_varint(index, offset)
        remaining = region_offset - offset
        if 3 * vertex_count > remaining:
            raise LabelDecodeError("snapshot declares %d vertex labels but only %d "
                                   "index bytes remain" % (vertex_count, remaining))
        vertex_labels: dict = {}
        for _ in range(vertex_count):
            vertex, offset = read_vertex_key(index, offset)
            relative, offset = read_varint(index, offset)
            length, offset = read_varint(index, offset)
            blob = _region_slice(region, relative, length, region_length,
                                 "vertex-label")
            vertex_labels[vertex] = \
                VertexLabel.from_bytes(bytes(blob)) if decode_labels else blob

        edge_count, offset = read_varint(index, offset)
        remaining = region_offset - offset
        if 5 * edge_count > remaining:
            raise LabelDecodeError("snapshot declares %d edge labels but only %d "
                                   "index bytes remain" % (edge_count, remaining))
        edge_labels: dict = {}
        for _ in range(edge_count):
            u, offset = read_vertex_key(index, offset)
            v, offset = read_vertex_key(index, offset)
            relative, offset = read_varint(index, offset)
            length, offset = read_varint(index, offset)
            blob = _region_slice(region, relative, length, region_length,
                                 "edge-label")
            try:
                edge = canonical_edge(u, v)
            except ValueError as error:
                raise LabelDecodeError("invalid snapshot edge: %s" % error) from error
            edge_labels[edge] = \
                EdgeLabel.from_bytes(bytes(blob)) if decode_labels else blob

        if any(index[offset:region_offset]):
            raise LabelDecodeError("nonzero padding between the v2 index and "
                                   "the label region")
        return cls(config=config, codec_modulus=codec_modulus,
                   field_width=field_width, field_modulus=field_modulus,
                   outdetect=descriptor, vertex_labels=vertex_labels,
                   edge_labels=edge_labels,
                   format_version=SNAPSHOT_VERSION_V2)

    # ----------------------------------------------------------------- files

    def save(self, path, version: int = SNAPSHOT_VERSION) -> int:
        """Write the snapshot to ``path``; returns the byte count.

        ``version`` selects the container layout: 1 (inline blobs, the
        default) or 2 (the mmap layout of :meth:`to_bytes_v2`).
        """
        if version == SNAPSHOT_VERSION:
            data = self.to_bytes()
        elif version == SNAPSHOT_VERSION_V2:
            data = self.to_bytes_v2()
        else:
            raise ValueError("unknown snapshot format version %d" % version)
        Path(path).write_bytes(data)
        return len(data)

    @classmethod
    def load(cls, path) -> "FTCSnapshot":
        return cls.from_bytes(Path(path).read_bytes())

    # ------------------------------------------------------------ conversion

    def rehydrate(self) -> "RehydratedOracle":
        """Build a query-ready oracle from this snapshot (no graph, no rebuild)."""
        return RehydratedOracle(self)

    def describe(self) -> dict:
        """Human-oriented summary (what ``repro.cli load-labeling`` prints)."""
        summary = {
            "format": "ftc-snapshot",
            "snapshot_version": self.format_version,
            "max_faults": self.config.max_faults,
            "variant": self.config.variant.value,
            "threshold_rule": self.config.threshold_rule.value,
            "edge_id_mode": self.config.edge_id_mode,
            "field_width": self.field_width,
            "outdetect_kind": self.outdetect.kind,
            "vertex_labels": len(self.vertex_labels),
            "edge_labels": len(self.edge_labels),
        }
        if self.outdetect.kind == "layered-rs":
            summary["levels"] = len(self.outdetect.thresholds)
            summary["thresholds"] = list(self.outdetect.thresholds)
        else:
            summary["levels"] = self.outdetect.num_levels
            summary["repetitions"] = self.outdetect.repetitions
        return summary


# -------------------------------------------------------- rehydrated oracle

class RehydratedOracle(LabelBackedQueries):
    """An oracle reconstructed from a snapshot — labels only, zero rebuild.

    Exposes the same ``connected`` / ``connected_many`` / ``batch_session``
    surface as :class:`~repro.core.oracle.FTConnectivityOracle`, backed by the
    stored label maps and a decode-side outdetect scheme rebuilt from the
    snapshot's parameters.  There is no graph, no hierarchy, and no access to
    anything but labels, so answers are byte-for-byte the universal decoder's.
    This is the "snapshot" transport of the oracle protocol (:mod:`repro.api`).
    """

    #: Transport tag of the oracle protocol (:mod:`repro.api`).
    transport = "snapshot"

    def __init__(self, snapshot: FTCSnapshot):
        self.snapshot = snapshot
        self.config = snapshot.config
        # Every stored parameter is attacker-controlled bytes until proven
        # otherwise: cap the field width before any construction, and turn
        # construction-time rejections (bad modulus degree, reducible modulus,
        # field too narrow for the id domain) into decode errors so corrupt
        # snapshots fail closed instead of crashing callers.
        if not 1 <= snapshot.field_width <= MAX_FIELD_WIDTH:
            raise LabelDecodeError("implausible snapshot field width %d (limit %d)"
                                   % (snapshot.field_width, MAX_FIELD_WIDTH))
        # Degree first (cheap), so the irreducibility test below runs only on
        # polynomials within the width cap — never on a huge hostile varint.
        if snapshot.field_modulus.bit_length() - 1 != snapshot.field_width:
            raise LabelDecodeError(
                "snapshot field modulus degree %d does not match field width %d"
                % (snapshot.field_modulus.bit_length() - 1, snapshot.field_width))
        # GF2m only verifies the degree; a reducible modulus would construct a
        # non-field ring whose arithmetic silently decodes wrong edge sets.
        if not is_irreducible(snapshot.field_modulus):
            raise LabelDecodeError("snapshot field modulus 0x%x is reducible"
                                   % snapshot.field_modulus)
        try:
            field = GF2m(snapshot.field_width, modulus=snapshot.field_modulus)
            codec = EdgeIdCodec.for_field(snapshot.codec_modulus,
                                          snapshot.config.edge_id_mode, field)
        except (ValueError, RuntimeError) as error:
            raise LabelDecodeError(
                "snapshot decode parameters are invalid: %s" % error) from error
        self.codec = codec
        self.outdetect = build_decode_outdetect(
            snapshot.outdetect, field, snapshot.config.adaptive_decoding)
        self._vertex_labels = dict(snapshot.vertex_labels)
        self._edge_labels = dict(snapshot.edge_labels)
        self._init_session_cache()
        self._queries_answered = 0
        self._closed = False
        # Set by load_snapshot when this oracle's blobs are memoryview slices
        # of a mapped file; close() then owns unmapping it.
        self._mmap = None
        self._mmap_view = None

    # ---------------------------------------------------------- label lookups
    #
    # The maps may hold raw blobs (lazy load path); a blob is decoded on first
    # use and the decoded object cached in place, so a query touches only the
    # labels it actually needs — the rehydration cost of a snapshot is
    # structural, not proportional to total label bits.  Decoding is
    # idempotent and the in-place swap is a single (GIL-atomic) dict store, so
    # concurrent threads may at worst decode the same blob twice.

    def vertex_label(self, vertex: Vertex) -> VertexLabel:
        self._ensure_open()
        try:
            label = self._vertex_labels[vertex]
        except KeyError:
            raise KeyError("vertex %r is not in the snapshot" % (vertex,)) from None
        if isinstance(label, (bytes, memoryview)):
            label = VertexLabel.from_bytes(bytes(label))
            self._vertex_labels[vertex] = label
        return label

    def edge_label(self, u: Vertex, v: Vertex) -> EdgeLabel:
        self._ensure_open()
        edge = canonical_edge(u, v)
        try:
            label = self._edge_labels[edge]
        except KeyError:
            raise KeyError("edge %r is not in the snapshot" % (edge,)) from None
        if isinstance(label, (bytes, memoryview)):
            label = EdgeLabel.from_bytes(bytes(label))
            self._edge_labels[edge] = label
        return label

    # -------------------------------------------------------------- topology

    @property
    def max_faults(self) -> int:
        return self.config.max_faults

    def vertices(self) -> list:
        return list(self._vertex_labels)

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._vertex_labels

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        try:
            return canonical_edge(u, v) in self._edge_labels
        except ValueError:
            return False

    def num_vertices(self) -> int:
        return len(self._vertex_labels)

    def num_edges(self) -> int:
        return len(self._edge_labels)

    # ---------------------------------------------------------------- queries

    def _ensure_open(self) -> None:
        if self._closed:
            raise OracleClosedError("snapshot oracle is closed; its label "
                                    "buffers were released")

    def connected(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = (),
                  use_fast_engine: bool = True) -> bool:
        """Oracle-style single query through the cached batch session."""
        self._ensure_open()
        if not use_fast_engine:
            answer = self._connected_per_query(s, t, list(faults), use_fast_engine=False)
            self._queries_answered += 1
            return answer
        return self.connected_many([(s, t)], faults)[0]

    def connected_many(self, pairs: Sequence[tuple],
                       faults: Iterable[Edge] = ()) -> list[bool]:
        self._ensure_open()
        answers = super().connected_many(pairs, faults)
        self._queries_answered += len(answers)
        return answers

    def batch_session(self, faults: Iterable[Edge] = ()):
        self._ensure_open()
        return super().batch_session(faults)

    @property
    def queries_answered(self) -> int:
        return self._queries_answered

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release the snapshot-backed buffers; idempotent.

        Drops the cached sessions *and* the label maps, and — when the labels
        were zero-copy views of an mmap'd v2 artifact — unmaps the file.
        Unlike a live :class:`~repro.core.ftc.FTCLabeling` (whose labels stay
        usable after ``close()``), a closed snapshot oracle answers nothing:
        further queries raise :class:`~repro.errors.OracleClosedError`, the
        same contract the remote transport has always had.
        """
        if self._closed:
            return
        self._closed = True
        super().close()
        self._vertex_labels = {}
        self._edge_labels = {}
        if self._mmap is not None:
            # load_snapshot built the snapshot privately for this oracle, so
            # dropping its maps here releases the last blob views (CPython
            # frees them immediately; no GC cycle involved).
            self.snapshot.vertex_labels = {}
            self.snapshot.edge_labels = {}
            if self._mmap_view is not None:
                self._mmap_view.release()
                self._mmap_view = None
            try:
                self._mmap.close()
            except BufferError:
                # A caller still holds an exported label view; the mapping is
                # released when that last reference drops.
                pass
            self._mmap = None

    def _adopt_mmap(self, mapped, view) -> None:
        """Take ownership of the mapping backing this oracle's label views."""
        self._mmap = mapped
        self._mmap_view = view

    # ------------------------------------------------------------ statistics

    def stats(self):
        """Normalized :class:`~repro.api.OracleStats` (the protocol's view)."""
        from repro.api import local_oracle_stats
        return local_oracle_stats(self, self.session_cache_info())


# ------------------------------------------------------------------ loading

def load_snapshot(source) -> RehydratedOracle:
    """Rehydrate an oracle from snapshot bytes or a snapshot file.

    ``source`` may be ``bytes`` (e.g. ``labeling.to_snapshot_bytes()``) or a
    path.  The round-trip invariant — the contract the tests enforce — is that
    ``load_snapshot(labeling.to_snapshot_bytes())`` answers every
    ``(s, t, F)`` query identically to the live scheme, with no graph and no
    reconstruction.  The container structure is fully validated here; label
    payloads are decoded lazily on first use (a query touches two vertex
    labels and the fault edges' labels, nothing else).
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        data = bytes(source)
        return FTCSnapshot.from_bytes(data, decode_labels=False).rehydrate()

    path = Path(source)
    try:
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except ValueError as error:
        # Zero-length files cannot be mapped; fail like any truncated input.
        raise LabelDecodeError("cannot map snapshot %s: %s" % (path, error)) from error
    prefix = len(SNAPSHOT_MAGIC) + 1
    if len(mapped) > prefix and mapped[:len(SNAPSHOT_MAGIC)] == SNAPSHOT_MAGIC \
            and mapped[len(SNAPSHOT_MAGIC)] == SNAPSHOT_VERSION_V2:
        view = memoryview(mapped)
        try:
            snapshot = FTCSnapshot.from_bytes(view, decode_labels=False)
            oracle = snapshot.rehydrate()
        except LabelDecodeError:
            view.release()
            mapped.close()
            raise
        oracle._adopt_mmap(mapped, view)
        return oracle
    data = bytes(mapped)
    mapped.close()
    return FTCSnapshot.from_bytes(data, decode_labels=False).rehydrate()


def upgrade_snapshot_file(source, destination) -> dict:
    """Convert a snapshot file to the v2 mmap layout (``repro snapshot-upgrade``).

    Label blobs are copied verbatim — the container is parsed with
    ``decode_labels=False`` and re-emitted, so conversion is I/O-bound and the
    rehydrated answers are bit-identical by construction.  Accepts either
    input version (re-encoding a v2 file canonicalizes it).  Returns a summary
    dict for the CLI to print.
    """
    snapshot = FTCSnapshot.from_bytes(Path(source).read_bytes(),
                                      decode_labels=False)
    data = snapshot.to_bytes_v2()
    Path(destination).write_bytes(data)
    return {
        "source": str(source),
        "destination": str(destination),
        "from_version": snapshot.format_version,
        "to_version": SNAPSHOT_VERSION_V2,
        "bytes": len(data),
        "vertex_labels": len(snapshot.vertex_labels),
        "edge_labels": len(snapshot.edge_labels),
    }


__all__ = [
    "FTCSnapshot",
    "OutdetectDescriptor",
    "RehydratedOracle",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SNAPSHOT_VERSION_V2",
    "SNAPSHOT_PAGE_SIZE",
    "describe_outdetect",
    "build_decode_outdetect",
    "load_snapshot",
    "upgrade_snapshot_file",
]
