"""The refined query engine of Section 7.6 (Lemma 6).

Instead of always growing the fragment containing ``s``, the refined procedure
keeps *all* component fragments in a heap keyed by the size of their tree
boundary and always expands the one with the smallest boundary.  Combined with
adaptive outdetect decoding this shaves a factor ``|F|`` off the query time:
the i-th expansion works on a component whose boundary has at most
``2|F| / i`` faults, so the per-expansion decoding costs sum to
``~ |F|^c * H(|F|)`` instead of ``|F|^{c+1}``.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.query import FragmentStructure, QueryFailure
from repro.labeling.edge_ids import EdgeIdCodec
from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme


class ComponentFragment:
    """A union of fragments in the merge forest.

    Shared by the refined engine here and the batched decomposition of
    :mod:`repro.core.batch`.
    """

    __slots__ = ("key", "members", "boundary", "label", "alive")

    def __init__(self, key: int, members: set, boundary: set, label):
        self.key = key
        self.members = members
        self.boundary = boundary
        self.label = label
        self.alive = True


def find_partner_component(codec: EdgeIdCodec, edge_identifiers: Sequence[int],
                           structure: FragmentStructure, owner: dict,
                           component: ComponentFragment,
                           components: dict) -> int | None:
    """The component reached by the first usable decoded outgoing edge.

    Returns ``None`` when the identifier list certifies an empty outgoing edge
    set (the component is maximal) and raises :class:`QueryFailure` when the
    identifiers are non-empty but none of them crosses the component boundary
    into a live component (possible only for randomized / heuristic labels).
    """
    if not edge_identifiers:
        return None
    for identifier in edge_identifiers:
        if not codec.is_plausible(identifier):
            continue
        pre_u, pre_v = codec.endpoint_preorders(identifier)
        key_u = owner.get(structure.fragment_of_preorder(pre_u))
        key_v = owner.get(structure.fragment_of_preorder(pre_v))
        if key_u is None or key_v is None:
            continue
        in_u = key_u == component.key
        in_v = key_v == component.key
        if in_u == in_v:
            continue
        partner_key = key_v if in_u else key_u
        if partner_key in components and components[partner_key].alive:
            return partner_key
    raise QueryFailure("decoded edge identifiers do not yield an outgoing edge")


class FastQueryEngine:
    """Heap-based, adaptive query processing (Lemma 6)."""

    def __init__(self, outdetect: OutdetectScheme, codec: EdgeIdCodec):
        self.outdetect = outdetect
        self.codec = codec

    def connected(self, source: VertexLabel, target: VertexLabel,
                  fault_labels: Sequence[EdgeLabel]) -> bool:
        """Decide s-t connectivity in G - F from labels only."""
        if source.ancestry == target.ancestry:
            return True
        structure = FragmentStructure(fault_labels)
        source_fragment = structure.fragment_of_vertex(source.ancestry)
        target_fragment = structure.fragment_of_vertex(target.ancestry)
        if source_fragment == target_fragment:
            return True

        components: dict[int, ComponentFragment] = {}
        owner: dict[int, int] = {}
        heap: list[tuple] = []
        for key, fragment_id in enumerate(structure.fragment_ids()):
            component = ComponentFragment(
                key=key,
                members={fragment_id},
                boundary=structure.boundary_of(fragment_id),
                label=structure.fragment_outdetect_label(fragment_id, self.outdetect),
            )
            components[key] = component
            owner[fragment_id] = key
            heapq.heappush(heap, (len(component.boundary), key))
        next_key = len(components)
        # Number of live components, maintained incrementally: merges reduce it
        # by one, finalized maximal components by one.  (A scan over
        # ``components`` here would make large fault sets quadratic.)
        alive_count = len(components)

        while heap:
            _, key = heapq.heappop(heap)
            component = components.get(key)
            if component is None or not component.alive:
                continue
            if alive_count <= 1:
                return False
            try:
                edge_identifiers = self.outdetect.decode(component.label)
            except OutdetectDecodeError as error:
                raise QueryFailure(str(error)) from error
            partner_key = find_partner_component(self.codec, edge_identifiers,
                                                 structure, owner, component, components)
            if partner_key is None:
                # No outgoing edge: this component is a maximal connected piece.
                contains_source = source_fragment in component.members
                contains_target = target_fragment in component.members
                if contains_source or contains_target:
                    return contains_source and contains_target
                component.alive = False
                del components[key]
                alive_count -= 1
                continue
            partner = components[partner_key]
            merged = ComponentFragment(
                key=next_key,
                members=component.members | partner.members,
                boundary=component.boundary ^ partner.boundary,
                label=self.outdetect.combine(component.label, partner.label),
            )
            next_key += 1
            if source_fragment in merged.members and target_fragment in merged.members:
                return True
            component.alive = False
            partner.alive = False
            del components[key]
            del components[partner_key]
            components[merged.key] = merged
            alive_count -= 1
            for fragment_id in merged.members:
                owner[fragment_id] = merged.key
            heapq.heappush(heap, (len(merged.boundary), merged.key))
        return False
