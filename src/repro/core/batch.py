"""Batched query processing: one fault set, many ``(s, t)`` pairs.

The scheme is designed so that everything expensive about a query depends only
on the fault set ``F``: the fragment structure of ``T' - F`` (Proposition 3)
and the component merge forest the engines build by repeatedly decoding
outdetect labels.  :class:`BatchQuerySession` exploits that by materializing
the *complete* connected-component decomposition of the fragments once —
running the same smallest-boundary-first merge process as
:class:`~repro.core.fast_query.FastQueryEngine`, but to completion instead of
stopping at the first ``s``/``t`` resolution.  Afterwards every ``(s, t)``
query is two innermost-interval lookups plus one equality check, with no
decoding at all.

Sessions are cheap to cache: :func:`~repro.core.query.canonical_fault_key`
gives an order-insensitive key that applies the same same-tree-edge
deduplication as :class:`~repro.core.query.FragmentStructure`, so permutations
of one fault set (or fault lists with redundant parallel faults) share a
session.  :class:`~repro.core.ftc.FTCLabeling` keeps an LRU of sessions keyed
this way.

Like the engines, a session sees labels only — never the graph.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.fast_query import ComponentFragment, find_partner_component
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.query import (FragmentStructure, QueryFailure, ROOT_FRAGMENT,
                              canonical_fault_key)
from repro.labeling.edge_ids import EdgeIdCodec
from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme


class BatchQuerySession:
    """Reusable decomposition of ``T' - F`` answering any number of queries.

    Parameters
    ----------
    outdetect:
        The outdetect scheme used to decode combined fragment labels (only its
        decoding machinery is used, never the graph).
    codec:
        Edge-identifier codec interpreting decoded identifiers.
    fault_labels:
        The :class:`~repro.core.labels.EdgeLabel` of every faulty edge.

    Raises
    ------
    QueryFailure:
        When a component label cannot be decoded.  This can only happen for
        randomized sketch labels or the heuristic PRACTICAL threshold rule —
        the deterministic PAPER schemes never raise — and it happens at
        *construction* time, because the decomposition decodes every component
        eagerly (callers can fall back to the per-query engines).
    """

    def __init__(self, outdetect: OutdetectScheme, codec: EdgeIdCodec,
                 fault_labels: Sequence[EdgeLabel]):
        self.outdetect = outdetect
        self.codec = codec
        self.fault_labels = list(fault_labels)
        #: Canonical (deduplicated, order-insensitive) key of this fault set.
        self.key = canonical_fault_key(self.fault_labels)
        self.structure = FragmentStructure(self.fault_labels)
        #: fragment id -> final connected-component identifier.
        self._component_of: dict[int, int] = self._decompose()
        self._queries_answered = 0

    # ------------------------------------------------------------ construction

    def _decompose(self) -> dict[int, int]:
        """Run the smallest-boundary-first merge process to completion."""
        structure = self.structure
        components: dict[int, ComponentFragment] = {}
        owner: dict[int, int] = {}
        heap: list[tuple] = []
        for key, fragment_id in enumerate(structure.fragment_ids()):
            component = ComponentFragment(
                key=key,
                members={fragment_id},
                boundary=structure.boundary_of(fragment_id),
                label=structure.fragment_outdetect_label(fragment_id, self.outdetect),
            )
            components[key] = component
            owner[fragment_id] = key
            heapq.heappush(heap, (len(component.boundary), key))
        next_key = len(components)
        alive_count = len(components)
        final: dict[int, int] = {}

        while heap and alive_count > 1:
            _, key = heapq.heappop(heap)
            component = components.get(key)
            if component is None or not component.alive:
                continue
            try:
                edge_identifiers = self.outdetect.decode(component.label)
            except OutdetectDecodeError as error:
                raise QueryFailure(str(error)) from error
            partner_key = find_partner_component(self.codec, edge_identifiers,
                                                 structure, owner, component,
                                                 components)
            if partner_key is None:
                # No outgoing edge: a maximal connected component is finalized.
                for fragment_id in component.members:
                    final[fragment_id] = component.key
                component.alive = False
                del components[key]
                alive_count -= 1
                continue
            partner = components[partner_key]
            merged = ComponentFragment(
                key=next_key,
                members=component.members | partner.members,
                boundary=component.boundary ^ partner.boundary,
                label=self.outdetect.combine(component.label, partner.label),
            )
            next_key += 1
            component.alive = False
            partner.alive = False
            del components[key]
            del components[partner_key]
            components[merged.key] = merged
            alive_count -= 1
            for fragment_id in merged.members:
                owner[fragment_id] = merged.key
            heapq.heappush(heap, (len(merged.boundary), merged.key))

        # Whatever is still alive (exactly one component when the residual
        # graph is connected) is maximal by construction.
        for component in components.values():
            if component.alive:
                for fragment_id in component.members:
                    final[fragment_id] = component.key
        return final

    # ---------------------------------------------------------------- queries

    def connected(self, source: VertexLabel, target: VertexLabel) -> bool:
        """Connectivity of two labeled vertices under this session's faults."""
        self._queries_answered += 1
        if source.ancestry == target.ancestry:
            return True
        source_fragment = self.structure.fragment_of_vertex(source.ancestry)
        target_fragment = self.structure.fragment_of_vertex(target.ancestry)
        if source_fragment == target_fragment:
            return True
        return self._component_of[source_fragment] == self._component_of[target_fragment]

    def connected_many(self, pairs: Sequence[tuple]) -> list[bool]:
        """Answer many ``(source_label, target_label)`` pairs."""
        return [self.connected(source, target) for source, target in pairs]

    # ------------------------------------------------------------- statistics

    @property
    def queries_answered(self) -> int:
        """Number of pair queries answered by this session."""
        return self._queries_answered

    def num_components(self) -> int:
        """Number of connected components the fragments collapse into."""
        return len(set(self._component_of.values())) if self._component_of else 1

    def num_fragments(self) -> int:
        return self.structure.num_fragments()


__all__ = ["BatchQuerySession", "canonical_fault_key", "ROOT_FRAGMENT"]
