"""Batched query processing: one fault set, many ``(s, t)`` pairs.

The scheme is designed so that everything expensive about a query depends only
on the fault set ``F``: the fragment structure of ``T' - F`` (Proposition 3)
and the component merge forest the engines build by repeatedly decoding
outdetect labels.  :class:`BatchQuerySession` exploits that by materializing
the *complete* connected-component decomposition of the fragments once —
running the same smallest-boundary-first merge process as
:class:`~repro.core.fast_query.FastQueryEngine`, but to completion instead of
stopping at the first ``s``/``t`` resolution.  Afterwards every ``(s, t)``
query is two innermost-interval lookups plus one equality check, with no
decoding at all.

Sessions are cheap to cache: :func:`~repro.core.query.canonical_fault_key`
gives an order-insensitive key that applies the same same-tree-edge
deduplication as :class:`~repro.core.query.FragmentStructure`, so permutations
of one fault set (or fault lists with redundant parallel faults) share a
session.  :class:`~repro.core.ftc.FTCLabeling` keeps an LRU of sessions keyed
this way.

Like the engines, a session sees labels only — never the graph.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.fast_query import ComponentFragment, find_partner_component
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.query import (FragmentStructure, QueryFailure, ROOT_FRAGMENT,
                              canonical_fault_key)
from repro.labeling.edge_ids import EdgeIdCodec
from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme


class BatchQuerySession:
    """Reusable decomposition of ``T' - F`` answering any number of queries.

    Parameters
    ----------
    outdetect:
        The outdetect scheme used to decode combined fragment labels (only its
        decoding machinery is used, never the graph).
    codec:
        Edge-identifier codec interpreting decoded identifiers.
    fault_labels:
        The :class:`~repro.core.labels.EdgeLabel` of every faulty edge.

    Raises
    ------
    QueryFailure:
        When a component label cannot be decoded.  This can only happen for
        randomized sketch labels or the heuristic PRACTICAL threshold rule —
        the deterministic PAPER schemes never raise — and it happens at
        *construction* time, because the decomposition decodes every component
        eagerly (callers can fall back to the per-query engines).
    """

    def __init__(self, outdetect: OutdetectScheme, codec: EdgeIdCodec,
                 fault_labels: Sequence[EdgeLabel]):
        self.outdetect = outdetect
        self.codec = codec
        self.fault_labels = list(fault_labels)
        #: Canonical (deduplicated, order-insensitive) key of this fault set.
        self.key = canonical_fault_key(self.fault_labels)
        self.structure = FragmentStructure(self.fault_labels)
        #: fragment id -> final connected-component identifier.
        self._component_of: dict[int, int] = self._decompose()
        self._queries_answered = 0

    @classmethod
    def from_decomposition(cls, outdetect: OutdetectScheme, codec: EdgeIdCodec,
                           fault_labels: Sequence[EdgeLabel],
                           component_of: dict) -> "BatchQuerySession":
        """Assemble a session from an externally computed decomposition.

        The merge forest is the only expensive part of construction, and it is
        a pure function of the fault labels and the decode-side scheme
        parameters — so a worker process can compute the ``fragment id ->
        component`` map (:func:`decompose_fault_set`) and the parent assembles
        a session around its own scheme instances, bit-identical to one the
        constructor would have built.
        """
        session = cls.__new__(cls)
        session.outdetect = outdetect
        session.codec = codec
        session.fault_labels = list(fault_labels)
        session.key = canonical_fault_key(session.fault_labels)
        session.structure = FragmentStructure(session.fault_labels)
        session._component_of = dict(component_of)
        session._queries_answered = 0
        return session

    # ------------------------------------------------------------ construction

    def _decompose(self) -> dict[int, int]:
        """Run the smallest-boundary-first merge process to completion.

        The merge order is exactly the scalar engines' smallest-boundary-first
        order, but decoding is *batched*: all initial fragment labels decode in
        one :meth:`~repro.outdetect.base.OutdetectScheme.decode_many` call,
        and whenever the heap reaches a merged component whose label has not
        been decoded yet, every not-yet-decoded alive label decodes in one
        further bulk call.  Merging at least halves the number of alive
        components between flushes, so one session is ``O(log fragments)``
        bulk rounds instead of one scalar decode pipeline per component.
        Failures stay deferred inside the decode cache and only surface when
        the failing component is actually popped — the same moment the scalar
        loop would have raised.
        """
        structure = self.structure
        components: dict[int, ComponentFragment] = {}
        owner: dict[int, int] = {}
        heap: list[tuple] = []
        for key, fragment_id in enumerate(structure.fragment_ids()):
            component = ComponentFragment(
                key=key,
                members={fragment_id},
                boundary=structure.boundary_of(fragment_id),
                label=structure.fragment_outdetect_label(fragment_id, self.outdetect),
            )
            components[key] = component
            owner[fragment_id] = key
            heapq.heappush(heap, (len(component.boundary), key))
        next_key = len(components)
        alive_count = len(components)
        final: dict[int, int] = {}
        decoded: dict[int, object] = self._decode_batch(components.values())

        while heap and alive_count > 1:
            _, key = heapq.heappop(heap)
            component = components.get(key)
            if component is None or not component.alive:
                continue
            if key not in decoded:
                decoded.update(self._decode_batch(
                    candidate for candidate in components.values()
                    if candidate.alive and candidate.key not in decoded))
            entry = decoded[key]
            if isinstance(entry, OutdetectDecodeError):
                raise QueryFailure(str(entry)) from entry
            edge_identifiers = entry
            partner_key = find_partner_component(self.codec, edge_identifiers,
                                                 structure, owner, component,
                                                 components)
            if partner_key is None:
                # No outgoing edge: a maximal connected component is finalized.
                for fragment_id in component.members:
                    final[fragment_id] = component.key
                component.alive = False
                del components[key]
                alive_count -= 1
                continue
            partner = components[partner_key]
            merged = ComponentFragment(
                key=next_key,
                members=component.members | partner.members,
                boundary=component.boundary ^ partner.boundary,
                label=self.outdetect.combine(component.label, partner.label),
            )
            next_key += 1
            component.alive = False
            partner.alive = False
            del components[key]
            del components[partner_key]
            components[merged.key] = merged
            alive_count -= 1
            for fragment_id in merged.members:
                owner[fragment_id] = merged.key
            heapq.heappush(heap, (len(merged.boundary), merged.key))

        # Whatever is still alive (exactly one component when the residual
        # graph is connected) is maximal by construction.
        for component in components.values():
            if component.alive:
                for fragment_id in component.members:
                    final[fragment_id] = component.key
        return final

    def _decode_batch(self, components) -> dict[int, object]:
        """Decode the labels of the given components in one bulk call.

        Returns a map from component key to the decoded edge-identifier list,
        or to the deferred :class:`OutdetectDecodeError` for labels the scheme
        rejects (surfaced by :meth:`_decompose` only if that component is
        popped, preserving the scalar loop's failure semantics).
        """
        components = list(components)
        entries = self.outdetect.decode_many(
            [component.label for component in components])
        return {component.key: entry
                for component, entry in zip(components, entries)}

    # ---------------------------------------------------------------- queries

    def connected(self, source: VertexLabel, target: VertexLabel) -> bool:
        """Connectivity of two labeled vertices under this session's faults."""
        self._queries_answered += 1
        if source.ancestry == target.ancestry:
            return True
        source_fragment = self.structure.fragment_of_vertex(source.ancestry)
        target_fragment = self.structure.fragment_of_vertex(target.ancestry)
        if source_fragment == target_fragment:
            return True
        return self._component_of[source_fragment] == self._component_of[target_fragment]

    def connected_many(self, pairs: Sequence[tuple]) -> list[bool]:
        """Answer many ``(source_label, target_label)`` pairs."""
        return [self.connected(source, target) for source, target in pairs]

    # ------------------------------------------------------------- statistics

    @property
    def queries_answered(self) -> int:
        """Number of pair queries answered by this session."""
        return self._queries_answered

    def num_components(self) -> int:
        """Number of connected components the fragments collapse into."""
        return len(set(self._component_of.values())) if self._component_of else 1

    def num_fragments(self) -> int:
        return self.structure.num_fragments()


def decompose_fault_set(task: dict) -> dict:
    """Compute one fault set's component decomposition from plain data.

    The executor-backed construction path of
    :meth:`repro.core.ftc.LabelBackedQueries.build_sessions` submits this
    module-level function to a :class:`~repro.build.executors.ProcessExecutor`
    (it must be picklable, like :func:`repro.build.shards.build_shard`).  The
    task dict carries only plain data — the outdetect descriptor and field
    parameters of the snapshot machinery plus the (picklable) fault edge
    labels — so no vertex labels and no live scheme objects cross the process
    boundary.  Returns the ``fragment id -> component`` map, which the parent
    turns back into a session with :meth:`BatchQuerySession.from_decomposition`.
    """
    from repro.core.snapshot import build_decode_outdetect
    from repro.gf2.field import GF2m

    field = GF2m(task["field_width"], modulus=task["field_modulus"])
    codec = EdgeIdCodec.for_field(task["codec_modulus"], task["codec_mode"], field)
    outdetect = build_decode_outdetect(task["descriptor"], field, task["adaptive"])
    session = BatchQuerySession(outdetect, codec, task["fault_labels"])
    return session._component_of


__all__ = ["BatchQuerySession", "decompose_fault_set", "canonical_fault_key",
           "ROOT_FRAGMENT"]
