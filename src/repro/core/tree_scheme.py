"""The tree-edge f-FTC labeling scheme (Lemma 1).

Vertices receive their ancestry label; every tree edge of ``T'`` receives the
ancestry labels of its endpoints plus the XOR of the outdetect labels over the
subtree hanging below it.  Proposition 4 then lets the decoder reconstruct the
outdetect label of any union of fragments purely from the labels of the faulty
edges bounding it.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.transform import TransformedInstance
from repro.graphs.graph import Edge, canonical_edge
from repro.outdetect.base import OutdetectScheme

Vertex = Hashable


class TreeEdgeLabeling:
    """Vertex and tree-edge labels of the tree-edge scheme.

    Parameters
    ----------
    instance:
        The transformed instance (auxiliary graph, ancestry labels, ...).
    outdetect:
        The S_{f,T'}-outdetect scheme over the non-tree edges of G'.
    """

    def __init__(self, instance: TransformedInstance, outdetect: OutdetectScheme):
        self.instance = instance
        self.outdetect = outdetect
        self._vertex_labels: dict[Vertex, VertexLabel] = {}
        self._edge_labels: dict[Edge, EdgeLabel] = {}
        self._build()

    def _build(self) -> None:
        ancestry = self.instance.ancestry
        tree = self.instance.auxiliary.tree_prime
        for vertex in tree.vertices():
            self._vertex_labels[vertex] = VertexLabel(ancestry=ancestry.label(vertex))

        # Subtree XOR sums of the outdetect labels, bottom-up (Proposition 4's
        # per-edge quantity L_out(V_{T'(e)})).
        subtree_sum: dict[Vertex, object] = {}
        for vertex in tree.postorder():
            total = self.outdetect.label_of(vertex)
            for child in tree.children(vertex):
                total = self.outdetect.combine(total, subtree_sum[child])
            subtree_sum[vertex] = total

        for vertex in tree.vertices():
            parent = tree.parent(vertex)
            if parent is None:
                continue
            edge = canonical_edge(vertex, parent)
            label_sum = subtree_sum[vertex]
            self._edge_labels[edge] = EdgeLabel(
                ancestry_upper=ancestry.label(parent),
                ancestry_lower=ancestry.label(vertex),
                outdetect_subtree_sum=label_sum,
                outdetect_bits=self.outdetect.label_bit_size(label_sum),
            )

    # ------------------------------------------------------------- accessors

    def vertex_label(self, vertex: Vertex) -> VertexLabel:
        return self._vertex_labels[vertex]

    def tree_edge_label(self, u: Vertex, v: Vertex) -> EdgeLabel:
        return self._edge_labels[canonical_edge(u, v)]

    def all_vertex_labels(self) -> dict:
        return dict(self._vertex_labels)

    def all_edge_labels(self) -> dict:
        return dict(self._edge_labels)

    def max_vertex_label_bits(self) -> int:
        return max(label.bit_size() for label in self._vertex_labels.values())

    def max_edge_label_bits(self) -> int:
        if not self._edge_labels:
            return 0
        return max(label.bit_size() for label in self._edge_labels.values())
