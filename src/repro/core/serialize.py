"""Byte codecs for label objects (storage / shipping format).

Labels are the unit the scheme ships around — a distributed deployment stores
vertex labels at the vertices and hands the decoder only labels — so they need
a byte encoding.  The format is deliberately simple and self-describing:

* a 6-byte header: magic ``b"FTCL"``, one format-version byte, one kind byte
  (:data:`KIND_VERTEX` or :data:`KIND_EDGE`);
* unsigned LEB128 varints for all integers (ancestry pre/post values are
  small, outdetect field elements can be hundreds of bits — varints handle
  both without fixed-width waste);
* outdetect subtree sums are arbitrarily nested tuples of integers (flat for a
  single k-threshold or sketch level, one tuple per level for layered
  schemes), encoded as a tagged tree: ``0x00`` + varint for an int node,
  ``0x01`` + varint length + children for a tuple node.

The codecs round-trip exactly: ``from_bytes(to_bytes(label)) == label`` for
every label any scheme variant produces, which the property tests assert.
"""

from __future__ import annotations

from typing import Any

#: File magic of every serialized label.
MAGIC = b"FTCL"

#: Current format version (bump when the layout changes).
FORMAT_VERSION = 1

#: Kind byte of a serialized :class:`~repro.core.labels.VertexLabel`.
KIND_VERTEX = 0x01

#: Kind byte of a serialized :class:`~repro.core.labels.EdgeLabel`.
KIND_EDGE = 0x02

_TAG_INT = 0x00
_TAG_TUPLE = 0x01

#: Upper bound on the encoded length of a single varint.  Legitimate label
#: integers (ancestry values, outdetect field elements, sketch cells) are at
#: most a few hundred bits — far below this cap — but a corrupt or adversarial
#: run of continuation bytes must not build an unboundedly large integer
#: before the decoder notices the problem.
MAX_VARINT_BYTES = 1 << 16

#: Upper bound on label-tree nesting.  Real labels nest at most a few levels
#: (a layered scheme is one tuple of per-level tuples of ints); the cap turns
#: adversarial deep nesting into a :class:`LabelDecodeError` instead of a
#: ``RecursionError``.
MAX_TREE_DEPTH = 64


class LabelDecodeError(ValueError):
    """Raised when a byte string is not a valid serialized label."""


# ------------------------------------------------------------------- varints

def write_varint(value: int, out: bytearray) -> None:
    """Append the unsigned LEB128 encoding of ``value`` (>= 0) to ``out``."""
    if value < 0:
        raise ValueError("varints encode non-negative integers, got %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Read one varint at ``offset``; returns ``(value, next_offset)``.

    The continuation run is capped both by the remaining buffer and by
    :data:`MAX_VARINT_BYTES`, so corrupt input fails closed with
    :class:`LabelDecodeError` instead of accumulating a giant integer.
    """
    value = 0
    shift = 0
    end = len(data)
    limit = min(end, offset + MAX_VARINT_BYTES)
    while True:
        if offset >= end:
            raise LabelDecodeError("truncated varint")
        if offset >= limit:
            raise LabelDecodeError("varint runs past %d bytes without terminating"
                                   % MAX_VARINT_BYTES)
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


# ------------------------------------------------------------ label trees

def write_label_tree(node: Any, out: bytearray) -> None:
    """Append the tagged-tree encoding of an int-or-tuple structure."""
    if isinstance(node, int):
        out.append(_TAG_INT)
        write_varint(node, out)
    elif isinstance(node, tuple):
        out.append(_TAG_TUPLE)
        write_varint(len(node), out)
        for child in node:
            write_label_tree(child, out)
    else:
        raise TypeError("label trees contain only ints and tuples, got %r"
                        % type(node).__name__)


def read_label_tree(data: bytes, offset: int, _depth: int = 0) -> tuple[Any, int]:
    """Read one tagged tree at ``offset``; returns ``(node, next_offset)``."""
    if _depth > MAX_TREE_DEPTH:
        raise LabelDecodeError("label tree nested deeper than %d levels" % MAX_TREE_DEPTH)
    if offset >= len(data):
        raise LabelDecodeError("truncated label tree")
    tag = data[offset]
    offset += 1
    if tag == _TAG_INT:
        return read_varint(data, offset)
    if tag == _TAG_TUPLE:
        length, offset = read_varint(data, offset)
        # Every child occupies at least two bytes (a tag plus one varint
        # byte), so a declared length beyond the remaining buffer is corrupt;
        # reject it before looping.
        remaining = len(data) - offset
        if 2 * length > remaining:
            raise LabelDecodeError("tuple declares %d children but only %d bytes remain"
                                   % (length, remaining))
        children = []
        for _ in range(length):
            child, offset = read_label_tree(data, offset, _depth + 1)
            children.append(child)
        return tuple(children), offset
    raise LabelDecodeError("unknown label-tree tag 0x%02x" % tag)


# --------------------------------------------------------------- envelopes

def write_header(kind: int) -> bytearray:
    """The versioned header every serialized label starts with."""
    out = bytearray(MAGIC)
    out.append(FORMAT_VERSION)
    out.append(kind)
    return out


def read_header(data: bytes, expected_kind: int) -> int:
    """Validate the header; returns the offset of the payload."""
    if len(data) < len(MAGIC) + 2:
        raise LabelDecodeError("byte string too short to hold a label header")
    if data[:len(MAGIC)] != MAGIC:
        raise LabelDecodeError("bad magic %r (expected %r)"
                               % (bytes(data[:len(MAGIC)]), MAGIC))
    version = data[len(MAGIC)]
    if version != FORMAT_VERSION:
        raise LabelDecodeError("unsupported label format version %d (this build "
                               "reads version %d)" % (version, FORMAT_VERSION))
    kind = data[len(MAGIC) + 1]
    if kind != expected_kind:
        raise LabelDecodeError("label kind 0x%02x does not match expected 0x%02x"
                               % (kind, expected_kind))
    return len(MAGIC) + 2


def check_consumed(data: bytes, offset: int) -> None:
    if offset != len(data):
        raise LabelDecodeError("%d trailing bytes after the label payload"
                               % (len(data) - offset))
