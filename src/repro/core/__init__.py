"""The f-fault-tolerant connectivity (f-FTC) labeling schemes of the paper.

This package assembles the substrates (ancestry labels, edge identifiers,
sparsification hierarchies, outdetect labelings) into the labeling schemes of
Theorems 1 and 2 and their randomized counterparts, together with the two
query-processing engines (Sections 3.1 and 7.6).

Public entry points
-------------------
``FTCLabeling``
    Builds all vertex/edge labels for a graph and a fault budget ``f``.
``FTCDecoder``
    The universal decoder: answers ``connected(s, t, F)`` from labels only.
``FTConnectivityOracle``
    Convenience wrapper that stores the labels of one graph and answers
    queries given vertex names and edge lists.
``FTCConfig`` / ``SchemeVariant``
    Which of the Table-1 schemes to build.
``BatchQuerySession``
    One fault set, many ``(s, t)`` queries: the component decomposition is
    built once and every pair is answered by lookup (see
    :mod:`repro.core.batch`).
``FTCSnapshot`` / ``load_snapshot`` / ``RehydratedOracle``
    Whole-labeling snapshots: serialize a complete labeling (config, codec
    and outdetect parameters, every label) and rehydrate a query-ready
    oracle without the graph and without reconstruction (see
    :mod:`repro.core.snapshot`).
"""

from repro.core.batch import BatchQuerySession
from repro.core.config import FTCConfig, SchemeVariant
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.ftc import FTCLabeling
from repro.core.query import BasicQueryEngine, QueryFailure, canonical_fault_key
from repro.core.fast_query import FastQueryEngine
from repro.core.oracle import FTConnectivityOracle
from repro.core.snapshot import FTCSnapshot, RehydratedOracle, load_snapshot

__all__ = [
    "FTCConfig",
    "SchemeVariant",
    "VertexLabel",
    "EdgeLabel",
    "FTCLabeling",
    "BasicQueryEngine",
    "FastQueryEngine",
    "BatchQuerySession",
    "QueryFailure",
    "canonical_fault_key",
    "FTConnectivityOracle",
    "FTCSnapshot",
    "RehydratedOracle",
    "load_snapshot",
]
