"""The f-fault-tolerant connectivity (f-FTC) labeling schemes of the paper.

This package assembles the substrates (ancestry labels, edge identifiers,
sparsification hierarchies, outdetect labelings) into the labeling schemes of
Theorems 1 and 2 and their randomized counterparts, together with the two
query-processing engines (Sections 3.1 and 7.6).

Public entry points
-------------------
``FTCLabeling``
    Builds all vertex/edge labels for a graph and a fault budget ``f``.
``FTCDecoder``
    The universal decoder: answers ``connected(s, t, F)`` from labels only.
``FTConnectivityOracle``
    Convenience wrapper that stores the labels of one graph and answers
    queries given vertex names and edge lists.
``FTCConfig`` / ``SchemeVariant``
    Which of the Table-1 schemes to build.
"""

from repro.core.config import FTCConfig, SchemeVariant
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.ftc import FTCLabeling
from repro.core.query import BasicQueryEngine, QueryFailure
from repro.core.fast_query import FastQueryEngine
from repro.core.oracle import FTConnectivityOracle

__all__ = [
    "FTCConfig",
    "SchemeVariant",
    "VertexLabel",
    "EdgeLabel",
    "FTCLabeling",
    "BasicQueryEngine",
    "FastQueryEngine",
    "QueryFailure",
    "FTConnectivityOracle",
]
