"""The top-level f-FTC labeling scheme (Theorems 1 and 2).

:class:`FTCLabeling` runs the whole wrap-up of Section 5:

1. root a spanning tree and build the auxiliary instance (G', T', sigma);
2. build the sparsification hierarchy (deterministic or randomized) or, for
   the Dory--Parter baselines, a single graph sketch;
3. build the layered S_{f,T'}-outdetect labels;
4. build ancestry labels and the tree-edge scheme (subtree sums);
5. expose per-vertex and per-edge labels of the *original* graph through the
   transformation of Proposition 1 (an edge's label is the label of sigma(e)).

Queries are answered by :class:`FTCDecoder`, which sees labels only.

The query-side surface (per-query decoding, the LRU-cached batch-session
pipeline, fault-budget enforcement) lives in :class:`LabelBackedQueries`, which
is shared with the snapshot-rehydrated oracle of :mod:`repro.core.snapshot` —
the same code path answers queries whether the labels were just constructed or
loaded back from bytes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Iterable, Sequence

from repro.core.batch import BatchQuerySession
from repro.core.config import FTCConfig
from repro.core.fast_query import FastQueryEngine
from repro.core.labels import EdgeLabel, VertexLabel
from repro.core.query import BasicQueryEngine, QueryFailure, canonical_fault_key
from repro.core.transform import TransformedInstance
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.outdetect.base import OutdetectScheme

Vertex = Hashable


class FTCDecoder:
    """The universal decoding function D^con of Section 7.1.

    It answers connectivity queries from the labels of ``s``, ``t`` and the
    faulty edges alone.  Two engines are available: the basic one of Lemma 1
    and the refined heap-based one of Lemma 6 (the default).
    """

    def __init__(self, outdetect: OutdetectScheme, codec, use_fast_engine: bool = True):
        self.outdetect = outdetect
        self.codec = codec
        self._basic = BasicQueryEngine(outdetect, codec)
        self._fast = FastQueryEngine(outdetect, codec)
        self.use_fast_engine = use_fast_engine

    def connected(self, source_label: VertexLabel, target_label: VertexLabel,
                  fault_labels: Sequence[EdgeLabel]) -> bool:
        engine = self._fast if self.use_fast_engine else self._basic
        return engine.connected(source_label, target_label, fault_labels)

    def session(self, fault_labels: Sequence[EdgeLabel]) -> BatchQuerySession:
        """A batched query session for one fault set (labels only).

        The session materializes the full component decomposition once; every
        subsequent ``(s, t)`` pair is answered by component lookup.
        """
        return BatchQuerySession(self.outdetect, self.codec, fault_labels)

    def connected_many(self, pairs: Sequence[tuple],
                       fault_labels: Sequence[EdgeLabel]) -> list[bool]:
        """Answer many ``(source_label, target_label)`` pairs for one fault set."""
        return self.session(fault_labels).connected_many(pairs)


class LabelBackedQueries:
    """Query-side API shared by :class:`FTCLabeling` and a rehydrated snapshot
    oracle (:class:`~repro.core.snapshot.RehydratedOracle`).

    Subclasses provide ``vertex_label(v)`` / ``edge_label(u, v)`` lookups and
    the ``outdetect``, ``codec``, and ``max_faults`` attributes, and must call
    :meth:`_init_session_cache` during construction.  Everything here sees
    labels only — never a graph.

    The session cache is safe under concurrent access from multiple threads
    (the query server of :mod:`repro.server` shares one oracle between an
    event loop and a worker-thread executor): every read or write of the LRU
    happens under one lock, while the expensive
    :class:`~repro.core.batch.BatchQuerySession` construction happens outside
    it, so builders of distinct fault sets never serialize each other.
    """

    #: Number of batch sessions kept alive (LRU, keyed by the canonical fault set).
    SESSION_CACHE_SIZE = 32

    def _init_session_cache(self) -> None:
        """Set up the (locked) batch-session LRU; call once per instance."""
        self._session_cache: OrderedDict[tuple, BatchQuerySession] = OrderedDict()
        self._session_lock = threading.Lock()
        self._session_evictions = 0

    # ---------------------------------------------------------- label lookups

    def vertex_label(self, vertex: Vertex) -> VertexLabel:
        raise NotImplementedError

    def edge_label(self, u: Vertex, v: Vertex) -> EdgeLabel:
        raise NotImplementedError

    # ---------------------------------------------------------------- queries

    def decoder(self, use_fast_engine: bool = True) -> FTCDecoder:
        """The universal decoder for labels produced by this scheme."""
        return FTCDecoder(self.outdetect, self.codec, use_fast_engine)

    def connected(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = (),
                  use_fast_engine: bool = True) -> bool:
        """Convenience query: look up the labels and run the decoder."""
        return self._connected_per_query(s, t, faults, use_fast_engine)

    def _connected_per_query(self, s: Vertex, t: Vertex, faults: Iterable[Edge],
                             use_fast_engine: bool = True) -> bool:
        """One query through the per-query engines (never the session cache).

        Kept separate from :meth:`connected` so subclasses may route single
        queries through the batch session while the ``connected_many``
        fallback still reaches the lazy engines without recursing.
        """
        fault_labels = self._fault_labels(faults)
        return self.decoder(use_fast_engine).connected(
            self.vertex_label(s), self.vertex_label(t), fault_labels)

    # ------------------------------------------------------------ batched path

    def _fault_labels_keyed(self, faults: Iterable[Edge]) -> tuple[list[EdgeLabel], tuple]:
        """Label every fault, compute the canonical key, enforce the budget.

        The canonical key doubles as the deduplicated fault set — the budget
        ``f`` bounds *distinct* failures (restating the same edge twice must
        not reject a query the scheme can answer) — and as the session-cache
        key, so it is computed exactly once per call.
        """
        fault_labels = [self.edge_label(u, v) for u, v in faults]
        key = canonical_fault_key(fault_labels)
        if len(key) > self.max_faults:
            raise ValueError("query has %d faults but the scheme was built for f=%d"
                             % (len(key), self.max_faults))
        return fault_labels, key

    def _fault_labels(self, faults: Iterable[Edge]) -> list[EdgeLabel]:
        """Label every fault and enforce the budget on the deduplicated set."""
        return self._fault_labels_keyed(faults)[0]

    def batch_session(self, faults: Iterable[Edge] = ()) -> BatchQuerySession:
        """The (cached) batched query session for one fault set.

        Sessions are kept in an LRU keyed by the canonical fault set — the
        order-insensitive, same-tree-edge-deduplicated key of
        :func:`~repro.core.query.canonical_fault_key` — so permutations and
        redundant restatements of a fault set share one decomposition.
        """
        fault_labels, key = self._fault_labels_keyed(faults)
        session = self._cached_session(key)
        if session is not None:
            return session
        # Build outside the lock: the decomposition decodes every component
        # and may be slow, and concurrent builds of distinct fault sets must
        # proceed in parallel.  Two threads racing on the same fault set both
        # build, but the insert below keeps exactly one (callers wanting
        # build-once semantics use the single-flight
        # :class:`repro.server.SessionManager`).
        session = BatchQuerySession(self.outdetect, self.codec, fault_labels)
        with self._session_lock:
            existing = self._session_cache.get(key)
            if existing is not None:
                self._session_cache.move_to_end(key)
                return existing
            self._session_cache[key] = session
            while len(self._session_cache) > self.SESSION_CACHE_SIZE:
                self._session_cache.popitem(last=False)
                self._session_evictions += 1
        return session

    def build_sessions(self, fault_sets: Sequence[Iterable[Edge]],
                       executor=None, jobs: int | None = None
                       ) -> list[BatchQuerySession]:
        """Build (or fetch) the batch sessions of many distinct fault sets.

        The construction-side executor seam (:mod:`repro.build.executors`)
        reused on the query side: ``executor`` / ``jobs`` resolve through
        :func:`~repro.build.executors.resolve_executor` exactly as on
        ``FTCLabeling`` construction, and the expensive part of every *novel*
        fault set — the component decomposition — fans out across the
        resolved strategy.  Process workers receive only plain data (the
        snapshot outdetect descriptor plus the fault edge labels, which are
        picklable) and return the decomposition map, so no vertex labels ever
        cross a process boundary.  Results land in the session LRU and are
        bit-identical to serially built sessions.

        Returns one session per input fault set, in input order; duplicate
        fault sets (after canonicalization) share one session.  Raises
        whatever ``batch_session`` would raise for the offending set
        (:class:`KeyError`, :class:`ValueError`,
        :class:`~repro.core.query.QueryFailure`).
        """
        from repro.build.executors import resolve_executor

        resolved = resolve_executor(executor, jobs)
        keyed = [self._fault_labels_keyed(faults) for faults in fault_sets]
        sessions: dict[tuple, BatchQuerySession] = {}
        missing: list[tuple] = []
        missing_labels: dict[tuple, list[EdgeLabel]] = {}
        for fault_labels, key in keyed:
            if key in sessions or key in missing_labels:
                continue
            cached = self._cached_session(key)
            if cached is not None:
                sessions[key] = cached
            else:
                missing.append(key)
                missing_labels[key] = fault_labels
        if missing:
            built = self._build_sessions_missing(
                resolved, [missing_labels[key] for key in missing])
            for key, session in zip(missing, built):
                with self._session_lock:
                    existing = self._session_cache.get(key)
                    if existing is not None:
                        self._session_cache.move_to_end(key)
                        session = existing
                    else:
                        self._session_cache[key] = session
                        while len(self._session_cache) > self.SESSION_CACHE_SIZE:
                            self._session_cache.popitem(last=False)
                            self._session_evictions += 1
                sessions[key] = session
        return [sessions[key] for _, key in keyed]

    def _build_sessions_missing(self, executor, label_lists: list
                                ) -> list[BatchQuerySession]:
        """Construct the not-yet-cached sessions on the resolved executor."""
        tasks = None
        if executor.name == "process":
            tasks = self._session_worker_tasks(label_lists)
        if tasks is None:
            # Serial and thread strategies (and schemes without a snapshot
            # descriptor) construct in-process; threads need no pickling.
            return executor.map(
                lambda labels: BatchQuerySession(self.outdetect, self.codec, labels),
                label_lists)
        from repro.core.batch import decompose_fault_set

        decompositions = executor.map(decompose_fault_set, tasks)
        return [BatchQuerySession.from_decomposition(self.outdetect, self.codec,
                                                     labels, component_of)
                for labels, component_of in zip(label_lists, decompositions)]

    def _session_worker_tasks(self, label_lists: list) -> list | None:
        """Plain-data process-worker tasks, or ``None`` when the scheme has no
        snapshot descriptor (process construction then falls back in-process).
        """
        from repro.core.snapshot import describe_outdetect

        try:
            descriptor = describe_outdetect(self.outdetect)
        except TypeError:
            return None
        level = self.outdetect
        if hasattr(level, "level_schemes"):
            level = level.level_schemes[0]
        field = self.codec.field
        return [{
            "descriptor": descriptor,
            "field_width": field.width,
            "field_modulus": field.modulus,
            "adaptive": bool(getattr(level, "adaptive", True)),
            "codec_modulus": self.codec.modulus,
            "codec_mode": self.codec.mode,
            "fault_labels": labels,
        } for labels in label_lists]

    def _cached_session(self, key: tuple) -> BatchQuerySession | None:
        """Locked LRU lookup by canonical fault key (no construction)."""
        with self._session_lock:
            session = self._session_cache.get(key)
            if session is not None:
                self._session_cache.move_to_end(key)
            return session

    def session_cache_info(self) -> dict:
        """Current occupancy of the batch-session LRU (for stats/metrics)."""
        with self._session_lock:
            return {
                "size": len(self._session_cache),
                "max_size": self.SESSION_CACHE_SIZE,
                "evictions": self._session_evictions,
            }

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release every cached batch session.  Idempotent.

        Labels stay usable — ``close()`` only drops the (potentially large)
        component decompositions, matching the ``close()`` required by the
        oracle protocol of :mod:`repro.api`.  Local transports hold no
        sockets, so this is the whole teardown.
        """
        with self._session_lock:
            self._session_cache.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def connected_many(self, pairs: Sequence[tuple],
                       faults: Iterable[Edge] = ()) -> list[bool]:
        """Answer many ``(s, t)`` queries against one shared fault set.

        Builds (or reuses) the :class:`~repro.core.batch.BatchQuerySession`
        for ``faults`` and answers every pair by component lookup.  The eager
        decomposition decodes every component, so it can fail (randomized
        sketch labels, heuristic PRACTICAL thresholds) where a lazy single
        query would not have needed the failing component; those calls fall
        back to the per-query engine pair by pair, which preserves the
        pre-batching semantics exactly (and still raises if a failure hits a
        component the query actually needs).
        """
        pair_list = list(pairs)
        fault_list = list(faults)
        try:
            session = self.batch_session(fault_list)
        except QueryFailure:
            return [self._connected_per_query(s, t, fault_list) for s, t in pair_list]
        # Large batches revisit the same endpoints many times; resolve each
        # vertex label once.
        label_cache: dict = {}

        def label_of(vertex):
            label = label_cache.get(vertex)
            if label is None:
                label = label_cache[vertex] = self.vertex_label(vertex)
            return label

        return [session.connected(label_of(s), label_of(t)) for s, t in pair_list]


class FTCLabeling(LabelBackedQueries):
    """Labels of one graph for one fault budget, plus the matching decoder.

    Construction is delegated entirely to the staged
    :class:`~repro.build.plan.BuildPlan` — this class is a thin shim that
    runs the plan and exposes the result through the query surface, so no
    caller constructs labelings ad hoc anymore.  ``executor`` / ``jobs``
    select the execution strategy (serial by default; see
    :mod:`repro.build.executors`), and the resulting
    :class:`~repro.build.plan.BuildReport` is kept as ``build_report``.
    Every executor produces a byte-identical labeling.
    """

    def __init__(self, graph: Graph, config: FTCConfig, root: Vertex | None = None,
                 executor=None, jobs: int | None = None):
        from repro.build.plan import BuildPlan

        result = BuildPlan(graph, config, root=root).run(executor, jobs)
        self._adopt_build_result(graph, config, result)

    @classmethod
    def from_build_result(cls, graph: Graph, config: FTCConfig,
                          result) -> "FTCLabeling":
        """Wrap an already-executed :class:`~repro.build.plan.BuildResult`.

        The seam for builds that do not run the default plan — the
        incremental path of :mod:`repro.delta` runs the plan itself (with a
        ``level_reuse`` hook) and adopts the result here.  The labeling is
        indistinguishable from one built by the constructor.
        """
        labeling = cls.__new__(cls)
        labeling._adopt_build_result(graph, config, result)
        return labeling

    def _adopt_build_result(self, graph: Graph, config: FTCConfig,
                            result) -> None:
        self.graph = graph
        self.config = config
        self.instance: TransformedInstance = result.instance
        self.outdetect: OutdetectScheme = result.outdetect
        self._tree_labeling = result.tree_labeling
        self._hierarchy = result.hierarchy
        self.build_report = result.report
        self.construction_seconds = result.report.total_seconds
        self._init_session_cache()

    # ---------------------------------------------------------------- labels

    def vertex_label(self, vertex: Vertex) -> VertexLabel:
        """Label of an original vertex."""
        if not self.graph.has_vertex(vertex):
            raise KeyError("vertex %r is not in the graph" % (vertex,))
        return self._tree_labeling.vertex_label(vertex)

    def edge_label(self, u: Vertex, v: Vertex) -> EdgeLabel:
        """Label of an original edge (the label of sigma(e), Proposition 1)."""
        edge = canonical_edge(u, v)
        if not self.graph.has_edge(*edge):
            raise KeyError("edge %r is not in the graph" % (edge,))
        image = self.instance.auxiliary.sigma(*edge)
        return self._tree_labeling.tree_edge_label(*image)

    def all_vertex_labels(self) -> dict:
        return {vertex: self.vertex_label(vertex) for vertex in self.graph.vertices()}

    def all_edge_labels(self) -> dict:
        return {edge: self.edge_label(*edge) for edge in self.graph.edges()}

    # -------------------------------------------------------- query-side knobs

    @property
    def codec(self):
        """The edge-identifier codec (decode-side parameter of the scheme)."""
        return self.instance.codec

    @property
    def max_faults(self) -> int:
        return self.config.max_faults

    # ------------------------------------------------------------ persistence

    def to_snapshot_bytes(self) -> bytes:
        """Serialize the whole labeling to the FTCS snapshot format.

        The snapshot carries everything the universal decoder needs — config,
        edge-id codec parameters, per-level outdetect thresholds, and every
        vertex and edge label — so :func:`repro.core.snapshot.load_snapshot`
        can rehydrate an oracle without the graph and without re-running the
        construction.
        """
        from repro.core.snapshot import FTCSnapshot
        return FTCSnapshot.from_labeling(self).to_bytes()

    def save(self, path) -> int:
        """Write the snapshot bytes to ``path``; returns the byte count."""
        from repro.core.snapshot import FTCSnapshot
        return FTCSnapshot.from_labeling(self).save(path)

    # -------------------------------------------------------------- statistics

    def label_size_stats(self) -> dict:
        """Label-size accounting (bits), the quantity Table 1 compares."""
        vertex_bits = [self.vertex_label(v).bit_size() for v in self.graph.vertices()]
        edge_bits = [self.edge_label(u, v).bit_size() for u, v in self.graph.edges()]
        stats = {
            "n": self.graph.num_vertices(),
            "m": self.graph.num_edges(),
            "f": self.config.max_faults,
            "variant": self.config.variant.value,
            "max_vertex_label_bits": max(vertex_bits) if vertex_bits else 0,
            "max_edge_label_bits": max(edge_bits) if edge_bits else 0,
            "mean_edge_label_bits": (sum(edge_bits) / len(edge_bits)) if edge_bits else 0.0,
            "total_label_bits": sum(vertex_bits) + sum(edge_bits),
            "construction_seconds": self.construction_seconds,
        }
        if self._hierarchy is not None:
            stats["hierarchy"] = self._hierarchy.describe()
        return stats

    @property
    def hierarchy(self):
        """The sparsification hierarchy (``None`` for sketch variants)."""
        return self._hierarchy
