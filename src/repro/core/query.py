"""The basic query engine and the label-only fragment structure.

Everything here operates exclusively on label objects — the ancestry labels of
``s`` and ``t`` and the :class:`~repro.core.labels.EdgeLabel` of every faulty
edge — mirroring the universality requirement of the decoding function
(Section 7.1).  The graph itself is never consulted.

The fragment structure implements Proposition 3: the connected components of
``T' - F`` are identified by the DFS interval of the faulty edge directly
above them, the component of any vertex is found by innermost-interval search
over the fault intervals, and each component's tree boundary (the faults
adjacent to it) comes from the nesting forest of the fault intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.labels import EdgeLabel, VertexLabel
from repro.errors import OracleError
from repro.labeling.ancestry import AncestryLabel
from repro.labeling.edge_ids import EdgeIdCodec
from repro.outdetect.base import OutdetectDecodeError, OutdetectScheme

#: Identifier of the fragment containing the root of T'.
ROOT_FRAGMENT = -1


class QueryFailure(OracleError):
    """Raised when a query cannot be answered reliably.

    This can only happen for the randomized whp scheme or the heuristic
    PRACTICAL threshold rule; the deterministic PAPER schemes never raise.
    Part of the shared :class:`~repro.errors.OracleError` hierarchy, so it
    means the same thing through every transport of :mod:`repro.api`.
    """


def canonical_fault_key(fault_labels: Sequence[EdgeLabel]) -> tuple:
    """Canonical, order-insensitive key of a fault set.

    Faults whose labels map to the same tree edge of ``T'`` (the same subtree
    interval) represent the same failure and are deduplicated — the same rule
    :class:`FragmentStructure` applies during construction.  The key is what
    the batch-session caches in :mod:`repro.core.batch` and
    :class:`~repro.core.ftc.FTCLabeling` are keyed by.
    """
    intervals = {(label.ancestry_lower.pre, label.ancestry_lower.post)
                 for label in fault_labels}
    return tuple(sorted(intervals))


@dataclass(frozen=True)
class Fragment:
    """One connected component of T' - F, as seen through labels only."""

    identifier: int                  # index into the fault list, or ROOT_FRAGMENT
    interval: AncestryLabel | None   # subtree interval (None for the root fragment)
    boundary: frozenset              # indices of faults adjacent to this fragment


class FragmentStructure:
    """The component structure of ``T' - F`` derived from fault edge labels."""

    def __init__(self, fault_labels: Sequence[EdgeLabel]):
        self.fault_labels = list(fault_labels)
        # Deduplicate faults that map to the same tree edge of T' (same subtree
        # interval): they represent the same failure.
        self._unique_indices: list[int] = []
        seen_intervals: set[tuple] = set()
        for index, label in enumerate(self.fault_labels):
            key = (label.ancestry_lower.pre, label.ancestry_lower.post)
            if key in seen_intervals:
                continue
            seen_intervals.add(key)
            self._unique_indices.append(index)
        self._intervals = {index: self.fault_labels[index].subtree_interval()
                           for index in self._unique_indices}
        self._parent_fault = self._compute_nesting()
        self._boundaries = self._compute_boundaries()
        # Per-fragment outdetect labels are memoized: a batch session (and the
        # engines' repeated boundary sums) ask for the same fragment many times.
        self._label_cache_scheme: OutdetectScheme | None = None
        self._label_cache: dict[int, object] = {}

    # ------------------------------------------------------------- structure

    def _compute_nesting(self) -> dict:
        """For each fault, the innermost other fault whose interval strictly contains it."""
        parent: dict[int, int] = {}
        for index in self._unique_indices:
            interval = self._intervals[index]
            best = ROOT_FRAGMENT
            best_pre = -1
            for other in self._unique_indices:
                if other == index:
                    continue
                other_interval = self._intervals[other]
                if other_interval.is_strict_ancestor_of(interval) and other_interval.pre > best_pre:
                    best = other
                    best_pre = other_interval.pre
            parent[index] = best
        return parent

    def _compute_boundaries(self) -> dict:
        boundaries: dict[int, set] = {ROOT_FRAGMENT: set()}
        for index in self._unique_indices:
            boundaries.setdefault(index, set()).add(index)
            boundaries.setdefault(self._parent_fault[index], set()).add(index)
        return boundaries

    # ------------------------------------------------------------- queries

    def fragment_ids(self) -> list[int]:
        """All fragment identifiers (the root fragment first)."""
        return [ROOT_FRAGMENT] + list(self._unique_indices)

    def fragment_of_vertex(self, ancestry: AncestryLabel) -> int:
        """Fragment containing the vertex with the given ancestry label."""
        return self.fragment_of_preorder(ancestry.pre)

    def fragment_of_preorder(self, preorder: int) -> int:
        """Fragment of a vertex identified only by its DFS preorder index."""
        best = ROOT_FRAGMENT
        best_pre = -1
        for index in self._unique_indices:
            interval = self._intervals[index]
            if interval.contains_preorder(preorder) and interval.pre > best_pre:
                best = index
                best_pre = interval.pre
        return best

    def boundary_of(self, fragment_id: int) -> set:
        """Indices of faults on the tree boundary of one fragment."""
        return set(self._boundaries.get(fragment_id, set()))

    def fragment_outdetect_label(self, fragment_id: int, outdetect: OutdetectScheme):
        """Proposition 4: XOR the subtree sums of the boundary faults.

        Results are memoized per fragment (for one scheme at a time): the
        batch query session and both engines repeatedly need the same
        fragment's label.
        """
        if outdetect is not self._label_cache_scheme:
            self._label_cache_scheme = outdetect
            self._label_cache = {}
        cached = self._label_cache.get(fragment_id)
        if cached is not None:
            return cached
        label = outdetect.combine_all(
            self.fault_labels[index].outdetect_subtree_sum
            for index in self.boundary_of(fragment_id))
        self._label_cache[fragment_id] = label
        return label

    def num_fragments(self) -> int:
        return len(self._unique_indices) + 1


class BasicQueryEngine:
    """The query procedure of Lemma 1: grow the fragment containing ``s``.

    Parameters
    ----------
    outdetect:
        The S_{f,T'}-outdetect scheme used to decode combined labels.  Only
        its decoding machinery (field, thresholds) is used — never the graph.
    codec:
        The edge-identifier codec, for interpreting decoded identifiers.
    """

    def __init__(self, outdetect: OutdetectScheme, codec: EdgeIdCodec):
        self.outdetect = outdetect
        self.codec = codec

    def connected(self, source: VertexLabel, target: VertexLabel,
                  fault_labels: Sequence[EdgeLabel]) -> bool:
        """Decide s-t connectivity in G - F from labels only."""
        if source.ancestry == target.ancestry:
            return True
        structure = FragmentStructure(fault_labels)
        source_fragment = structure.fragment_of_vertex(source.ancestry)
        target_fragment = structure.fragment_of_vertex(target.ancestry)
        if source_fragment == target_fragment:
            return True

        merged = {source_fragment}
        combined = structure.fragment_outdetect_label(source_fragment, self.outdetect)
        # At most one merge per fragment.
        for _ in range(structure.num_fragments()):
            try:
                edge_identifiers = self.outdetect.decode(combined)
            except OutdetectDecodeError as error:
                raise QueryFailure(str(error)) from error
            next_fragment = self._next_fragment(edge_identifiers, structure, merged)
            if next_fragment is None:
                return False
            if next_fragment == target_fragment:
                return True
            merged.add(next_fragment)
            combined = self.outdetect.combine(
                combined, structure.fragment_outdetect_label(next_fragment, self.outdetect))
        return False

    def _next_fragment(self, edge_identifiers: Sequence[int],
                       structure: FragmentStructure, merged: set) -> int | None:
        """The fragment reached by the first usable outgoing edge, or ``None``."""
        if not edge_identifiers:
            return None
        usable = False
        for identifier in edge_identifiers:
            if not self.codec.is_plausible(identifier):
                continue
            pre_u, pre_v = self.codec.endpoint_preorders(identifier)
            fragment_u = structure.fragment_of_preorder(pre_u)
            fragment_v = structure.fragment_of_preorder(pre_v)
            if (fragment_u in merged) == (fragment_v in merged):
                # Not an outgoing edge of the current union; with deterministic
                # labels this cannot happen, with sketches it can.
                continue
            usable = True
            return fragment_v if fragment_u in merged else fragment_u
        if not usable:
            raise QueryFailure("decoded edge identifiers do not yield an outgoing edge")
        return None  # pragma: no cover - unreachable
