"""The transformed instance: auxiliary graph, ancestry labels, edge identifiers.

This module performs steps 1 and 4 of the wrap-up in Section 5: pick a rooted
spanning tree, build the auxiliary graph ``G'`` and tree ``T'`` (Section 3.2),
label ``T'`` with ancestry labels (Lemma 7), and assign every non-tree edge of
``G'`` an identifier that embeds its endpoints' ancestry labels (Section 7.2).
Everything later in the pipeline (hierarchies, outdetect labels, tree-edge
labels) is expressed in terms of this transformed instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.graphs.auxiliary import AuxiliaryGraph
from repro.graphs.euler import EulerTour
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.spanning_tree import RootedTree, bfs_spanning_tree
from repro.labeling.ancestry import AncestryLabeling
from repro.labeling.edge_ids import EdgeIdCodec

Vertex = Hashable


@dataclass
class TransformedInstance:
    """Everything derived from (G, root) before labels are computed."""

    graph: Graph
    tree: RootedTree
    auxiliary: AuxiliaryGraph
    ancestry: AncestryLabeling
    tour: EulerTour
    codec: EdgeIdCodec
    non_tree_edges: list[Edge]
    edge_ids: dict

    def identifier_of(self, u: Vertex, v: Vertex) -> int:
        """Field-element identifier of a non-tree edge of G'."""
        return self.edge_ids[canonical_edge(u, v)]


def build_transformed_instance(graph: Graph, root: Vertex | None = None,
                               edge_id_mode: str = "compact") -> TransformedInstance:
    """Run the input transformation for a connected graph.

    Parameters
    ----------
    graph:
        The input graph ``G`` (must be connected).
    root:
        Root of the spanning tree; defaults to the smallest vertex (by the
        deterministic sort key used throughout the library).
    edge_id_mode:
        Edge-identifier packing mode (see :class:`~repro.labeling.edge_ids.EdgeIdCodec`).
    """
    if graph.num_vertices() == 0:
        raise ValueError("the input graph has no vertices")
    if root is None:
        root = min(graph.vertices(), key=lambda v: (type(v).__name__, repr(v)))
    tree = bfs_spanning_tree(graph, root)
    auxiliary = AuxiliaryGraph(graph, tree)
    tree_prime = auxiliary.tree_prime
    ancestry = AncestryLabeling(tree_prime)
    tour = EulerTour(tree_prime)
    codec = EdgeIdCodec(max_label_value=ancestry.max_value(), mode=edge_id_mode)
    non_tree = auxiliary.non_tree_edges_prime()
    edge_ids = {}
    for edge in non_tree:
        u, v = edge
        identifier = codec.encode(ancestry.label(u), ancestry.label(v))
        edge_ids[edge] = identifier
    return TransformedInstance(
        graph=graph,
        tree=tree,
        auxiliary=auxiliary,
        ancestry=ancestry,
        tour=tour,
        codec=codec,
        non_tree_edges=non_tree,
        edge_ids=edge_ids,
    )
