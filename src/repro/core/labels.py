"""The label objects handed to the universal decoder.

A query ``(s, t, F)`` is answered from the :class:`VertexLabel` of ``s`` and
``t`` and the :class:`EdgeLabel` of every edge in ``F`` — nothing else.  The
label objects therefore contain exactly what the paper assigns (Section 7.2):

* a vertex carries its ancestry label in the auxiliary spanning tree ``T'``;
* an edge carries the ancestry labels of the two endpoints of its image
  ``sigma(e)`` in ``T'`` and the XOR of the outdetect labels over the subtree
  hanging below that tree edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.labeling.ancestry import AncestryLabel

OutdetectLabel = Any


@dataclass(frozen=True)
class VertexLabel:
    """Label of a vertex: its ancestry label in T'."""

    ancestry: AncestryLabel

    def bit_size(self) -> int:
        return self.ancestry.bit_size()


@dataclass(frozen=True)
class EdgeLabel:
    """Label of an edge: endpoint ancestry labels of sigma(e) plus a subtree sum.

    Attributes
    ----------
    ancestry_upper / ancestry_lower:
        Ancestry labels of the endpoints of the tree edge ``sigma(e)``; the
        *lower* endpoint is the one farther from the root, so its interval is
        contained in the upper one's.
    outdetect_subtree_sum:
        XOR of the outdetect labels over all vertices in the subtree of T'
        rooted at the lower endpoint (the quantity Proposition 4 sums).
    outdetect_bits:
        Size of ``outdetect_subtree_sum`` in bits (recorded at construction
        time so size accounting does not need the scheme object).
    """

    ancestry_upper: AncestryLabel
    ancestry_lower: AncestryLabel
    outdetect_subtree_sum: OutdetectLabel
    outdetect_bits: int

    def __post_init__(self):
        if not self.ancestry_upper.is_ancestor_of(self.ancestry_lower):
            raise ValueError("the upper endpoint of a tree edge must be an ancestor "
                             "of the lower endpoint")

    def bit_size(self) -> int:
        return (self.ancestry_upper.bit_size() + self.ancestry_lower.bit_size()
                + self.outdetect_bits)

    def subtree_interval(self) -> AncestryLabel:
        """The DFS interval of the subtree cut off by removing this edge."""
        return self.ancestry_lower
