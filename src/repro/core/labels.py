"""The label objects handed to the universal decoder.

A query ``(s, t, F)`` is answered from the :class:`VertexLabel` of ``s`` and
``t`` and the :class:`EdgeLabel` of every edge in ``F`` — nothing else.  The
label objects therefore contain exactly what the paper assigns (Section 7.2):

* a vertex carries its ancestry label in the auxiliary spanning tree ``T'``;
* an edge carries the ancestry labels of the two endpoints of its image
  ``sigma(e)`` in ``T'`` and the XOR of the outdetect labels over the subtree
  hanging below that tree edge.

Both label classes round-trip through a versioned byte format
(``to_bytes`` / ``from_bytes``, see :mod:`repro.core.serialize`) so labels can
be stored and shipped out of process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core import serialize
from repro.labeling.ancestry import AncestryLabel

OutdetectLabel = Any


@dataclass(frozen=True)
class VertexLabel:
    """Label of a vertex: its ancestry label in T'."""

    ancestry: AncestryLabel

    def bit_size(self) -> int:
        return self.ancestry.bit_size()

    def to_bytes(self) -> bytes:
        """Serialize to the versioned byte format of :mod:`repro.core.serialize`."""
        out = serialize.write_header(serialize.KIND_VERTEX)
        serialize.write_varint(self.ancestry.pre, out)
        serialize.write_varint(self.ancestry.post, out)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "VertexLabel":
        """Inverse of :meth:`to_bytes`; raises
        :class:`~repro.core.serialize.LabelDecodeError` on malformed input."""
        offset = serialize.read_header(data, serialize.KIND_VERTEX)
        pre, offset = serialize.read_varint(data, offset)
        post, offset = serialize.read_varint(data, offset)
        serialize.check_consumed(data, offset)
        return cls(ancestry=AncestryLabel(pre=pre, post=post))


@dataclass(frozen=True)
class EdgeLabel:
    """Label of an edge: endpoint ancestry labels of sigma(e) plus a subtree sum.

    Attributes
    ----------
    ancestry_upper / ancestry_lower:
        Ancestry labels of the endpoints of the tree edge ``sigma(e)``; the
        *lower* endpoint is the one farther from the root, so its interval is
        contained in the upper one's.
    outdetect_subtree_sum:
        XOR of the outdetect labels over all vertices in the subtree of T'
        rooted at the lower endpoint (the quantity Proposition 4 sums).
    outdetect_bits:
        Size of ``outdetect_subtree_sum`` in bits (recorded at construction
        time so size accounting does not need the scheme object).
    """

    ancestry_upper: AncestryLabel
    ancestry_lower: AncestryLabel
    outdetect_subtree_sum: OutdetectLabel
    outdetect_bits: int

    def __post_init__(self):
        if not self.ancestry_upper.is_ancestor_of(self.ancestry_lower):
            raise ValueError("the upper endpoint of a tree edge must be an ancestor "
                             "of the lower endpoint")

    def bit_size(self) -> int:
        return (self.ancestry_upper.bit_size() + self.ancestry_lower.bit_size()
                + self.outdetect_bits)

    def subtree_interval(self) -> AncestryLabel:
        """The DFS interval of the subtree cut off by removing this edge."""
        return self.ancestry_lower

    def to_bytes(self) -> bytes:
        """Serialize to the versioned byte format of :mod:`repro.core.serialize`.

        The outdetect subtree sum is stored as a tagged int/tuple tree, so any
        scheme variant's label shape (flat k-threshold or sketch vectors,
        per-level tuples for layered schemes) round-trips exactly.
        """
        out = serialize.write_header(serialize.KIND_EDGE)
        serialize.write_varint(self.ancestry_upper.pre, out)
        serialize.write_varint(self.ancestry_upper.post, out)
        serialize.write_varint(self.ancestry_lower.pre, out)
        serialize.write_varint(self.ancestry_lower.post, out)
        serialize.write_varint(self.outdetect_bits, out)
        serialize.write_label_tree(self.outdetect_subtree_sum, out)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EdgeLabel":
        """Inverse of :meth:`to_bytes`; raises
        :class:`~repro.core.serialize.LabelDecodeError` on malformed input."""
        offset = serialize.read_header(data, serialize.KIND_EDGE)
        upper_pre, offset = serialize.read_varint(data, offset)
        upper_post, offset = serialize.read_varint(data, offset)
        lower_pre, offset = serialize.read_varint(data, offset)
        lower_post, offset = serialize.read_varint(data, offset)
        outdetect_bits, offset = serialize.read_varint(data, offset)
        subtree_sum, offset = serialize.read_label_tree(data, offset)
        serialize.check_consumed(data, offset)
        try:
            return cls(
                ancestry_upper=AncestryLabel(pre=upper_pre, post=upper_post),
                ancestry_lower=AncestryLabel(pre=lower_pre, post=lower_post),
                outdetect_subtree_sum=subtree_sum,
                outdetect_bits=outdetect_bits,
            )
        except ValueError as error:
            # Structurally valid bytes can still violate the label's own
            # invariants (the upper endpoint must be an ancestor of the
            # lower); that is corrupt input, not a programming error.
            raise serialize.LabelDecodeError(
                "decoded edge label is invalid: %s" % error) from error
