"""Configuration of the f-FTC labeling schemes (the rows of Table 1)."""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from enum import Enum

from repro.hierarchy.config import NetAlgorithm, ThresholdRule


class SchemeVariant(Enum):
    """Which labeling scheme to build; each value matches a row of Table 1."""

    #: Deterministic, near-linear construction: NetFind hierarchy + Reed--Solomon
    #: outdetect.  Label size O(f^2 log^3 n) — the headline scheme of Theorem 1.
    DETERMINISTIC_NEARLINEAR = "det-nearlinear"

    #: Deterministic, polynomial construction: greedy-net hierarchy + Reed--Solomon
    #: outdetect (stands in for the MDG18-based O(f^2 log^2 n loglog n) variant).
    DETERMINISTIC_POLY = "det-poly"

    #: Randomized full-query-support scheme: sub-sampled hierarchy + Reed--Solomon
    #: outdetect.  Label size O(f log^3 n) — the third row contributed by the paper.
    RANDOMIZED_FULL = "rand-full"

    #: Dory--Parter second scheme with whp-per-query support: a single graph sketch.
    SKETCH_WHP = "sketch-whp"

    #: Dory--Parter second scheme upgraded to full query support (repetitions
    #: scaled by f).
    SKETCH_FULL = "sketch-full"

    @property
    def is_deterministic(self) -> bool:
        return self in (SchemeVariant.DETERMINISTIC_NEARLINEAR,
                        SchemeVariant.DETERMINISTIC_POLY)

    @property
    def uses_hierarchy(self) -> bool:
        return self in (SchemeVariant.DETERMINISTIC_NEARLINEAR,
                        SchemeVariant.DETERMINISTIC_POLY,
                        SchemeVariant.RANDOMIZED_FULL)


@dataclass(frozen=True)
class FTCConfig:
    """All knobs of a labeling-scheme construction.

    Attributes
    ----------
    max_faults:
        The fault budget ``f``.
    variant:
        Which Table-1 scheme to build.
    threshold_rule:
        PAPER (proven constants, larger labels) or PRACTICAL (heuristic
        constants with failure detection); only used by hierarchy variants.
    edge_id_mode:
        ``"compact"`` or ``"full"`` edge identifiers (see
        :mod:`repro.labeling.edge_ids`).
    adaptive_decoding:
        Whether outdetect decoding adapts to the actual cut size (Appendix B).
    random_seed:
        Seed for the randomized variants (sub-sampling / sketches).
    sketch_repetitions:
        Base number of sketch repetitions per level (scaled by ``f`` for the
        full-support sketch variant).
    """

    max_faults: int
    variant: SchemeVariant = SchemeVariant.DETERMINISTIC_NEARLINEAR
    threshold_rule: ThresholdRule = ThresholdRule.PAPER
    edge_id_mode: str = "compact"
    adaptive_decoding: bool = True
    random_seed: int = 0
    sketch_repetitions: int = 8

    def __post_init__(self):
        if self.max_faults < 1:
            raise ValueError("max_faults must be at least 1, got %d" % self.max_faults)

    @property
    def net_algorithm(self) -> NetAlgorithm:
        if self.variant is SchemeVariant.DETERMINISTIC_POLY:
            return NetAlgorithm.GREEDY
        return NetAlgorithm.NETFIND

    def effective_sketch_repetitions(self) -> int:
        if self.variant is SchemeVariant.SKETCH_FULL:
            return self.sketch_repetitions * max(self.max_faults, 1)
        return self.sketch_repetitions


def resolve_ftc_config(max_faults: int | None = None,
                       config: FTCConfig | None = None,
                       variant: SchemeVariant | str | None = None,
                       random_seed: int | None = None,
                       **overrides) -> FTCConfig:
    """Normalize every construction entry point onto one :class:`FTCConfig`.

    This is the single resolver behind ``Oracle.build``, the CLI, and the
    :class:`~repro.core.oracle.FTConnectivityOracle` shim.  Exactly one source
    of truth is expected:

    * ``config=FTCConfig(...)`` alone — returned as-is (the canonical shape);
    * loose parameters alone — ``max_faults`` (required), plus optional
      ``variant`` (enum or its string value), ``random_seed``, and any other
      :class:`FTCConfig` field as a keyword.

    Passing loose parameters *alongside* ``config`` is deprecated: it warns,
    and if any loose value disagrees with the config it raises ``ValueError``
    (the one place the old ``max_faults``-vs-``config`` disagreement check now
    lives).
    """
    if variant is not None and not isinstance(variant, SchemeVariant):
        variant = SchemeVariant(variant)
    if config is not None:
        if not isinstance(config, FTCConfig):
            raise TypeError("config must be an FTCConfig, got %r"
                            % type(config).__name__)
        known = {field.name for field in dataclasses.fields(FTCConfig)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            # Same failure mode as the loose path's FTCConfig(**fields):
            # a typo'd keyword must be a TypeError, not an AttributeError
            # from the disagreement check below.
            raise TypeError("unknown FTCConfig field(s): %s" % ", ".join(unknown))
        legacy = dict(overrides)
        if max_faults is not None:
            legacy["max_faults"] = max_faults
        if variant is not None:
            legacy["variant"] = variant
        if random_seed is not None:
            legacy["random_seed"] = random_seed
        if legacy:
            warnings.warn(
                "passing %s alongside config= is deprecated; pass one "
                "FTCConfig (or only loose parameters) instead"
                % "/".join(sorted(legacy)),
                DeprecationWarning, stacklevel=3)
            disagreements = {name: value for name, value in legacy.items()
                             if getattr(config, name) != value}
            if disagreements:
                raise ValueError(
                    "explicit arguments disagree with config: "
                    + ", ".join("%s=%r vs config.%s=%r"
                                % (name, value, name, getattr(config, name))
                                for name, value in sorted(disagreements.items())))
        return config
    if max_faults is None:
        raise TypeError("either max_faults or config is required")
    fields = dict(overrides, max_faults=max_faults)
    if variant is not None:
        fields["variant"] = variant
    if random_seed is not None:
        fields["random_seed"] = random_seed
    return FTCConfig(**fields)


def resolve_build_executor(executor=None, jobs: int | None = None):
    """Normalize every entry point's ``executor=`` / ``jobs=`` onto one
    :class:`~repro.build.executors.BuildExecutor` — the construction-side
    sibling of :func:`resolve_ftc_config`.

    Accepts an executor instance, a spec string (``"serial"`` /
    ``"thread[:N]"`` / ``"process[:N]"``), or a bare ``jobs=N`` ("just
    parallelize": processes for ``N > 1``); with neither, the
    ``REPRO_BUILD_EXECUTOR`` environment variable decides and its absence
    means serial.  See :func:`repro.build.executors.resolve_executor` for the
    full precedence rules (imported lazily — configuration stays importable
    before the build package).
    """
    from repro.build.executors import resolve_executor

    return resolve_executor(executor, jobs)
