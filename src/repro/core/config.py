"""Configuration of the f-FTC labeling schemes (the rows of Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.hierarchy.config import NetAlgorithm, ThresholdRule


class SchemeVariant(Enum):
    """Which labeling scheme to build; each value matches a row of Table 1."""

    #: Deterministic, near-linear construction: NetFind hierarchy + Reed--Solomon
    #: outdetect.  Label size O(f^2 log^3 n) — the headline scheme of Theorem 1.
    DETERMINISTIC_NEARLINEAR = "det-nearlinear"

    #: Deterministic, polynomial construction: greedy-net hierarchy + Reed--Solomon
    #: outdetect (stands in for the MDG18-based O(f^2 log^2 n loglog n) variant).
    DETERMINISTIC_POLY = "det-poly"

    #: Randomized full-query-support scheme: sub-sampled hierarchy + Reed--Solomon
    #: outdetect.  Label size O(f log^3 n) — the third row contributed by the paper.
    RANDOMIZED_FULL = "rand-full"

    #: Dory--Parter second scheme with whp-per-query support: a single graph sketch.
    SKETCH_WHP = "sketch-whp"

    #: Dory--Parter second scheme upgraded to full query support (repetitions
    #: scaled by f).
    SKETCH_FULL = "sketch-full"

    @property
    def is_deterministic(self) -> bool:
        return self in (SchemeVariant.DETERMINISTIC_NEARLINEAR,
                        SchemeVariant.DETERMINISTIC_POLY)

    @property
    def uses_hierarchy(self) -> bool:
        return self in (SchemeVariant.DETERMINISTIC_NEARLINEAR,
                        SchemeVariant.DETERMINISTIC_POLY,
                        SchemeVariant.RANDOMIZED_FULL)


@dataclass(frozen=True)
class FTCConfig:
    """All knobs of a labeling-scheme construction.

    Attributes
    ----------
    max_faults:
        The fault budget ``f``.
    variant:
        Which Table-1 scheme to build.
    threshold_rule:
        PAPER (proven constants, larger labels) or PRACTICAL (heuristic
        constants with failure detection); only used by hierarchy variants.
    edge_id_mode:
        ``"compact"`` or ``"full"`` edge identifiers (see
        :mod:`repro.labeling.edge_ids`).
    adaptive_decoding:
        Whether outdetect decoding adapts to the actual cut size (Appendix B).
    random_seed:
        Seed for the randomized variants (sub-sampling / sketches).
    sketch_repetitions:
        Base number of sketch repetitions per level (scaled by ``f`` for the
        full-support sketch variant).
    """

    max_faults: int
    variant: SchemeVariant = SchemeVariant.DETERMINISTIC_NEARLINEAR
    threshold_rule: ThresholdRule = ThresholdRule.PAPER
    edge_id_mode: str = "compact"
    adaptive_decoding: bool = True
    random_seed: int = 0
    sketch_repetitions: int = 8

    def __post_init__(self):
        if self.max_faults < 1:
            raise ValueError("max_faults must be at least 1, got %d" % self.max_faults)

    @property
    def net_algorithm(self) -> NetAlgorithm:
        if self.variant is SchemeVariant.DETERMINISTIC_POLY:
            return NetAlgorithm.GREEDY
        return NetAlgorithm.NETFIND

    def effective_sketch_repetitions(self) -> int:
        if self.variant is SchemeVariant.SKETCH_FULL:
            return self.sketch_repetitions * max(self.max_faults, 1)
        return self.sketch_repetitions
