"""The shared oracle error hierarchy.

Every transport of the oracle contract (:mod:`repro.api`) signals failures
through one tree rooted at :class:`OracleError`, so callers programming
against the protocol catch one base class regardless of whether the labels
live in process, came from a snapshot, sit behind a TCP server, or fan out
to a worker pool:

* :class:`OracleError` — base of every oracle-level failure.
* :class:`TransportError` — the transport itself failed (connection refused,
  connection dropped mid-request, garbage on the wire, use after ``close()``).
* :class:`OracleClosedError` — the specific "use after ``close()``" case.
  Every transport that releases resources on ``close()`` (snapshot-backed,
  pooled, remote) raises it — or its :class:`TransportError` base — when a
  query arrives after the oracle was closed.
* :class:`~repro.core.query.QueryFailure` — a query could not be answered
  reliably (randomized sketch labels, heuristic thresholds); subclasses
  :class:`OracleError`.

Two builtin types deliberately stay builtin across all transports, because
callers and a decade of tests match on them: unknown vertices/edges raise
:class:`KeyError` and over-budget fault sets raise :class:`ValueError`.  The
remote transport maps the server's structured error codes onto subclasses
that inherit from *both* the builtin type and :class:`OracleError` (see
``Remote*`` in :mod:`repro.api`), so either idiom works.

This module is import-free on purpose: it sits below :mod:`repro.core` and
:mod:`repro.server` so both can share the hierarchy without cycles.
"""

from __future__ import annotations


class OracleError(Exception):
    """Base class of every oracle-level failure, across all transports."""


class TransportError(OracleError):
    """The transport failed: cannot connect, connection lost, or protocol
    garbage — as opposed to a well-formed answer that reports a query error."""


class OracleClosedError(TransportError):
    """A query reached an oracle after its ``close()`` released resources.

    Subclasses :class:`TransportError` so existing ``except TransportError``
    call sites (written against the remote transport's post-close behavior)
    keep working unchanged across every transport.
    """


class DeltaError(OracleError):
    """An ``FTCS-D`` delta artifact cannot be produced or applied.

    Raised by :mod:`repro.delta` when a delta is malformed, was built against
    a different base snapshot than the one it is being applied to, or when
    applying it does not reproduce the recorded target digest.  Every delta
    failure is fail-closed: either the reconstructed snapshot is byte-for-byte
    the recorded target, or this error is raised and nothing is written.
    """


__all__ = ["OracleError", "TransportError", "OracleClosedError", "DeltaError"]
