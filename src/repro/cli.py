"""Command-line interface for the f-FTC labeling scheme.

Three subcommands cover the typical workflow:

``stats``
    Build labels for a graph (edge-list file) and print label-size statistics.
``query``
    Build labels and answer one connectivity query under faults.
``audit``
    Build labels and audit a batch of random queries against BFS ground truth.

Edge-list format: one edge per line, two whitespace-separated vertex names
(everything is treated as a string identifier); lines starting with ``#`` are
ignored.

Examples
--------
::

    python -m repro.cli stats --edges network.txt --max-faults 2
    python -m repro.cli query --edges network.txt --max-faults 2 \\
        --source a --target d --fault a-b --fault c-d
    python -m repro.cli audit --edges network.txt --max-faults 2 --queries 200
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.graphs.graph import Graph
from repro.workloads.queries import audit_scheme, make_query_workload


def load_edge_list(path: str | Path) -> Graph:
    """Read a whitespace-separated edge list into a :class:`Graph`."""
    graph = Graph()
    text = Path(path).read_text()
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError("line %d of %s is not an edge: %r" % (line_number, path, line))
        graph.add_edge(parts[0], parts[1])
    return graph


def parse_fault(raw: str) -> tuple:
    """Parse ``u-v`` (or ``u,v``) into an edge tuple of string vertex names."""
    for separator in ("-", ","):
        if separator in raw:
            u, v = raw.split(separator, 1)
            return (u.strip(), v.strip())
    raise ValueError("fault %r is not of the form u-v" % raw)


def _build_labeling(args: argparse.Namespace) -> tuple[Graph, FTCLabeling]:
    graph = load_edge_list(args.edges)
    config = FTCConfig(max_faults=args.max_faults,
                       variant=SchemeVariant(args.variant),
                       random_seed=args.seed)
    return graph, FTCLabeling(graph, config)


def cmd_stats(args: argparse.Namespace) -> int:
    _, labeling = _build_labeling(args)
    stats = labeling.label_size_stats()
    print(json.dumps(stats, indent=2, default=str))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    graph, labeling = _build_labeling(args)
    faults = [parse_fault(raw) for raw in args.fault]
    for u, v in faults:
        if not graph.has_edge(u, v):
            print("error: fault edge %s-%s is not in the graph" % (u, v), file=sys.stderr)
            return 2
    answer = labeling.connected(args.source, args.target, faults)
    truth = graph.connected(args.source, args.target, removed=faults)
    print(json.dumps({
        "source": args.source,
        "target": args.target,
        "faults": ["%s-%s" % edge for edge in faults],
        "connected": answer,
        "ground_truth": truth,
    }, indent=2))
    return 0 if answer == truth else 1


def cmd_audit(args: argparse.Namespace) -> int:
    graph, labeling = _build_labeling(args)
    workload = make_query_workload(graph, num_queries=args.queries,
                                   max_faults=args.max_faults, seed=args.seed)
    report = audit_scheme(lambda s, t, faults: labeling.connected(s, t, faults), workload)
    print(json.dumps(report, indent=2))
    return 0 if report["wrong"] == 0 and report["failed"] == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="f-fault-tolerant connectivity labeling")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--edges", required=True, help="path to a whitespace edge-list file")
        sub.add_argument("--max-faults", type=int, default=2, help="fault budget f")
        sub.add_argument("--variant", default=SchemeVariant.DETERMINISTIC_NEARLINEAR.value,
                         choices=[variant.value for variant in SchemeVariant],
                         help="which Table-1 scheme to build")
        sub.add_argument("--seed", type=int, default=0, help="seed for randomized variants")

    stats_parser = subparsers.add_parser("stats", help="print label-size statistics")
    add_common(stats_parser)
    stats_parser.set_defaults(handler=cmd_stats)

    query_parser = subparsers.add_parser("query", help="answer one connectivity query")
    add_common(query_parser)
    query_parser.add_argument("--source", required=True)
    query_parser.add_argument("--target", required=True)
    query_parser.add_argument("--fault", action="append", default=[],
                              help="faulty edge as u-v (repeatable)")
    query_parser.set_defaults(handler=cmd_query)

    audit_parser = subparsers.add_parser("audit", help="audit random queries vs ground truth")
    add_common(audit_parser)
    audit_parser.add_argument("--queries", type=int, default=100)
    audit_parser.set_defaults(handler=cmd_audit)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
