"""Command-line interface for the f-FTC labeling scheme.

Every subcommand that answers queries programs against the oracle protocol of
:mod:`repro.api` — it never constructs a transport-specific oracle class,
rehydrates a snapshot, or opens a socket directly.  Transport selection is one flag: ``--oracle`` takes
a URI (``build:EDGELIST``, ``snapshot:PATH.ftcs``, ``pool:PATH.ftcs?workers=N``,
``tcp://HOST:PORT``) and
the legacy ``--edges`` / ``--snapshot`` flags are sugar for the first two.
Construction likewise goes through the one build facade of
:mod:`repro.build`: ``--jobs N`` (or a ``build:...?jobs=N`` URI) shards
label construction across N processes, byte-identical to a serial build;
on ``serve`` the flag instead bounds the session-building worker threads.

Twelve subcommands cover the typical workflow:

``stats``
    Build labels for a graph (edge-list file) and print label-size
    statistics; with ``--oracle`` print any transport's normalized
    ``OracleStats`` instead (``--prometheus`` renders them in Prometheus
    text exposition format).
``query``
    Build labels and answer one connectivity query under faults.
``batch-query``
    Fix one fault set and answer many ``(s, t)`` pairs through a shared
    batch session.  ``--oracle`` selects the transport; ``--snapshot``
    serves from a saved labeling (``--edges`` is then only needed for
    ``--check``), and ``tcp://`` URIs query a running server.
``audit``
    Audit a batch of random queries against BFS ground truth.  Accepts
    ``--snapshot`` to answer from a saved labeling (``--edges`` is still
    required: ground truth needs the graph).
``export-labels``
    Serialize every vertex and edge label to the versioned per-label byte
    format (hex-encoded JSON) so labels can be stored and shipped.
``save-labeling``
    Build labels once and write the whole labeling — config, field/codec
    parameters, per-level outdetect thresholds, every vertex and edge label —
    to one binary snapshot file (see below).
``load-labeling``
    Load a snapshot, rehydrate the decode-side oracle (no graph, no
    reconstruction), and print a summary.
``snapshot-upgrade``
    Rewrite a version-1 snapshot as version 2 — the page-aligned layout
    ``Oracle.load`` serves via ``mmap`` — with bit-identical answers.
``snapshot-diff``
    Write the versioned ``FTCS-D`` delta artifact that patches one snapshot
    into another (XOR patches over the label bytes plus add/remove records);
    the delta records the SHA-256 of both endpoints and is verified by
    re-applying it in memory before anything is written.
``snapshot-apply``
    Reconstruct the target snapshot from a base snapshot plus an ``FTCS-D``
    delta.  Fail-closed: a wrong base or a reconstruction that does not hash
    to the recorded target digest is an error and nothing is written.
``serve``
    Load a snapshot and serve ``connected`` / ``connected_many`` / ``stats``
    over the newline-JSON TCP protocol of :mod:`repro.server` to any number
    of concurrent clients (``--host/--port/--max-sessions``).  The server
    never constructs a labeling; requests sharing a fault set share one batch
    session.  On startup it prints one ``{"event": "serving", ...}`` JSON
    line with the bound address (``--port 0`` picks an ephemeral port).
    ``--metrics-port`` adds an HTTP sidecar serving ``GET /metrics``
    (Prometheus text, with per-op latency histograms) and ``GET /healthz``.
    ``--workers N`` serves from N processes sharing the port via
    ``SO_REUSEPORT`` (see :mod:`repro.pool`), each with its own sidecar.
``client-query``
    Connect to a running server and issue one request: a ``connected_many``
    batch built from ``--fault`` / ``--pair`` / ``--pairs-file`` (the
    default), ``--op stats`` / ``--op ping``, or ``--prometheus`` for the
    server's stats in Prometheus text format.

The ``query``, ``batch-query``, ``stats``, and ``client-query`` subcommands
accept ``--json``: the report is then printed as one compact line in the
protocol's response envelope (``{"ok": true, "result": ...}``), so scripted
callers see the same machine-readable format in process and over the wire.

Edge-list format: one edge per line, two whitespace-separated vertex names
(everything is treated as a string identifier); lines starting with ``#`` are
ignored.

Snapshot format (``FTCS``, versions 1 and 2)
--------------------------------------------

A snapshot is the self-contained shippable artifact the universal decoder
promises: 4-byte magic ``FTCS`` + a version byte, the ``FTCConfig`` fields,
the edge-id codec and GF(2^w) parameters, the outdetect descriptor (per-level
Reed--Solomon thresholds, or the sketch's levels/repetitions/seed), and every
vertex and edge label as the self-describing ``FTCL`` per-label blobs.  All
integers are LEB128 varints.  Version 2 (``snapshot-upgrade``) moves the
label blobs into a page-aligned region behind a per-label offset index, so
``Oracle.load`` serves the file through ``mmap`` without copying it.
``repro.core.snapshot`` documents the exact byte layouts; both versions
answer queries identically to the live scheme without ever seeing the graph.

Examples
--------
::

    python -m repro.cli stats --edges network.txt --max-faults 2
    python -m repro.cli query --edges network.txt --max-faults 2 \\
        --source a --target d --fault a-b --fault c-d
    python -m repro.cli batch-query --edges network.txt --max-faults 2 \\
        --fault a-b --pair a-d --pair b-c
    python -m repro.cli audit --edges network.txt --max-faults 2 --queries 200
    python -m repro.cli save-labeling --edges network.txt --max-faults 2 \\
        --output network.ftcs
    python -m repro.cli load-labeling --snapshot network.ftcs
    python -m repro.cli batch-query --oracle snapshot:network.ftcs \\
        --fault a-b --pair a-d --pair b-c
    python -m repro.cli serve --snapshot network.ftcs --port 7421
    python -m repro.cli batch-query --oracle tcp://127.0.0.1:7421 \\
        --fault a-b --pair a-d --json
    python -m repro.cli client-query --port 7421 --op stats --prometheus
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

from repro.api import (Oracle, RemoteOracleError, TransportError, open_oracle,
                       parse_build_query, parse_oracle_uri)
from repro.core.config import SchemeVariant
from repro.core.query import QueryFailure
from repro.core.serialize import LabelDecodeError
from repro.errors import DeltaError
from repro.graphs.graph import Graph, read_edge_list
from repro.server.protocol import dump_envelope, error_response, ok_response


def _print_report(payload: dict, as_json: bool) -> None:
    """Print a report: indented for humans, one envelope line with --json."""
    if as_json:
        print(dump_envelope(ok_response(payload)))
    else:
        print(json.dumps(payload, indent=2, default=str))


def load_edge_list(path: str | Path) -> Graph:
    """Read a whitespace-separated edge list into a :class:`Graph`."""
    return read_edge_list(path)


def parse_fault(raw: str) -> tuple:
    """Parse ``u-v`` (or ``u,v``) into an edge tuple of string vertex names."""
    for separator in ("-", ","):
        if separator in raw:
            u, v = raw.split(separator, 1)
            return (u.strip(), v.strip())
    raise ValueError("fault %r is not of the form u-v" % raw)


def read_pairs_file(path: str | Path) -> list:
    """Read a file of whitespace-separated ``s t`` pairs (``#`` comments ok)."""
    pairs = []
    text = Path(path).read_text()
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError("line %d of %s is not a vertex pair: %r"
                             % (line_number, path, line))
        pairs.append((parts[0], parts[1]))
    return pairs


def read_faults_file(path: str | Path) -> list:
    """Read a file with one fault set per line: whitespace-separated ``u-v``
    edges (``#`` comments ok).  A line of just ``-`` means the empty set."""
    fault_sets = []
    text = Path(path).read_text()
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped == "-":
            fault_sets.append([])
            continue
        try:
            fault_sets.append([parse_fault(token) for token in stripped.split()])
        except ValueError:
            raise ValueError("line %d of %s is not a fault set of u-v edges: %r"
                             % (line_number, path, line))
    return fault_sets


def _cli_executor(args: argparse.Namespace):
    """Resolve ``--jobs`` / URI executor options, or ``None`` after a CLI error.

    Flag mistakes (``--jobs 0``, ``?executor=bogus``, conflicting values) must
    print one ``error:`` line and exit 2 like every other CLI misuse — never
    escape as a traceback.
    """
    from repro.core.config import resolve_build_executor

    try:
        return resolve_build_executor(getattr(args, "build_executor", None),
                                      getattr(args, "jobs", None))
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return None


def _build_oracle(args: argparse.Namespace):
    """The "build" transport from the common construction flags.

    Returns ``(graph, oracle)``, or ``None`` after printing a CLI error.
    """
    executor = _cli_executor(args)
    if executor is None:
        return None
    graph = load_edge_list(args.edges)
    oracle = Oracle.build(graph, max_faults=args.max_faults,
                          variant=args.variant, random_seed=args.seed,
                          executor=executor)
    return graph, oracle


def _open_snapshot_or_report(path: str):
    """Load a snapshot file, printing a CLI error instead of a traceback."""
    try:
        return Oracle.load(path)
    except FileNotFoundError:
        print("error: snapshot file %r does not exist" % path, file=sys.stderr)
    except LabelDecodeError as error:
        print("error: %r is not a valid labeling snapshot: %s" % (path, error),
              file=sys.stderr)
    return None


def _fold_oracle_uri(args: argparse.Namespace) -> str | None:
    """Fold ``--oracle`` into the legacy flags; returns the kind or ``None``.

    ``snapshot:`` and ``build:`` URIs set ``args.snapshot`` / ``args.edges``
    so the existing membership-check flow runs unchanged; ``tcp`` is returned
    for the caller to branch on.  Prints the CLI error itself on a bad URI.
    """
    if not getattr(args, "oracle", None):
        return None
    try:
        kind, rest = parse_oracle_uri(args.oracle)
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return "error"
    if kind == "snapshot":
        if args.snapshot and args.snapshot != rest:
            print("error: --oracle %s conflicts with --snapshot %s"
                  % (args.oracle, args.snapshot), file=sys.stderr)
            return "error"
        args.snapshot = rest
    elif kind == "build":
        try:
            path, options = parse_build_query(rest)
        except ValueError as error:
            print("error: %s" % error, file=sys.stderr)
            return "error"
        if not _merge_uri_build_options(args, options):
            return "error"
        if path:
            if args.edges and args.edges != path:
                print("error: --oracle %s conflicts with --edges %s"
                      % (args.oracle, args.edges), file=sys.stderr)
                return "error"
            args.edges = path
        elif not args.edges:
            print("error: build: oracle URI needs an edge-list path", file=sys.stderr)
            return "error"
    return kind


def _merge_uri_build_options(args: argparse.Namespace, options: dict) -> bool:
    """Fold a ``build:`` URI's query options into the flags.

    One copy of the conflict rule for every subcommand: ``?jobs=N`` that
    disagrees with an explicit ``--jobs`` is a CLI error (printed here),
    agreement or absence folds the value in.
    """
    if "jobs" in options:
        if args.jobs is not None and args.jobs != options["jobs"]:
            print("error: --oracle %s conflicts with --jobs %d"
                  % (args.oracle, args.jobs), file=sys.stderr)
            return False
        args.jobs = options["jobs"]
    if "executor" in options:
        args.build_executor = options["executor"]
    return True


def _note_jobs_not_applicable(args: argparse.Namespace, why: str) -> None:
    """Tell the user an explicit ``--jobs`` is doing nothing on this path.

    Labels served from a snapshot or a server were already constructed, so a
    construction flag must not silently pretend to parallelize anything.
    """
    if getattr(args, "jobs", None) is not None:
        print("note: --jobs %d does not apply (%s)" % (args.jobs, why),
              file=sys.stderr)


def cmd_stats(args: argparse.Namespace) -> int:
    if args.oracle:
        try:
            kind, rest = parse_oracle_uri(args.oracle)
        except ValueError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        executor = None
        if kind == "build":
            try:
                _, options = parse_build_query(rest)
            except ValueError as error:
                print("error: %s" % error, file=sys.stderr)
                return 2
            if not _merge_uri_build_options(args, options):
                return 2
            executor = _cli_executor(args)
            if executor is None:
                return 2
        else:
            _note_jobs_not_applicable(args, "the %s transport serves "
                                            "already-constructed labels" % kind)
        try:
            oracle = open_oracle(args.oracle, max_faults=args.max_faults,
                                 variant=args.variant, random_seed=args.seed,
                                 executor=executor,
                                 jobs=args.jobs if kind == "build" else None)
        except (TransportError, FileNotFoundError, LabelDecodeError,
                ValueError) as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        try:
            with oracle:
                stats = oracle.stats()
                if args.prometheus:
                    print(stats.to_prometheus(), end="")
                else:
                    _print_report(stats.to_dict(), args.json)
            return 0
        except (TransportError, RemoteOracleError) as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
    if not args.edges:
        print("error: stats needs --edges or --oracle", file=sys.stderr)
        return 2
    built = _build_oracle(args)
    if built is None:
        return 2
    _, oracle = built
    if args.prometheus:
        print(oracle.stats().to_prometheus(), end="")
        return 0
    _print_report(oracle.label_size_stats(), args.json)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    built = _build_oracle(args)
    if built is None:
        return 2
    graph, oracle = built
    faults = [parse_fault(raw) for raw in args.fault]
    for u, v in faults:
        if not oracle.has_edge(u, v):
            print("error: fault edge %s-%s is not in the graph" % (u, v), file=sys.stderr)
            return 2
    answer = oracle.connected(args.source, args.target, faults)
    truth = oracle.connected_exact(args.source, args.target, faults)
    _print_report({
        "source": args.source,
        "target": args.target,
        "faults": ["%s-%s" % edge for edge in faults],
        "connected": answer,
        "ground_truth": truth,
    }, args.json)
    return 0 if answer == truth else 1


def _parse_query_args(args: argparse.Namespace) -> tuple | None:
    """``(faults, pairs)`` from the flags; prints the error on bad syntax.

    ``OSError`` covers an unreadable/missing ``--pairs-file`` — a CLI error,
    not a traceback.
    """
    try:
        faults = [parse_fault(raw) for raw in args.fault]
        pairs = [parse_fault(raw) for raw in args.pair]
        if args.pairs_file:
            pairs.extend(read_pairs_file(args.pairs_file))
    except (ValueError, OSError) as error:
        print("error: %s" % error, file=sys.stderr)
        return None
    return faults, pairs


def _batch_report(source: str, faults: list, pairs: list, answers: list) -> dict:
    return {
        "labels": source,
        "faults": ["%s-%s" % edge for edge in faults],
        "num_pairs": len(pairs),
        "results": [{"source": s, "target": t, "connected": answer}
                    for (s, t), answer in zip(pairs, answers)],
    }


def _attach_session_structure(report: dict, answerer, faults: list) -> None:
    """Best-effort decomposition structure (uniform across transports)."""
    try:
        session = answerer.batch_session(faults)
    except QueryFailure:
        # Randomized / heuristic labels: the answers above came from the
        # per-query fallback, so session statistics are unavailable.
        report["batched"] = False
    else:
        report["batched"] = True
        report["num_fragments"] = session.num_fragments()
        report["num_components"] = session.num_components()


def _cmd_batch_query_remote(args: argparse.Namespace) -> int:
    """The ``tcp://`` and ``pool:`` transports of ``batch-query``: queries
    fan out to the server / worker pool, and membership problems come back
    as structured errors rather than local pre-checks."""
    kind, _ = parse_oracle_uri(args.oracle)
    _note_jobs_not_applicable(args, "the server already holds its labels"
                              if kind == "tcp"
                              else "the pool serves already-constructed labels")
    if args.faults_file:
        print("error: --faults-file needs a local transport (the %s builds "
              "and caches its own sessions); send one fault set per request"
              % ("server" if kind == "tcp" else "pool"), file=sys.stderr)
        return 2
    if args.random_pairs:
        print("error: --random-pairs needs a local transport; sample pairs "
              "locally instead", file=sys.stderr)
        return 2
    graph = load_edge_list(args.edges) if args.edges else None
    if args.check and graph is None:
        print("error: --check compares against BFS ground truth and needs --edges",
              file=sys.stderr)
        return 2
    parsed = _parse_query_args(args)
    if parsed is None:
        return 2
    faults, pairs = parsed
    if not pairs:
        print("error: no query pairs given (use --pair / --pairs-file)",
              file=sys.stderr)
        return 2
    try:
        oracle = open_oracle(args.oracle, timeout=args.timeout) \
            if kind == "tcp" else open_oracle(args.oracle)
    except (TransportError, FileNotFoundError, LabelDecodeError,
            ValueError) as error:
        # ValueError: a scheme-valid but malformed URI (e.g. tcp:// without
        # a port) must be a clean CLI error, not a traceback; the file
        # errors cover a pool: path that is missing or corrupt.
        print("error: %s" % error, file=sys.stderr)
        return 2
    try:
        with oracle:
            answers = oracle.connected_many(pairs, faults)
            report = _batch_report("server" if kind == "tcp" else "pool",
                                   faults, pairs, answers)
            _attach_session_structure(report, oracle, faults)
    except RemoteOracleError as error:
        if args.json:
            print(dump_envelope(error_response(error.code, error.message)))
        else:
            print("error: server refused the request: %s" % error, file=sys.stderr)
        return 2
    except TransportError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    except (KeyError, ValueError) as error:
        # The pool's workers validate membership and fault budgets; their
        # exceptions surface here instead of as wire errors.
        print("error: %s" % error, file=sys.stderr)
        return 2
    exit_code = 0
    if args.check:
        truth = [graph.connected(s, t, removed=faults) for s, t in pairs]
        mismatches = sum(1 for answer, expected in zip(answers, truth)
                         if answer != expected)
        report["ground_truth_mismatches"] = mismatches
        exit_code = 0 if mismatches == 0 else 1
    _print_report(report, args.json)
    return exit_code


def _answer_fault_sets(args: argparse.Namespace, answerer, source: str,
                       graph, fault_sets: list, pairs: list) -> int:
    """The ``--faults-file`` path of ``batch-query``: sessions for every
    distinct fault set are constructed up front — fanned out across
    ``--jobs`` workers — then the shared pair list is answered under each
    set (a pure cache hit by then)."""
    try:
        answerer.build_sessions(fault_sets, jobs=args.jobs)
        batches = [answerer.connected_many(pairs, faults)
                   for faults in fault_sets]
    except LabelDecodeError as error:
        print("error: snapshot label data is corrupt: %s" % error, file=sys.stderr)
        return 2
    except ValueError as error:
        # Typically: more distinct faults than the scheme's budget f.
        print("error: %s" % error, file=sys.stderr)
        return 2
    entries = []
    for faults, answers in zip(fault_sets, batches):
        entry = _batch_report(source, faults, pairs, answers)
        del entry["labels"]  # hoisted to the envelope; identical for all sets
        entries.append(entry)
    report = {
        "labels": source,
        "num_fault_sets": len(fault_sets),
        "num_pairs": len(pairs),
        "session_jobs": args.jobs if args.jobs is not None else 1,
        "batches": entries,
    }
    exit_code = 0
    if args.check:
        mismatches = 0
        for faults, answers in zip(fault_sets, batches):
            truth = [graph.connected(s, t, removed=faults) for s, t in pairs]
            mismatches += sum(1 for answer, expected in zip(answers, truth)
                              if answer != expected)
        report["ground_truth_mismatches"] = mismatches
        exit_code = 0 if mismatches == 0 else 1
    _print_report(report, args.json)
    return exit_code


def cmd_batch_query(args: argparse.Namespace) -> int:
    kind = _fold_oracle_uri(args)
    if kind == "error":
        return 2
    if kind in ("tcp", "pool"):
        return _cmd_batch_query_remote(args)
    graph = load_edge_list(args.edges) if args.edges else None
    if args.faults_file and args.fault:
        print("error: --faults-file and --fault are mutually exclusive "
              "(put every fault set in the file)", file=sys.stderr)
        return 2
    if args.snapshot:
        # Serve from a saved labeling: no graph access, no reconstruction.
        # With --faults-file, --jobs applies to *session* construction below.
        if not args.faults_file:
            _note_jobs_not_applicable(args, "the snapshot serves "
                                            "already-constructed labels")
        answerer = _open_snapshot_or_report(args.snapshot)
        if answerer is None:
            return 2
        source = "snapshot"
    else:
        if graph is None:
            print("error: batch-query needs --edges, --snapshot, or --oracle",
                  file=sys.stderr)
            return 2
        executor = _cli_executor(args)
        if executor is None:
            return 2
        answerer = Oracle.build(graph, max_faults=args.max_faults,
                                variant=args.variant, random_seed=args.seed,
                                executor=executor)
        source = "constructed"
    if args.check and graph is None:
        print("error: --check compares against BFS ground truth and needs --edges",
              file=sys.stderr)
        return 2
    # Faults and pairs must exist everywhere they are used: in the snapshot
    # (which answers) and in the graph (which checks) — with both given, a
    # stale artifact must be reported, not crash with a KeyError.
    memberships = []
    if graph is not None:
        memberships.append(("graph", graph))
    if args.snapshot:
        memberships.append(("snapshot", answerer))
    parsed = _parse_query_args(args)
    if parsed is None:
        return 2
    faults, pairs = parsed
    fault_sets = None
    if args.faults_file:
        try:
            fault_sets = read_faults_file(args.faults_file)
        except (ValueError, OSError) as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        if not fault_sets:
            print("error: %s contains no fault sets" % args.faults_file,
                  file=sys.stderr)
            return 2
    all_fault_edges = faults if fault_sets is None else \
        [edge for fault_set in fault_sets for edge in fault_set]
    for u, v in all_fault_edges:
        for name, membership in memberships:
            if not membership.has_edge(u, v):
                print("error: fault edge %s-%s is not in the %s" % (u, v, name),
                      file=sys.stderr)
                return 2
    if args.random_pairs:
        rng = random.Random(args.seed)
        vertices = sorted(answerer.vertices() if args.snapshot else graph.vertices())
        pairs.extend(tuple(rng.sample(vertices, 2)) for _ in range(args.random_pairs))
    if not pairs:
        print("error: no query pairs given (use --pair / --pairs-file / --random-pairs)",
              file=sys.stderr)
        return 2
    for s, t in pairs:
        for vertex in (s, t):
            for name, membership in memberships:
                if not membership.has_vertex(vertex):
                    print("error: vertex %r is not in the %s" % (vertex, name),
                          file=sys.stderr)
                    return 2
    if fault_sets is not None:
        return _answer_fault_sets(args, answerer, source, graph, fault_sets, pairs)
    try:
        answers = answerer.connected_many(pairs, faults)
    except LabelDecodeError as error:
        # Lazily decoded label payloads surface corruption at first use.
        print("error: snapshot label data is corrupt: %s" % error, file=sys.stderr)
        return 2
    except ValueError as error:
        # Typically: more distinct faults than the scheme's budget f.
        print("error: %s" % error, file=sys.stderr)
        return 2
    report = _batch_report(source, faults, pairs, answers)
    _attach_session_structure(report, answerer, faults)
    exit_code = 0
    if args.check:
        truth = [graph.connected(s, t, removed=faults) for s, t in pairs]
        mismatches = sum(1 for answer, expected in zip(answers, truth)
                         if answer != expected)
        report["ground_truth_mismatches"] = mismatches
        exit_code = 0 if mismatches == 0 else 1
    _print_report(report, args.json)
    return exit_code


def cmd_export_labels(args: argparse.Namespace) -> int:
    built = _build_oracle(args)
    if built is None:
        return 2
    graph, oracle = built
    payload = {
        "format": "ftc-labels",
        "max_faults": args.max_faults,
        "variant": args.variant,
        "vertex_labels": {str(vertex): oracle.vertex_label(vertex).to_bytes().hex()
                          for vertex in graph.vertices()},
        # A list with explicit endpoints: vertex names may themselves contain
        # separator characters, so "u-v" strings would be ambiguous.
        "edge_labels": [{"u": u, "v": v,
                         "label": oracle.edge_label(u, v).to_bytes().hex()}
                        for u, v in graph.edges()],
    }
    text = json.dumps(payload, indent=2)
    if args.output:
        Path(args.output).write_text(text)
        print(json.dumps({"written": args.output,
                          "vertex_labels": len(payload["vertex_labels"]),
                          "edge_labels": len(payload["edge_labels"])}, indent=2))
    else:
        print(text)
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.workloads.queries import audit_scheme, make_query_workload

    # Ground truth is BFS on the graph, so --edges stays required; --snapshot
    # only replaces where the *answers* come from (no reconstruction).
    graph = load_edge_list(args.edges)
    if args.snapshot:
        _note_jobs_not_applicable(args, "the snapshot serves "
                                        "already-constructed labels")
        answerer = _open_snapshot_or_report(args.snapshot)
        if answerer is None:
            return 2
        # The workload samples arbitrary graph vertices and edges, so a graph
        # that outgrew the snapshot must be reported up front, not surface as
        # KeyErrors mid-audit.
        for vertex in graph.vertices():
            if not answerer.has_vertex(vertex):
                print("error: vertex %r of the graph is not in the snapshot "
                      "(stale snapshot?)" % (vertex,), file=sys.stderr)
                return 2
        for u, v in graph.edges():
            if not answerer.has_edge(u, v):
                print("error: edge %s-%s of the graph is not in the snapshot "
                      "(stale snapshot?)" % (u, v), file=sys.stderr)
                return 2
        max_faults = answerer.max_faults
        # The snapshot fixes the scheme; construction flags do not apply.
        if args.max_faults != max_faults:
            print("note: auditing with the snapshot's fault budget f=%d "
                  "(--max-faults %d does not apply in snapshot mode)"
                  % (max_faults, args.max_faults), file=sys.stderr)
    else:
        executor = _cli_executor(args)
        if executor is None:
            return 2
        answerer = Oracle.build(graph, max_faults=args.max_faults,
                                variant=args.variant, random_seed=args.seed,
                                executor=executor)
        max_faults = args.max_faults
    workload = make_query_workload(graph, num_queries=args.queries,
                                   max_faults=max_faults, seed=args.seed)
    try:
        report = audit_scheme(lambda s, t, faults: answerer.connected(s, t, faults),
                              workload)
    except LabelDecodeError as error:
        print("error: snapshot label data is corrupt: %s" % error, file=sys.stderr)
        return 2
    report["labels"] = "snapshot" if args.snapshot else "constructed"
    print(json.dumps(report, indent=2))
    return 0 if report["wrong"] == 0 and report["failed"] == 0 else 1


def cmd_save_labeling(args: argparse.Namespace) -> int:
    built = _build_oracle(args)
    if built is None:
        return 2
    graph, oracle = built
    byte_count = oracle.save(args.output)
    print(json.dumps({
        "written": args.output,
        "bytes": byte_count,
        "vertex_labels": graph.num_vertices(),
        "edge_labels": graph.num_edges(),
        "variant": args.variant,
        "max_faults": args.max_faults,
        "construction_seconds": oracle.construction_seconds,
        "build_report": oracle.build_report.to_dict(),
    }, indent=2))
    return 0


def cmd_load_labeling(args: argparse.Namespace) -> int:
    # The lazy path: the summary needs structure and counts, never the
    # decoded label payloads.
    oracle = _open_snapshot_or_report(args.snapshot)
    if oracle is None:
        return 2
    summary = oracle.snapshot.describe()
    summary["snapshot"] = args.snapshot
    summary["bytes"] = Path(args.snapshot).stat().st_size
    summary["rehydrated_vertices"] = oracle.num_vertices()
    print(json.dumps(summary, indent=2))
    return 0


def cmd_snapshot_upgrade(args: argparse.Namespace) -> int:
    from repro.api import upgrade_snapshot

    try:
        report = upgrade_snapshot(args.snapshot, args.output)
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    except LabelDecodeError as error:
        print("error: not a loadable FTCS snapshot: %s" % error, file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2))
    return 0


def cmd_snapshot_diff(args: argparse.Namespace) -> int:
    from repro.api import diff_snapshots

    try:
        report = diff_snapshots(args.base, args.target, args.output)
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    except LabelDecodeError as error:
        print("error: not a loadable FTCS snapshot: %s" % error, file=sys.stderr)
        return 2
    except DeltaError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2))
    return 0


def cmd_snapshot_apply(args: argparse.Namespace) -> int:
    from repro.api import apply_delta

    try:
        report = apply_delta(args.base, args.delta, args.output)
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    except LabelDecodeError as error:
        print("error: not a loadable FTCS snapshot: %s" % error, file=sys.stderr)
        return 2
    except DeltaError as error:
        # Wrong base, corrupt delta, or a reconstruction that failed digest
        # verification: fail-closed means nothing was written.
        print("error: %s" % error, file=sys.stderr)
        return 2
    print(json.dumps(report, indent=2))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.pool.prewarm import hot_keys_path

    if args.max_sessions < 1:
        print("error: --max-sessions must be at least 1", file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    if args.metrics_port is not None and args.metrics_port < 0:
        print("error: --metrics-port must be non-negative", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.rewarm_interval is not None and args.rewarm_interval <= 0:
        print("error: --rewarm-interval must be positive", file=sys.stderr)
        return 2

    def announce(event: dict) -> None:
        event["snapshot"] = args.snapshot
        print(json.dumps(event), flush=True)

    if args.workers is not None:
        # Fleet mode: the parent only reserves the port; each worker process
        # loads the snapshot itself (one shared page-cached copy when the
        # artifact is version 2).
        from repro.pool import run_pooled_server

        try:
            return run_pooled_server(args.snapshot, host=args.host,
                                     port=args.port, workers=args.workers,
                                     max_sessions=args.max_sessions,
                                     max_request_bytes=args.max_request_bytes,
                                     jobs=args.jobs,
                                     metrics_port=args.metrics_port,
                                     announce=announce,
                                     reload_token=args.reload_token,
                                     rewarm_interval=args.rewarm_interval)
        except FileNotFoundError:
            print("error: snapshot file not found: %s" % args.snapshot,
                  file=sys.stderr)
            return 2
        except (OSError, TransportError) as error:
            print("error: cannot serve on %s:%d: %s" % (args.host, args.port,
                                                        error), file=sys.stderr)
            return 2

    from repro.server.server import run_server

    # The whole point of the server: load an artifact, never construct.
    oracle = _open_snapshot_or_report(args.snapshot)
    if oracle is None:
        return 2
    try:
        return run_server(oracle, host=args.host, port=args.port,
                          max_sessions=args.max_sessions,
                          max_request_bytes=args.max_request_bytes,
                          jobs=args.jobs,
                          metrics_port=args.metrics_port,
                          announce=announce,
                          hot_keys_file=hot_keys_path(args.snapshot),
                          snapshot_path=args.snapshot,
                          reload_token=args.reload_token,
                          rewarm_interval=args.rewarm_interval)
    except OSError as error:  # e.g. port already in use
        print("error: cannot serve on %s:%d: %s" % (args.host, args.port, error),
              file=sys.stderr)
        return 2


def cmd_client_query(args: argparse.Namespace) -> int:
    if args.prometheus:
        # Prometheus output is a stats rendering; the flag implies the op.
        args.op = "stats"
    try:
        oracle = Oracle.connect(args.host, args.port, timeout=args.timeout)
    except TransportError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    try:
        with oracle:
            if args.op == "ping":
                _print_report(oracle.ping(), args.json)
                return 0
            if args.op == "stats":
                if args.prometheus:
                    print(oracle.stats().to_prometheus(), end="")
                else:
                    _print_report(oracle.server_stats(), args.json)
                return 0
            parsed = _parse_query_args(args)
            if parsed is None:
                return 2
            faults, pairs = parsed
            if not pairs:
                print("error: no query pairs given (use --pair / --pairs-file)",
                      file=sys.stderr)
                return 2
            answers = oracle.connected_many(pairs, faults)
            _print_report(_batch_report("server", faults, pairs, answers), args.json)
            return 0
    except RemoteOracleError as error:
        if args.json:
            print(dump_envelope(error_response(error.code, error.message)))
        else:
            print("error: server refused the request: %s" % error, file=sys.stderr)
        return 2
    except TransportError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


def cmd_lint(args: argparse.Namespace) -> int:
    # Deferred import: the analysis engine is pure stdlib, but no other
    # subcommand needs it and the CLI should stay cheap to start.
    from repro.analysis.engine import main as analysis_main

    forwarded: list[str] = []
    if args.root:
        forwarded += ["--root", args.root]
    forwarded += ["--format", args.format]
    if args.rules:
        forwarded += ["--rules", args.rules]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.no_baseline:
        forwarded.append("--no-baseline")
    if args.write_baseline:
        forwarded.append("--write-baseline")
    if args.list_rules:
        forwarded.append("--list-rules")
    forwarded += args.paths
    return analysis_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description="f-fault-tolerant connectivity labeling")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser, edges_required: bool = True) -> None:
        sub.add_argument("--edges", required=edges_required, default=None,
                         help="path to a whitespace edge-list file")
        sub.add_argument("--max-faults", type=int, default=2, help="fault budget f")
        sub.add_argument("--variant", default=SchemeVariant.DETERMINISTIC_NEARLINEAR.value,
                         choices=[variant.value for variant in SchemeVariant],
                         help="which Table-1 scheme to build")
        sub.add_argument("--seed", type=int, default=0, help="seed for randomized variants")
        sub.add_argument("--jobs", type=int, default=None,
                         help="shard label construction across N workers "
                              "(N > 1 uses the multiprocessing executor of "
                              "repro.build; results are byte-identical to a "
                              "serial build)")

    def add_json_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--json", action="store_true",
                         help="print one compact machine-readable line in the "
                              "protocol envelope ({\"ok\": true, \"result\": ...})")

    def add_oracle_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--oracle", default=None, metavar="URI",
                         help="oracle transport URI: build:EDGELIST, "
                              "snapshot:PATH.ftcs, or tcp://HOST:PORT "
                              "(--edges/--snapshot are sugar for the first two)")

    stats_parser = subparsers.add_parser("stats", help="print label-size statistics")
    add_common(stats_parser, edges_required=False)
    add_json_flag(stats_parser)
    add_oracle_flag(stats_parser)
    stats_parser.add_argument("--prometheus", action="store_true",
                              help="print the oracle's stats in Prometheus "
                                   "text exposition format")
    stats_parser.set_defaults(handler=cmd_stats)

    query_parser = subparsers.add_parser("query", help="answer one connectivity query")
    add_common(query_parser)
    add_json_flag(query_parser)
    query_parser.add_argument("--source", required=True)
    query_parser.add_argument("--target", required=True)
    query_parser.add_argument("--fault", action="append", default=[],
                              help="faulty edge as u-v (repeatable)")
    query_parser.set_defaults(handler=cmd_query)

    batch_parser = subparsers.add_parser(
        "batch-query", help="answer many (s, t) pairs against one shared fault set")
    add_common(batch_parser, edges_required=False)
    add_oracle_flag(batch_parser)
    batch_parser.add_argument("--snapshot", default=None,
                              help="serve queries from this saved labeling snapshot "
                                   "instead of rebuilding (--edges then only needed "
                                   "for --check)")
    batch_parser.add_argument("--fault", action="append", default=[],
                              help="faulty edge as u-v (repeatable, shared by all pairs)")
    batch_parser.add_argument("--faults-file", default=None,
                              help="file with one fault set per line (whitespace-"
                                   "separated u-v edges; '#' comments); the pair "
                                   "list is answered under each fault set, with "
                                   "sessions built up front — --jobs N constructs "
                                   "them across N workers")
    batch_parser.add_argument("--pair", action="append", default=[],
                              help="query pair as s-t (repeatable)")
    batch_parser.add_argument("--pairs-file", default=None,
                              help="file with one whitespace-separated s t pair per line")
    batch_parser.add_argument("--random-pairs", type=int, default=0,
                              help="additionally sample this many random pairs")
    batch_parser.add_argument("--check", action="store_true",
                              help="compare every answer against BFS ground truth")
    batch_parser.add_argument("--timeout", type=float, default=30.0,
                              help="socket timeout in seconds (tcp:// oracles)")
    add_json_flag(batch_parser)
    batch_parser.set_defaults(handler=cmd_batch_query)

    audit_parser = subparsers.add_parser("audit", help="audit random queries vs ground truth")
    add_common(audit_parser)
    audit_parser.add_argument("--queries", type=int, default=100)
    audit_parser.add_argument("--snapshot", default=None,
                              help="answer from this saved labeling snapshot instead "
                                   "of rebuilding; --edges still supplies ground "
                                   "truth, and the snapshot's stored config "
                                   "overrides --max-faults/--variant")
    audit_parser.set_defaults(handler=cmd_audit)

    export_parser = subparsers.add_parser(
        "export-labels", help="serialize all labels to the versioned byte format")
    add_common(export_parser)
    export_parser.add_argument("--output", default=None,
                               help="write the JSON payload here instead of stdout")
    export_parser.set_defaults(handler=cmd_export_labels)

    save_parser = subparsers.add_parser(
        "save-labeling", help="build labels once and write one FTCS snapshot file")
    add_common(save_parser)
    save_parser.add_argument("--output", required=True,
                             help="path of the snapshot file to write")
    save_parser.set_defaults(handler=cmd_save_labeling)

    load_parser = subparsers.add_parser(
        "load-labeling", help="rehydrate a snapshot (no rebuild) and print a summary")
    load_parser.add_argument("--snapshot", required=True,
                             help="path of the snapshot file to load")
    load_parser.set_defaults(handler=cmd_load_labeling)

    upgrade_parser = subparsers.add_parser(
        "snapshot-upgrade",
        help="rewrite a v1 FTCS snapshot as v2 (the mmap page-aligned layout)")
    upgrade_parser.add_argument("--snapshot", required=True,
                                help="source snapshot (version 1 or 2)")
    upgrade_parser.add_argument("--output", required=True,
                                help="path of the version-2 snapshot to write")
    upgrade_parser.set_defaults(handler=cmd_snapshot_upgrade)

    diff_parser = subparsers.add_parser(
        "snapshot-diff",
        help="write the FTCS-D delta that patches one snapshot into another")
    diff_parser.add_argument("--base", required=True,
                             help="base snapshot (the one deployed readers hold)")
    diff_parser.add_argument("--target", required=True,
                             help="target snapshot the delta reconstructs")
    diff_parser.add_argument("--output", required=True,
                             help="path of the FTCS-D delta file to write")
    diff_parser.set_defaults(handler=cmd_snapshot_diff)

    apply_parser = subparsers.add_parser(
        "snapshot-apply",
        help="reconstruct a target snapshot from base + FTCS-D delta "
             "(digest-verified, fail-closed)")
    apply_parser.add_argument("--base", required=True,
                              help="base snapshot the delta was diffed against")
    apply_parser.add_argument("--delta", required=True,
                              help="FTCS-D delta file from snapshot-diff")
    apply_parser.add_argument("--output", required=True,
                              help="path of the reconstructed snapshot to write")
    apply_parser.set_defaults(handler=cmd_snapshot_apply)

    serve_parser = subparsers.add_parser(
        "serve", help="serve a snapshot's oracle over the newline-JSON TCP protocol")
    serve_parser.add_argument("--snapshot", required=True,
                              help="FTCS snapshot to load at startup (the server "
                                   "never constructs a labeling)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7421,
                              help="TCP port (0 picks an ephemeral port, "
                                   "reported in the startup line)")
    serve_parser.add_argument("--max-sessions", type=int, default=32,
                              help="batch sessions kept alive in the LRU "
                                   "(one per concurrent fault set)")
    serve_parser.add_argument("--max-request-bytes", type=int,
                              default=1 << 20,
                              help="cap on one request line; longer lines get a "
                                   "structured oversized-request error")
    serve_parser.add_argument("--jobs", type=int, default=None,
                              help="worker threads building batch sessions "
                                   "(default: the executor's own sizing)")
    serve_parser.add_argument("--metrics-port", type=int, default=None,
                              help="also serve GET /metrics (Prometheus text) "
                                   "and GET /healthz on this HTTP port "
                                   "(0 picks an ephemeral port, reported in "
                                   "the startup line; default: disabled; with "
                                   "--workers, worker i uses this port + i, "
                                   "or 0 gives every worker an ephemeral port)")
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="serve from this many processes sharing the "
                                   "port via SO_REUSEPORT (default: one "
                                   "in-process server)")
    serve_parser.add_argument("--reload-token", default=None,
                              help="enable the authenticated 'reload' wire op "
                                   "with this shared secret (SIGHUP reloads "
                                   "always work; default: wire op disabled)")
    serve_parser.add_argument("--rewarm-interval", type=float, default=None,
                              help="re-warm the hottest live fault-set "
                                   "sessions every this many seconds "
                                   "(default: only at startup and after a "
                                   "reload)")
    serve_parser.set_defaults(handler=cmd_serve)

    client_parser = subparsers.add_parser(
        "client-query", help="query a running server (connected_many/stats/ping)")
    client_parser.add_argument("--host", default="127.0.0.1")
    client_parser.add_argument("--port", type=int, required=True)
    client_parser.add_argument("--op", default="connected-many",
                               choices=["connected-many", "stats", "ping"],
                               help="request type (default: connected-many)")
    client_parser.add_argument("--fault", action="append", default=[],
                               help="faulty edge as u-v (repeatable, shared by all pairs)")
    client_parser.add_argument("--pair", action="append", default=[],
                               help="query pair as s-t (repeatable)")
    client_parser.add_argument("--pairs-file", default=None,
                               help="file with one whitespace-separated s t pair per line")
    client_parser.add_argument("--timeout", type=float, default=30.0,
                               help="socket timeout in seconds")
    client_parser.add_argument("--prometheus", action="store_true",
                               help="print the server's stats in Prometheus text "
                                    "exposition format (implies --op stats)")
    add_json_flag(client_parser)
    client_parser.set_defaults(handler=cmd_client_query)

    lint_parser = subparsers.add_parser(
        "lint", help="run the repo's AST invariant linter (repro.analysis)")
    lint_parser.add_argument("paths", nargs="*",
                             help="specific files to analyze (default: all of "
                                  "src/repro and benchmarks)")
    lint_parser.add_argument("--root", default="",
                             help="repository root (default: auto-detect)")
    lint_parser.add_argument("--format", choices=["text", "json"],
                             default="text", help="output format")
    lint_parser.add_argument("--rules", default="",
                             help="comma-separated rule codes (default: all)")
    lint_parser.add_argument("--baseline", default="",
                             help="baseline file (default: "
                                  "<root>/analysis-baseline.json)")
    lint_parser.add_argument("--no-baseline", action="store_true",
                             help="ignore any baseline; every finding is new")
    lint_parser.add_argument("--write-baseline", action="store_true",
                             help="record current findings as the baseline")
    lint_parser.add_argument("--list-rules", action="store_true",
                             help="list rule codes and exit")
    lint_parser.set_defaults(handler=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
