"""``repro.build`` — one build contract, pluggable execution strategies.

Mirror of the :mod:`repro.api` facade for the *construction* side: where the
oracle protocol gave queries one contract with three transports, this package
gives label construction one staged plan (:class:`BuildPlan`) with three
conforming executors — :class:`SerialExecutor` (the default),
:class:`ThreadExecutor`, and :class:`ProcessExecutor` (the multiprocessing
fan-out of the independent per-level outdetect builds).  All three produce
**byte-identical** labelings; executors only change how fast the shards run.

Every build entry point funnels through :func:`build_labeling`::

    from repro.build import build_labeling

    labeling = build_labeling(graph, max_faults=3, jobs=4)
    print(labeling.build_report.to_dict())

or equivalently through the higher facades — ``Oracle.build(graph, ...,
jobs=4)``, ``open_oracle("build:edges.txt?jobs=4")``, and the CLI's
``--jobs`` flag — which all resolve executors through
:func:`repro.core.config.resolve_build_executor`.  Setting
``REPRO_BUILD_EXECUTOR=process`` (mirroring ``REPRO_GF2_BACKEND``) switches
whole runs without touching call sites.
"""

from __future__ import annotations

from typing import Any

from repro.build.executors import (EXECUTOR_ENV_VAR, EXECUTOR_NAMES,
                                   BuildExecutor, ProcessExecutor,
                                   SerialExecutor, ThreadExecutor,
                                   available_executors, resolve_executor)
from repro.build.plan import STAGES, BuildPlan, BuildReport, BuildResult


def build_labeling(graph: Any, config: Any = None, *,
                   max_faults: int | None = None, variant: Any = None,
                   random_seed: int | None = None, root: Any = None,
                   executor: Any = None, jobs: int | None = None,
                   **overrides: Any) -> Any:
    """Build an :class:`~repro.core.ftc.FTCLabeling` — the one build facade.

    Construction parameters are normalized through
    :func:`~repro.core.config.resolve_ftc_config` (pass ``config=`` or loose
    parameters, not both); ``executor`` / ``jobs`` select the execution
    strategy via :func:`~repro.build.executors.resolve_executor`.  The
    returned labeling carries the :class:`BuildReport` as
    ``labeling.build_report``.
    """
    from repro.core.config import resolve_ftc_config
    from repro.core.ftc import FTCLabeling

    resolved = resolve_ftc_config(max_faults=max_faults, config=config,
                                  variant=variant, random_seed=random_seed,
                                  **overrides)
    return FTCLabeling(graph, resolved, root=root,
                       executor=resolve_executor(executor, jobs))


__all__ = [
    "BuildExecutor",
    "BuildPlan",
    "BuildReport",
    "BuildResult",
    "EXECUTOR_ENV_VAR",
    "EXECUTOR_NAMES",
    "ProcessExecutor",
    "SerialExecutor",
    "STAGES",
    "ThreadExecutor",
    "available_executors",
    "build_labeling",
    "resolve_executor",
]
