"""The staged construction plan behind every labeling build.

:class:`BuildPlan` decomposes what used to be a monolithic
``FTCLabeling.__init__`` into four explicit stages:

``spanning``
    Root a spanning tree and build the transformed instance (G', T', sigma,
    ancestry labels, edge identifiers) — Section 5, steps 1 and 4.
``hierarchy``
    Build the sparsification hierarchy (deterministic or randomized), or
    fix the sketch geometry for the Dory--Parter baselines.
``outdetect``
    Build every per-level outdetect label matrix.  This is the parallel
    stage: the per-level Reed--Solomon builds are independent by
    construction, and within a level (and within the single sketch) the
    edge set is further split into XOR-mergeable shards, so a
    :class:`~repro.build.executors.BuildExecutor` can fan the shard tasks
    out to threads or processes.  Results are merged back in deterministic
    order, so the labels are bit-identical to a serial build.
``assembly``
    Ancestry labels and the tree-edge scheme (subtree XOR sums) — the
    sequential wrap-up that consumes the outdetect labels.

:meth:`BuildPlan.run` returns a :class:`BuildResult` carrying the built
pieces plus a :class:`BuildReport` (per-stage wall time and peak memory,
shard counts, executor name) — the observability the ROADMAP's "shard label
construction" item asked for.  Peak memory comes from
:class:`repro.obs.memory.PeakMemoryMeter`: exact per-stage peaks when the
caller has ``tracemalloc`` tracing enabled, else the process RSS high-water
mark (monotone across stages — under the RSS probe a later stage's peak is
at least every earlier stage's).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Hashable, Optional

from repro.build.executors import BuildExecutor, resolve_executor
from repro.obs.memory import PeakMemoryMeter
from repro.build.shards import (build_shard, merge_shards, rs_shard_task,
                                sketch_shard_task)
from repro.core.config import FTCConfig, SchemeVariant
from repro.core.transform import TransformedInstance, build_transformed_instance
from repro.core.tree_scheme import TreeEdgeLabeling
from repro.gf2.bulk import get_bulk_ops
from repro.graphs.graph import Graph
from repro.hierarchy.base import EdgeHierarchy
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.deterministic import build_deterministic_hierarchy
from repro.hierarchy.randomized import build_randomized_hierarchy
from repro.outdetect.base import OutdetectScheme
from repro.outdetect.layered import LayeredOutdetect
from repro.outdetect.rs_threshold import RSThresholdOutdetect
from repro.outdetect.sketch import SketchOutdetect

Vertex = Hashable

#: The incremental-build seam (:mod:`repro.delta`): called per layered-RS
#: level with ``(level_index, threshold, edge_ids, vertices, field)``; a
#: non-``None`` return is adopted as that level's complete label matrix.
LevelReuseHook = Callable[[int, int, dict, list, object], Optional[list]]

#: Stage names, in execution order (the keys of ``BuildReport.stage_seconds``).
STAGES = ("spanning", "hierarchy", "outdetect", "assembly")


@dataclass(frozen=True)
class BuildReport:
    """What one build did and how long each stage took.

    ``shard_count`` counts the outdetect shard tasks actually dispatched;
    ``level_count`` the outdetect levels they were merged back into (one for
    the sketch variants).  ``jobs`` is the executor's worker bound, not the
    shard count — a serial build of a deep hierarchy still has many shards.

    ``stage_peak_bytes`` maps each stage to its peak-memory reading (bytes),
    measured by the probe named in ``memory_probe`` (``"tracemalloc"``,
    ``"rss"``, or ``"unavailable"`` — empty dict in the last case).  The RSS
    probe reads the process high-water mark, so its per-stage values are
    monotone non-decreasing rather than independent peaks.
    """

    executor: str
    jobs: int
    shard_count: int
    level_count: int
    stage_seconds: dict = dataclass_field(default_factory=dict)
    total_seconds: float = 0.0
    stage_peak_bytes: dict = dataclass_field(default_factory=dict)
    memory_probe: str = "unavailable"
    #: Levels whose label matrix came from a ``level_reuse`` hook instead of
    #: shard construction (the incremental path of :mod:`repro.delta`).
    reused_level_count: int = 0

    def to_dict(self) -> dict:
        """A JSON-ready view (what the CLI prints under ``build_report``)."""
        return {
            "executor": self.executor,
            "jobs": self.jobs,
            "shard_count": self.shard_count,
            "level_count": self.level_count,
            "stage_seconds": dict(self.stage_seconds),
            "total_seconds": self.total_seconds,
            "stage_peak_bytes": dict(self.stage_peak_bytes),
            "memory_probe": self.memory_probe,
            "reused_level_count": self.reused_level_count,
        }


@dataclass
class BuildResult:
    """Everything :class:`~repro.core.ftc.FTCLabeling` needs, plus the report."""

    instance: TransformedInstance
    hierarchy: EdgeHierarchy | None
    outdetect: OutdetectScheme
    tree_labeling: TreeEdgeLabeling
    report: BuildReport


class BuildPlan:
    """Staged construction of one labeling for one ``(graph, config)``.

    The plan validates its inputs eagerly (same errors the old constructor
    raised), then :meth:`run` executes the stages under any
    :class:`~repro.build.executors.BuildExecutor`.  Plans are single-use
    descriptions — build twice by creating two plans.
    """

    def __init__(self, graph: Graph, config: FTCConfig, root: Vertex | None = None):
        if not isinstance(config, FTCConfig):
            raise TypeError("config must be an FTCConfig, got %r"
                            % type(config).__name__)
        if graph.num_vertices() < 1:
            raise ValueError("the input graph must have at least one vertex")
        if not graph.is_connected():
            raise ValueError("the input graph must be connected "
                             "(run one labeling per connected component)")
        self.graph = graph
        self.config = config
        self.root = root

    # ------------------------------------------------------------------ stages

    def run(self, executor: BuildExecutor | str | None = None,
            jobs: int | None = None,
            level_reuse: LevelReuseHook | None = None) -> BuildResult:
        """Execute all four stages and return the result + report.

        ``level_reuse`` is the incremental-build seam (:mod:`repro.delta`):
        called once per layered-RS level with ``(level_index, threshold,
        edge_ids, vertices, field)``, it may return a complete label matrix
        for that level — which is adopted verbatim, skipping the level's
        shard construction — or ``None`` to build the level from scratch.
        Sketch variants ignore the hook (their single level is global).  The
        hook must preserve the XOR-merge semantics: an adopted matrix must
        equal what the shard pipeline would have produced, which callers
        guarantee by patching a base matrix with the XOR contributions of the
        changed edges only.
        """
        executor = resolve_executor(executor, jobs)
        stage_seconds: dict[str, float] = {}
        stage_peak: dict[str, int] = {}
        meter = PeakMemoryMeter()
        start = time.perf_counter()

        stage_start = time.perf_counter()
        meter.start_phase()
        instance = build_transformed_instance(
            self.graph, root=self.root, edge_id_mode=self.config.edge_id_mode)
        _record_peak(stage_peak, "spanning", meter)
        stage_seconds["spanning"] = time.perf_counter() - stage_start

        stage_start = time.perf_counter()
        meter.start_phase()
        hierarchy = self._build_hierarchy(instance)
        _record_peak(stage_peak, "hierarchy", meter)
        stage_seconds["hierarchy"] = time.perf_counter() - stage_start

        stage_start = time.perf_counter()
        meter.start_phase()
        outdetect, shard_count, level_count, reused_levels = \
            self._build_outdetect(instance, hierarchy, executor, level_reuse)
        _record_peak(stage_peak, "outdetect", meter)
        stage_seconds["outdetect"] = time.perf_counter() - stage_start

        stage_start = time.perf_counter()
        meter.start_phase()
        tree_labeling = TreeEdgeLabeling(instance, outdetect)
        _record_peak(stage_peak, "assembly", meter)
        stage_seconds["assembly"] = time.perf_counter() - stage_start

        report = BuildReport(
            executor=executor.name,
            jobs=executor.jobs,
            shard_count=shard_count,
            level_count=level_count,
            stage_seconds=stage_seconds,
            total_seconds=time.perf_counter() - start,
            stage_peak_bytes=stage_peak,
            memory_probe=meter.probe,
            reused_level_count=reused_levels,
        )
        return BuildResult(instance=instance, hierarchy=hierarchy,
                           outdetect=outdetect, tree_labeling=tree_labeling,
                           report=report)

    def _build_hierarchy(self, instance: TransformedInstance) -> EdgeHierarchy | None:
        """Stage 2: the sparsification hierarchy (``None`` for sketch variants)."""
        config = self.config
        if not config.variant.uses_hierarchy:
            return None
        hierarchy_config = HierarchyConfig(
            max_faults=config.max_faults,
            rule=config.threshold_rule,
            net_algorithm=config.net_algorithm,
            random_seed=config.random_seed,
        )
        if config.variant is SchemeVariant.RANDOMIZED_FULL:
            return build_randomized_hierarchy(instance.non_tree_edges, hierarchy_config)
        return build_deterministic_hierarchy(
            instance.non_tree_edges, instance.tour, hierarchy_config)

    # --------------------------------------------------------------- sharding

    def _build_outdetect(self, instance: TransformedInstance,
                         hierarchy: EdgeHierarchy | None,
                         executor: BuildExecutor,
                         level_reuse: LevelReuseHook | None = None) -> tuple:
        """Stage 3: shard every level's edges, fan out, merge, assemble.

        Returns ``(scheme, shard_count, level_count, reused_level_count)``.
        Shards are created per level with at most ``executor.jobs`` slices
        each, tasks are dispatched in one ``executor.map`` across *all*
        levels (so a deep hierarchy with skewed level sizes still
        load-balances), and each level's partial matrices are XOR-merged back
        in place.  A level whose matrix the ``level_reuse`` hook supplies
        dispatches no shard tasks at all.
        """
        vertices = list(instance.auxiliary.tree_prime.vertices())
        vertex_index = {vertex: position for position, vertex in enumerate(vertices)}
        if hierarchy is None:
            return self._build_sketch(instance, vertices, vertex_index, executor)
        field = instance.codec.field
        levels: list[tuple[int, dict]]
        if not hierarchy.levels:
            # A tree has no non-tree edges; a single trivial level keeps the
            # layered machinery uniform.
            levels = [(1, {})]
        else:
            levels = [(threshold,
                       {edge: instance.edge_ids[edge] for edge in level_edges})
                      for level_edges, threshold in zip(hierarchy.levels,
                                                        hierarchy.thresholds)]
        reused: dict[int, list] = {}
        if level_reuse is not None:
            for level_index, (threshold, edge_ids) in enumerate(levels):
                matrix = level_reuse(level_index, threshold, edge_ids,
                                     vertices, field)
                if matrix is not None:
                    reused[level_index] = matrix
        tasks: list[dict] = []
        slices: list[list[int]] = []  # task indices per level, in level order
        for level_index, (threshold, edge_ids) in enumerate(levels):
            level_tasks: list[int] = []
            if level_index not in reused:
                for chunk in _chunks(_position_edges(edge_ids, vertex_index),
                                     executor.jobs):
                    level_tasks.append(len(tasks))
                    tasks.append(rs_shard_task(field.width, field.modulus,
                                               threshold, chunk))
            slices.append(level_tasks)
        results = executor.map(build_shard, tasks)
        merge_bulk = get_bulk_ops(None, max_bits=field.width)
        level_schemes: list[RSThresholdOutdetect] = []
        for level_index, ((threshold, edge_ids), task_indices) in \
                enumerate(zip(levels, slices)):
            if level_index in reused:
                merged = reused[level_index]
            else:
                merged = merge_shards(len(vertices), 2 * threshold,
                                      [results[index] for index in task_indices],
                                      bulk=merge_bulk)
            level_schemes.append(RSThresholdOutdetect.from_label_matrix(
                field, threshold, vertices, edge_ids, merged,
                adaptive=self.config.adaptive_decoding))
        return (LayeredOutdetect(level_schemes), len(tasks), len(levels),
                len(reused))

    def _build_sketch(self, instance: TransformedInstance, vertices: list,
                      vertex_index: dict, executor: BuildExecutor) -> tuple:
        """Sketch variants: one level, edge set split into XOR-merged shards."""
        config = self.config
        edge_ids = instance.edge_ids
        repetitions = config.effective_sketch_repetitions()
        geometry = SketchOutdetect.plan_geometry(edge_ids, repetitions=repetitions)
        tasks = [sketch_shard_task(geometry["num_levels"], geometry["repetitions"],
                                   config.random_seed, geometry["id_bits"], chunk)
                 for chunk in _chunks(_position_edges(edge_ids, vertex_index),
                                      executor.jobs)]
        merge_bulk = get_bulk_ops(None, max_bits=geometry["value_bits"])
        merged = merge_shards(len(vertices),
                              geometry["num_levels"] * geometry["repetitions"],
                              executor.map(build_shard, tasks),
                              bulk=merge_bulk)
        scheme = SketchOutdetect.from_label_matrix(
            vertices, edge_ids, merged,
            num_levels=geometry["num_levels"],
            repetitions=geometry["repetitions"],
            seed=config.random_seed,
            id_bits=geometry["id_bits"])
        return scheme, len(tasks), 1, 0


def _record_peak(stage_peak: dict, stage: str, meter: PeakMemoryMeter) -> None:
    """File one stage's peak-memory reading, skipping unavailable probes."""
    peak = meter.end_phase()
    if peak is not None:
        stage_peak[stage] = peak


def _position_edges(edge_ids: dict, vertex_index: dict) -> list:
    """Resolve a level's edges to ``(u_position, v_position, identifier)``.

    Done once in the parent so shard tasks carry only small integers — no
    vertex objects or vertex lists cross a process boundary — and so an edge
    endpoint outside the scheme's vertex set raises ``KeyError`` here, before
    any fan-out.
    """
    return [(vertex_index[u], vertex_index[v], identifier)
            for (u, v), identifier in edge_ids.items()]


def _chunks(items: list, parts: int) -> list:
    """Split ``items`` into at most ``parts`` contiguous, near-equal slices.

    Always yields at least one (possibly empty) slice so every level produces
    a matrix; never yields an empty slice when a non-empty one exists.
    """
    count = len(items)
    parts = max(1, min(parts, count) if count else 1)
    base, extra = divmod(count, parts)
    out: list = []
    position = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        out.append(items[position:position + size])
        position += size
    return out


__all__ = ["STAGES", "BuildPlan", "BuildReport", "BuildResult",
           "LevelReuseHook"]
