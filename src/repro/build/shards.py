"""The picklable shard worker of the build plan.

One module-level function, plain-data tasks, plain-data results — exactly
what a :class:`~repro.build.executors.ProcessExecutor` needs to ship work
across process boundaries.  A task describes one *shard* of one outdetect
level: the scheme's parameters plus a slice of the level's edges, with
endpoints pre-resolved to integer positions in the level's vertex order so
no vertex objects (or the vertex list itself) ever cross the boundary.

The result is **sparse**: ``(positions, rows)`` where ``positions`` are the
vertex positions the shard's edges touch and ``rows`` their partial labels.
Untouched vertices contribute nothing — their labels are XOR identities — so
shipping them would only inflate pickling and merging; for a deep level with
few edges a shard's result is tiny regardless of the graph size.  Because
vertex labels are XOR sums over incident edges, :func:`merge_shards` can
fold any partition of the edges back into the exact matrix a single-shot
build would have produced — bit-identical by construction, regardless of
executor or shard count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gf2.field import GF2m

if TYPE_CHECKING:
    from repro.gf2.bulk import BulkOps
    from repro.outdetect.rs_threshold import RSThresholdOutdetect
    from repro.outdetect.sketch import SketchOutdetect


def rs_shard_task(width: int, modulus: int, threshold: int, edges: list) -> dict:
    """Task description for one Reed--Solomon level shard.

    ``edges`` is a list of ``(u_position, v_position, identifier)`` triples —
    a slice of the level's edges with endpoints resolved against the level's
    vertex order.  The field travels as ``(width, modulus)`` so the task
    pickles small and the worker rebuilds arithmetic locally.
    """
    return {"kind": "rs", "width": width, "modulus": modulus,
            "threshold": threshold, "edges": edges}


def sketch_shard_task(num_levels: int, repetitions: int, seed: int,
                      id_bits: int, edges: list) -> dict:
    """Task description for one sketch shard (a slice of all edges).

    The geometry is fixed up front from the *full* edge set (see
    :meth:`~repro.outdetect.sketch.SketchOutdetect.plan_geometry`) so every
    shard hashes into identical cells.
    """
    return {"kind": "sketch", "num_levels": num_levels,
            "repetitions": repetitions, "seed": seed, "id_bits": id_bits,
            "edges": edges}


def build_shard(task: dict) -> tuple:
    """Build one shard's sparse partial labels (runs in any worker).

    Returns ``(positions, rows)``: the sorted vertex positions the shard's
    edges touch and one partial label row per position.  Import of the
    outdetect schemes is deferred so a freshly spawned worker only pays for
    what its task needs.
    """
    positions = sorted({position for u, v, _ in task["edges"] for position in (u, v)})
    edge_items = [((u, v), identifier) for u, v, identifier in task["edges"]]
    kind = task["kind"]
    scheme: "RSThresholdOutdetect | SketchOutdetect"
    if kind == "rs":
        from repro.outdetect.rs_threshold import RSThresholdOutdetect

        field = GF2m(task["width"], task["modulus"])
        scheme = RSThresholdOutdetect.decode_only(field, task["threshold"])
    elif kind == "sketch":
        from repro.outdetect.sketch import SketchOutdetect

        scheme = SketchOutdetect.decode_only(
            task["num_levels"], task["repetitions"], task["seed"], task["id_bits"])
    else:
        raise ValueError("unknown shard kind %r" % (kind,))
    # label_matrix is generic over hashable vertices, so the compact integer
    # positions act as the shard's vertex set directly.
    return positions, scheme.label_matrix(positions, edge_items)


def merge_shards(num_vertices: int, row_len: int, shard_results: list,
                 bulk: "BulkOps | None" = None) -> list:
    """XOR sparse shard results into one full ``num_vertices x row_len`` matrix.

    XOR is associative and commutative, so the merged matrix is independent
    of how edges were partitioned into shards — the bit-identity guarantee.
    Positions never seen stay the all-zero label (isolated vertices).

    ``bulk`` is an optional XOR-capable :class:`~repro.gf2.bulk.BulkOps`
    backend; with several shards the whole merge is then one
    ``scatter_xor_rows`` call (numpy bit-sliced when available) instead of a
    Python loop.  All paths produce identical matrices.
    """
    indices: list[int] = []
    rows: list = []
    for positions, shard_rows in shard_results:
        for position, row in zip(positions, shard_rows):
            if len(row) != row_len:
                raise ValueError("shard row of length %d does not fit a "
                                 "%d-wide level" % (len(row), row_len))
            indices.append(position)
            rows.append(row)
    if len(shard_results) > 1 and bulk is not None:
        return bulk.scatter_xor_rows(num_vertices, row_len, indices, rows)
    matrix = [[0] * row_len for _ in range(num_vertices)]
    if len(shard_results) == 1:
        # One shard (the serial executor's shape): its rows ARE the level's
        # rows — place them, skipping the per-element XOR.
        for position, row in zip(indices, rows):
            matrix[position] = list(row)
        return matrix
    for position, row in zip(indices, rows):
        target = matrix[position]
        for index, value in enumerate(row):
            target[index] ^= value
    return matrix


__all__ = ["build_shard", "merge_shards", "rs_shard_task", "sketch_shard_task"]
