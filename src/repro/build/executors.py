"""Pluggable execution strategies for sharded label construction.

The construction fan-out of :mod:`repro.build.plan` is expressed as one shape:
``executor.map(build_shard, tasks)`` over picklable task descriptions, with
the results merged back in task order.  Because every shard's contribution is
an XOR term of the final labels (Proposition 2: a vertex label is the XOR of
its incident edges' parity-check rows), the merge is order- and
partition-insensitive, so **every executor produces bit-identical labelings**
— the conformance suite in ``tests/test_build_executors.py`` asserts equality
of whole-snapshot bytes.

Three strategies conform to :class:`BuildExecutor`:

``SerialExecutor``
    A plain comprehension on the calling thread.  The default; zero overhead,
    exactly the pre-``repro.build`` behavior.

``ThreadExecutor``
    A shared :class:`~concurrent.futures.ThreadPoolExecutor`.  The GIL bounds
    the speedup of pure-Python shards, but numpy-backed bulk kernels release
    it, and threads avoid pickling entirely.

``ProcessExecutor``
    A shared :class:`~concurrent.futures.ProcessPoolExecutor` — the
    multiprocessing fan-out the ROADMAP asked for.  Tasks and results cross
    process boundaries, so shard inputs are plain data (see
    :mod:`repro.build.shards`).

Selection is normalized by :func:`resolve_executor`; the
``REPRO_BUILD_EXECUTOR`` environment variable (mirroring
``REPRO_GF2_BACKEND``) overrides the default for whole runs, e.g.
``REPRO_BUILD_EXECUTOR=process`` or ``REPRO_BUILD_EXECUTOR=thread:4``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (BrokenExecutor, Executor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from typing import (TYPE_CHECKING, Callable, Protocol, Sequence,
                    runtime_checkable)

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

#: Environment variable selecting the default executor
#: (``serial`` / ``thread[:N]`` / ``process[:N]``).
EXECUTOR_ENV_VAR = "REPRO_BUILD_EXECUTOR"

#: The conforming strategy names, in documentation order.
EXECUTOR_NAMES = ("serial", "thread", "process")


def default_jobs() -> int:
    """Worker count when none is requested: one per CPU."""
    return os.cpu_count() or 1


@runtime_checkable
class BuildExecutor(Protocol):
    """The contract every build execution strategy satisfies.

    ``map`` applies ``fn`` to every task and returns the results **in task
    order** (the plan's merge relies on positional correspondence); ``name``
    and ``jobs`` feed the :class:`~repro.build.plan.BuildReport`.  ``close``
    releases pooled workers and must be idempotent — executors are reusable
    across many builds until closed.
    """

    name: str
    jobs: int

    def map(self, fn: Callable, tasks: Sequence) -> list: ...

    def close(self) -> None: ...


class SerialExecutor:
    """Run every shard inline on the calling thread (the default)."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable, tasks: Sequence) -> list:
        return [fn(task) for task in tasks]

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "SerialExecutor()"


class _PooledExecutor:
    """Shared lazy-pool plumbing of the thread and process strategies.

    The pool is created on first :meth:`map` and reused across builds (the
    tier-1 suite under ``REPRO_BUILD_EXECUTOR=process`` constructs dozens of
    labelings; one pool amortizes worker startup across all of them).  All
    pool handling is lock-protected so concurrent builds may share one
    executor instance.
    """

    name = "abstract"

    def __init__(self, jobs: int | None = None):
        if jobs is not None and jobs < 1:
            raise ValueError("executor jobs must be at least 1, got %d" % jobs)
        self.jobs = jobs if jobs is not None else default_jobs()
        self._pool: Executor | None = None
        self._lock = threading.Lock()
        self._closed = False

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def _ensure_pool(self) -> Executor:
        with self._lock:
            if self._closed:
                raise RuntimeError("%s executor is closed" % self.name)
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def map(self, fn: Callable, tasks: Sequence) -> list:
        tasks = list(tasks)
        if len(tasks) <= 1:
            with self._lock:
                if self._closed:
                    raise RuntimeError("%s executor is closed" % self.name)
            # One shard gains nothing from the pool; skip the round-trip (and,
            # for processes, the pickling) entirely.
            return [fn(task) for task in tasks]
        pool = self._ensure_pool()
        try:
            return list(pool.map(fn, tasks))
        except BrokenExecutor:
            # A killed worker (OOM, segfault) breaks the pool permanently;
            # executors are shared and long-lived, so drop the carcass and
            # let the next map start a fresh pool instead of failing forever.
            with self._lock:
                if self._pool is pool:
                    self._pool = None
            pool.shutdown(wait=False)
            raise

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return "%s(jobs=%d)" % (type(self).__name__, self.jobs)


class ThreadExecutor(_PooledExecutor):
    """Fan shards out to a shared thread pool (no pickling, GIL-bounded)."""

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.jobs,
                                  thread_name_prefix="repro-build")


class ProcessExecutor(_PooledExecutor):
    """Fan shards out to a shared process pool (true CPU parallelism).

    Shard functions and tasks must be picklable: the plan only ever submits
    the module-level :func:`repro.build.shards.build_shard` with plain-data
    task dicts, so this holds by construction.
    """

    name = "process"

    def _make_pool(self) -> Executor:
        import multiprocessing

        # The pool is created lazily, possibly after the embedding process
        # grew threads (the query server's session workers, test harnesses) —
        # plain fork from a threaded parent can deadlock a worker on an
        # inherited lock.  forkserver forks every worker from one clean,
        # single-threaded server process instead (the parent's sys.path
        # travels in the spawn preparation data, so src-layout imports keep
        # working); platforms without it (Windows) use their spawn default.
        context: BaseContext | None
        try:
            context = multiprocessing.get_context("forkserver")
        except ValueError:  # pragma: no cover - platform without forkserver
            context = None
        return ProcessPoolExecutor(max_workers=self.jobs, mp_context=context)


_EXECUTOR_CLASSES: dict[str, Callable[..., BuildExecutor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}

#: Executors resolved from string specs are cached and shared so repeated
#: builds (and the whole test suite under the env override) reuse one pool.
_shared_executors: dict[tuple, BuildExecutor] = {}
_shared_lock = threading.Lock()


def available_executors() -> tuple:
    """The conforming strategy names (for CLI help and error messages)."""
    return EXECUTOR_NAMES


def _parse_spec(spec: str) -> tuple:
    """Split ``"process:4"`` / ``"thread"`` / ``"serial"`` into (name, jobs)."""
    name, separator, count = spec.strip().lower().partition(":")
    jobs = None
    if separator:
        if not count.isdigit() or int(count) < 1:
            raise ValueError("bad executor spec %r: job count must be a "
                             "positive integer" % spec)
        jobs = int(count)
    if name not in _EXECUTOR_CLASSES:
        raise ValueError("unknown build executor %r (expected one of: %s, "
                         "optionally with :N workers)"
                         % (spec, ", ".join(EXECUTOR_NAMES)))
    if name == "serial" and jobs not in (None, 1):
        raise ValueError("the serial executor runs exactly one job, got %r" % spec)
    return name, jobs


def _shared_executor(name: str, jobs: int | None) -> BuildExecutor:
    key = (name, jobs)
    with _shared_lock:
        executor = _shared_executors.get(key)
        # A closed executor must not poison the cache: callers are allowed to
        # close() what resolve_executor handed them, and the next resolve of
        # the same spec gets a fresh instance.
        if executor is None or getattr(executor, "_closed", False):
            executor = _shared_executors[key] = _EXECUTOR_CLASSES[name]() \
                if name == "serial" else _EXECUTOR_CLASSES[name](jobs)
        return executor


def resolve_executor(executor: "BuildExecutor | str | None" = None,
                     jobs: int | None = None) -> BuildExecutor:
    """Normalize every entry point's ``executor=`` / ``jobs=`` onto one strategy.

    Precedence:

    * a :class:`BuildExecutor` instance is used as-is (``jobs`` must then be
      omitted — two sources of truth would be ambiguous);
    * a string spec (``"serial"``, ``"thread"``, ``"process"``, optionally
      ``":N"``) selects a shared pooled instance; a separate ``jobs=`` fills
      in the worker count when the spec has none;
    * ``jobs=N`` alone means "just parallelize": ``N > 1`` selects the
      process executor with ``N`` workers, ``N == 1`` the serial one;
    * with neither given, the ``REPRO_BUILD_EXECUTOR`` environment variable
      decides, and its absence means serial — the historical behavior.
    """
    if executor is not None and not isinstance(executor, str):
        if not isinstance(executor, BuildExecutor):
            raise TypeError("executor must be a BuildExecutor or a spec string, "
                            "got %r" % type(executor).__name__)
        if jobs is not None and jobs != executor.jobs:
            raise ValueError("jobs=%d conflicts with the executor's %d workers; "
                             "pass one or the other" % (jobs, executor.jobs))
        return executor
    if jobs is not None and jobs < 1:
        raise ValueError("jobs must be at least 1, got %d" % jobs)
    if executor is not None:
        name, spec_jobs = _parse_spec(executor)
        if jobs is not None and spec_jobs is not None and jobs != spec_jobs:
            raise ValueError("jobs=%d conflicts with executor spec %r"
                             % (jobs, executor))
        effective = spec_jobs if spec_jobs is not None else jobs
        if name == "serial" and effective not in (None, 1):
            # Same conflict "serial:4" raises in _parse_spec; asking for N
            # workers must never silently build serially.
            raise ValueError("jobs=%d conflicts with the serial executor"
                             % effective)
        return _shared_executor(name, effective)
    if jobs is not None:
        return _shared_executor("serial" if jobs == 1 else "process",
                                None if jobs == 1 else jobs)
    env = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    if env:
        name, spec_jobs = _parse_spec(env)
        return _shared_executor(name, spec_jobs)
    return _shared_executor("serial", None)


__all__ = [
    "BuildExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTOR_ENV_VAR",
    "EXECUTOR_NAMES",
    "available_executors",
    "default_jobs",
    "resolve_executor",
]
