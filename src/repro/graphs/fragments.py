"""Ground-truth fragment decomposition of ``T - F``.

Removing a set ``F`` of tree edges splits a rooted spanning tree into
``|F| + 1`` connected subtrees whose vertex sets the paper calls *fragments*
(Section 3.1).  The query decoder reconstructs fragments purely from ancestry
labels (see :mod:`repro.core.query`); the functions here compute them from the
actual tree structure and are used for construction-time validation and as a
test oracle.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.spanning_tree import RootedTree

Vertex = Hashable


def tree_fragments(tree: RootedTree, faults: Iterable[Edge]) -> list[set]:
    """Return the vertex sets of the connected components of ``T - F``.

    The fragment containing the root is always first; the remaining fragments
    are ordered by the (deterministic) preorder of their topmost vertex.
    """
    fault_set = {canonical_edge(u, v) for u, v in faults}
    for edge in fault_set:
        if not tree.is_tree_edge(*edge):
            raise ValueError("fault %r is not a tree edge" % (edge,))

    fragment_of: dict[Vertex, int] = {}
    fragment_sets: list[set] = [set()]
    fragment_of[tree.root] = 0
    fragment_sets[0].add(tree.root)
    for vertex in tree.preorder():
        if vertex == tree.root:
            continue
        parent = tree.parent(vertex)
        if canonical_edge(vertex, parent) in fault_set:
            fragment_of[vertex] = len(fragment_sets)
            fragment_sets.append({vertex})
        else:
            index = fragment_of[parent]
            fragment_of[vertex] = index
            fragment_sets[index].add(vertex)
    return fragment_sets


def fragment_index_of(tree: RootedTree, faults: Iterable[Edge]) -> dict:
    """Map every vertex to the index of its fragment in :func:`tree_fragments`."""
    fragments = tree_fragments(tree, faults)
    index_of = {}
    for index, fragment in enumerate(fragments):
        for vertex in fragment:
            index_of[vertex] = index
    return index_of


def fragment_boundaries(tree: RootedTree, faults: Iterable[Edge]) -> list[set]:
    """For each fragment, the set of fault edges on its tree boundary.

    This is ``∂_T(C_i) ⊆ F`` for each fragment ``C_i`` — the quantity
    Proposition 4 sums over to obtain the fragment's outdetect label.
    """
    fault_set = {canonical_edge(u, v) for u, v in faults}
    fragments = tree_fragments(tree, faults)
    index_of = {}
    for index, fragment in enumerate(fragments):
        for vertex in fragment:
            index_of[vertex] = index
    boundaries: list[set] = [set() for _ in fragments]
    for edge in fault_set:
        u, v = edge
        boundaries[index_of[u]].add(edge)
        boundaries[index_of[v]].add(edge)
    return boundaries
