"""Graph, spanning-tree, Euler-tour, and auxiliary-graph substrates.

Everything the labeling schemes need to know about graphs lives here:

* :mod:`repro.graphs.graph` — a small undirected multigraph-free graph type
  with canonical edge identities (no dependency on networkx in the hot path).
* :mod:`repro.graphs.spanning_tree` — rooted spanning trees (BFS/DFS) and the
  rooted-tree structure (parents, children, subtree traversal).
* :mod:`repro.graphs.euler` — Euler tours, DFS intervals, the one-dimensional
  coordinates ``c(v)`` of Section 4.3 and the 2-D embedding of non-tree edges.
* :mod:`repro.graphs.auxiliary` — the auxiliary graph ``G'`` obtained by
  subdividing non-tree edges (Section 3.2, Figure 1) together with the edge
  mapping sigma.
* :mod:`repro.graphs.fragments` — ground-truth fragment decomposition of
  ``T - F`` used by tests and the construction side.
"""

from repro.graphs.graph import Graph, canonical_edge
from repro.graphs.spanning_tree import RootedTree, bfs_spanning_tree, dfs_spanning_tree
from repro.graphs.euler import EulerTour
from repro.graphs.auxiliary import AuxiliaryGraph
from repro.graphs.fragments import tree_fragments

__all__ = [
    "Graph",
    "canonical_edge",
    "RootedTree",
    "bfs_spanning_tree",
    "dfs_spanning_tree",
    "EulerTour",
    "AuxiliaryGraph",
    "tree_fragments",
]
