"""Euler tours, DFS intervals, and the geometric embedding of Section 4.3.

The deterministic sparsification of the paper maps every non-tree edge to a
point in the plane: replace every tree edge by two directed arcs, order all
arcs by an Euler tour starting at the root, give every non-root vertex the
coordinate ``c(v)`` equal to the position of the arc entering it from its
parent, and map a non-tree edge ``(u, v)`` to the point ``(c(u), c(v))`` with
the smaller coordinate first.  Lemma 3 then characterizes every cut set
``∂_{E'}(S)`` as the set of points inside a symmetric difference of
axis-aligned half-planes, which is what lets ε-net machinery build the
sparsification hierarchy deterministically.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.spanning_tree import RootedTree

Vertex = Hashable


class EulerTour:
    """Euler tour of a rooted tree with the paper's vertex coordinates.

    Attributes
    ----------
    arcs:
        The sequence of directed arcs ``(parent, child)`` / ``(child, parent)``
        visited by the tour, 1-indexed positions (position 0 is unused so the
        coordinates live in ``[1, 2n - 2]`` as in the paper).
    """

    __slots__ = ("tree", "arcs", "_coordinate", "_arc_position", "_pre", "_post")

    def __init__(self, tree: RootedTree):
        self.tree = tree
        self.arcs: list[tuple] = []
        self._coordinate: dict[Vertex, int] = {tree.root: 0}
        self._arc_position: dict[tuple, int] = {}
        self._pre: dict[Vertex, int] = {}
        self._post: dict[Vertex, int] = {}
        self._run_tour()

    def _run_tour(self) -> None:
        tree = self.tree
        counter = 0
        pre_counter = 0
        # Iterative DFS that records both downward and upward arcs.
        stack: list[tuple] = [(tree.root, iter(tree.children(tree.root)))]
        self._pre[tree.root] = pre_counter
        pre_counter += 1
        while stack:
            vertex, child_iterator = stack[-1]
            child = next(child_iterator, None)
            if child is None:
                stack.pop()
                self._post[vertex] = pre_counter
                pre_counter += 1
                if stack:
                    parent = stack[-1][0]
                    counter += 1
                    arc = (vertex, parent)
                    self.arcs.append(arc)
                    self._arc_position[arc] = counter
                continue
            counter += 1
            arc = (vertex, child)
            self.arcs.append(arc)
            self._arc_position[arc] = counter
            self._coordinate[child] = counter
            self._pre[child] = pre_counter
            pre_counter += 1
            stack.append((child, iter(tree.children(child))))

    # ------------------------------------------------------------- accessors

    def coordinate(self, vertex: Vertex) -> int:
        """The 1-D coordinate ``c(v)`` (0 for the root)."""
        return self._coordinate[vertex]

    def arc_position(self, tail: Vertex, head: Vertex) -> int:
        """Position of the directed arc ``tail -> head`` in the tour (1-based)."""
        return self._arc_position[(tail, head)]

    def directed_arcs_of_edge(self, u: Vertex, v: Vertex) -> tuple[int, int]:
        """Positions of the two arcs corresponding to the undirected tree edge."""
        return (self._arc_position[(u, v)], self._arc_position[(v, u)])

    def num_arcs(self) -> int:
        return len(self.arcs)

    def point_of_edge(self, u: Vertex, v: Vertex) -> tuple[int, int]:
        """The 2-D point of a non-tree edge: coordinates sorted ascending."""
        cu, cv = self._coordinate[u], self._coordinate[v]
        return (cu, cv) if cu <= cv else (cv, cu)

    def embed_edges(self, edges: Iterable[Edge]) -> dict[Edge, tuple[int, int]]:
        """Map every given (non-tree) edge to its 2-D point."""
        return {canonical_edge(u, v): self.point_of_edge(u, v) for u, v in edges}

    # ------------------------------------------------------ cut characterization

    def directed_cut_positions(self, vertex_set: set) -> list[int]:
        """Positions of all directed arcs crossing the cut ``(S, V \\ S)``.

        This is the paper's ``∂_{vec T}(S)``: both orientations of every tree
        edge with exactly one endpoint in ``S``.
        """
        positions = []
        for (tail, head), position in self._arc_position.items():
            if (tail in vertex_set) != (head in vertex_set):
                positions.append(position)
        return sorted(positions)

    def point_in_symmetric_difference(self, point: tuple[int, int],
                                      cut_positions: Iterable[int]) -> bool:
        """Membership test of Lemma 3.

        A point lies in the symmetric difference of the half-planes
        ``{x >= a}`` and ``{y >= a}`` over all cut positions ``a`` iff the
        total number of half-planes containing it is odd.
        """
        x, y = point
        count = 0
        for position in cut_positions:
            if x >= position:
                count += 1
            if y >= position:
                count += 1
        return count % 2 == 1

    # ---------------------------------------------------------- DFS intervals

    def preorder_index(self, vertex: Vertex) -> int:
        """DFS preorder index (used by the ancestry labeling)."""
        return self._pre[vertex]

    def postorder_index(self, vertex: Vertex) -> int:
        """DFS post index; the interval [pre, post] contains all descendants."""
        return self._post[vertex]
