"""A minimal undirected simple-graph type with canonical edge identities.

The labeling schemes need stable, hashable edge identities ("the edge between
u and v"), cheap adjacency iteration, and conversion to/from networkx for
workload generation and cross-validation.  Vertices can be any hashable,
orderable objects (ints, strings, tuples); edges are canonicalized as sorted
pairs so ``(u, v)`` and ``(v, u)`` refer to the same edge.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

Vertex = Hashable
Edge = tuple


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) representation of the undirected edge {u, v}."""
    if u == v:
        raise ValueError("self-loops are not supported: %r" % (u,))
    # Sort by (type name, repr) so heterogeneous vertex types stay orderable.
    if _vertex_key(u) <= _vertex_key(v):
        return (u, v)
    return (v, u)


def _vertex_key(v: Vertex) -> tuple:
    return (type(v).__name__, repr(v))


class Graph:
    """An undirected simple graph."""

    __slots__ = ("_adjacency", "_edges")

    def __init__(self, edges: Iterable[tuple] = (), vertices: Iterable[Vertex] = ()):
        self._adjacency: dict[Vertex, set] = {}
        self._edges: set[Edge] = set()
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    # -------------------------------------------------------------- mutation

    def add_vertex(self, vertex: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, u: Vertex, v: Vertex) -> Edge:
        """Add the undirected edge {u, v}, creating endpoints as needed."""
        edge = canonical_edge(u, v)
        self.add_vertex(u)
        self.add_vertex(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._edges.add(edge)
        return edge

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge {u, v}; raises ``KeyError`` if absent."""
        edge = canonical_edge(u, v)
        if edge not in self._edges:
            raise KeyError("edge %r not in graph" % (edge,))
        self._edges.remove(edge)
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    # ------------------------------------------------------------- inspection

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all canonical edges."""
        return iter(self._edges)

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if u not in self._adjacency:
            return False
        return v in self._adjacency[u]

    def neighbors(self, vertex: Vertex) -> Iterator[Vertex]:
        """Iterate over neighbors of a vertex."""
        return iter(self._adjacency[vertex])

    def degree(self, vertex: Vertex) -> int:
        return len(self._adjacency[vertex])

    def num_vertices(self) -> int:
        return len(self._adjacency)

    def num_edges(self) -> int:
        return len(self._edges)

    def incident_edges(self, vertex: Vertex) -> list[Edge]:
        """Canonical edges incident to a vertex."""
        return [canonical_edge(vertex, other) for other in self._adjacency[vertex]]

    # ------------------------------------------------------------- operations

    def copy(self) -> "Graph":
        clone = Graph()
        for vertex in self.vertices():
            clone.add_vertex(vertex)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def without_edges(self, removed: Iterable[Edge]) -> "Graph":
        """Return a copy of the graph with the given edges removed."""
        removed_set = {canonical_edge(u, v) for u, v in removed}
        clone = Graph()
        for vertex in self.vertices():
            clone.add_vertex(vertex)
        for u, v in self.edges():
            if canonical_edge(u, v) not in removed_set:
                clone.add_edge(u, v)
        return clone

    def subgraph_with_edges(self, kept: Iterable[Edge]) -> "Graph":
        """Return a graph with all original vertices and only ``kept`` edges."""
        clone = Graph()
        for vertex in self.vertices():
            clone.add_vertex(vertex)
        for u, v in kept:
            clone.add_edge(u, v)
        return clone

    def connected_components(self) -> list[set]:
        """Return the vertex sets of the connected components."""
        seen: set = set()
        components = []
        for start in self._adjacency:
            if start in seen:
                continue
            stack = [start]
            component = {start}
            seen.add(start)
            while stack:
                current = stack.pop()
                for neighbor in self._adjacency[current]:
                    if neighbor not in component:
                        component.add(neighbor)
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if not self._adjacency:
            return True
        return len(self.connected_components()) == 1

    def connected(self, s: Vertex, t: Vertex, removed: Iterable[Edge] = ()) -> bool:
        """BFS connectivity query between ``s`` and ``t`` avoiding ``removed`` edges."""
        if s == t:
            return True
        removed_set = {canonical_edge(u, v) for u, v in removed}
        frontier = [s]
        seen = {s}
        while frontier:
            next_frontier = []
            for current in frontier:
                for neighbor in self._adjacency[current]:
                    if neighbor in seen:
                        continue
                    if canonical_edge(current, neighbor) in removed_set:
                        continue
                    if neighbor == t:
                        return True
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
            frontier = next_frontier
        return False

    # ------------------------------------------------------------ conversion

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build a :class:`Graph` from a networkx graph (edges only, no data)."""
        graph = cls()
        for vertex in nx_graph.nodes():
            graph.add_vertex(vertex)
        for u, v in nx_graph.edges():
            if u != v:
                graph.add_edge(u, v)
        return graph

    def to_networkx(self):
        """Convert to a networkx ``Graph`` (imported lazily)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.vertices())
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Graph(n=%d, m=%d)" % (self.num_vertices(), self.num_edges())


def read_edge_list(path) -> Graph:
    """Read a whitespace-separated edge-list file into a :class:`Graph`.

    One edge per line, two whitespace-separated vertex names (everything is
    treated as a string identifier); blank lines and lines starting with
    ``#`` are ignored.  This is the format of the CLI and of the ``build:``
    oracle URIs of :mod:`repro.api`.
    """
    from pathlib import Path

    graph = Graph()
    text = Path(path).read_text()
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise ValueError("line %d of %s is not an edge: %r" % (line_number, path, line))
        graph.add_edge(parts[0], parts[1])
    return graph
