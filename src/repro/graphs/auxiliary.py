"""The auxiliary graph G' of Section 3.2 (Figure 1).

Every non-tree edge ``e = (u, v)`` of the input graph is subdivided by a new
vertex; one half (attached to ``u``) joins the spanning tree ``T'`` and keeps
the name of ``e``, while the other half stays a non-tree edge.  The mapping
``sigma`` sends every original edge to a tree edge of ``T'``; a query
``(s, t, F)`` on ``G`` becomes ``(s, t, sigma(F))`` on ``G'``, and
connectivity is preserved (Proposition 1).  This reduction is what lets the
whole scheme assume that only tree edges fail.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.spanning_tree import RootedTree, non_tree_edges

Vertex = Hashable


class SubdivisionVertex:
    """A vertex introduced by subdividing a non-tree edge.

    Instances compare equal iff they subdivide the same original edge, and are
    orderable alongside ordinary vertices through their string key, which keeps
    spanning-tree and Euler-tour orders deterministic.
    """

    __slots__ = ("edge",)

    def __init__(self, edge: Edge):
        self.edge = edge

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubdivisionVertex) and other.edge == self.edge

    def __hash__(self) -> int:
        return hash(("subdivision", self.edge))

    def __repr__(self) -> str:
        return "sub(%r,%r)" % self.edge


class AuxiliaryGraph:
    """The transformed instance ``(G', T', sigma)`` of Proposition 1."""

    def __init__(self, graph: Graph, tree: RootedTree):
        self.original_graph = graph
        self.original_tree = tree
        self.graph_prime = Graph()
        self._sigma: dict[Edge, Edge] = {}
        self._subdivision_of: dict[Edge, Vertex] = {}
        parent_map: dict[Vertex, Vertex] = {}

        for vertex in graph.vertices():
            self.graph_prime.add_vertex(vertex)
        for vertex in tree.vertices():
            parent = tree.parent(vertex)
            if parent is not None:
                parent_map[vertex] = parent
                self.graph_prime.add_edge(vertex, parent)
                edge = canonical_edge(vertex, parent)
                self._sigma[edge] = edge

        for edge in non_tree_edges(graph, tree):
            u, v = edge
            midpoint = SubdivisionVertex(edge)
            self._subdivision_of[edge] = midpoint
            self.graph_prime.add_edge(u, midpoint)
            self.graph_prime.add_edge(midpoint, v)
            # The half incident to the canonical first endpoint joins T'.
            parent_map[midpoint] = u
            self._sigma[edge] = canonical_edge(u, midpoint)

        self.tree_prime = RootedTree(tree.root, parent_map)

    # ------------------------------------------------------------- accessors

    def sigma(self, u: Vertex, v: Vertex) -> Edge:
        """Image of an original edge under the mapping sigma (a T' edge)."""
        edge = canonical_edge(u, v)
        if edge not in self._sigma:
            raise KeyError("edge %r is not an edge of the original graph" % (edge,))
        return self._sigma[edge]

    def map_faults(self, faults: Iterable[Edge]) -> list[Edge]:
        """Map a fault set of original edges onto tree edges of T'."""
        return [self.sigma(u, v) for u, v in faults]

    def subdivision_vertex(self, u: Vertex, v: Vertex) -> Vertex:
        """The subdivision vertex of a non-tree original edge."""
        edge = canonical_edge(u, v)
        if edge not in self._subdivision_of:
            raise KeyError("edge %r is not a non-tree edge" % (edge,))
        return self._subdivision_of[edge]

    def non_tree_edges_prime(self) -> list[Edge]:
        """The non-tree edges of G' (the 'second halves' of subdivided edges)."""
        edges = []
        for edge, midpoint in self._subdivision_of.items():
            _, v = edge
            edges.append(canonical_edge(midpoint, v))
        return edges

    def statistics(self) -> dict:
        """Size accounting used by the Figure-1 benchmark."""
        return {
            "n": self.original_graph.num_vertices(),
            "m": self.original_graph.num_edges(),
            "n_prime": self.graph_prime.num_vertices(),
            "m_prime": self.graph_prime.num_edges(),
            "tree_edges_prime": len(self.tree_prime.tree_edges()),
            "non_tree_edges_prime": len(self.non_tree_edges_prime()),
        }
