"""Rooted spanning trees.

The whole construction of the paper is parameterized by an arbitrary rooted
spanning tree T of the input graph (Section 3).  :class:`RootedTree` stores
the parent/children structure, depths, and a deterministic DFS order; it can
be built by BFS or DFS over a :class:`~repro.graphs.graph.Graph`, or directly
from an explicit parent map (used by the auxiliary-graph transformation, which
must extend an existing tree rather than recompute one).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.graphs.graph import Edge, Graph, canonical_edge

Vertex = Hashable


class RootedTree:
    """A rooted tree over a set of vertices.

    The tree is immutable after construction.  Children are kept in a
    deterministic order (sorted by string key) so that Euler tours, DFS
    intervals, and therefore every label in the scheme are reproducible.
    """

    __slots__ = ("root", "_parent", "_children", "_depth", "_order")

    def __init__(self, root: Vertex, parent: dict):
        self.root = root
        self._parent = dict(parent)
        self._parent[root] = None
        self._children: dict[Vertex, list] = {vertex: [] for vertex in self._parent}
        for vertex, par in self._parent.items():
            if par is not None:
                if par not in self._children:
                    raise ValueError("parent %r of %r is not a tree vertex" % (par, vertex))
                self._children[par].append(vertex)
        for vertex in self._children:
            self._children[vertex].sort(key=_vertex_sort_key)
        self._depth: dict[Vertex, int] = {}
        self._order: list[Vertex] = []
        self._compute_depths_and_order()

    def _compute_depths_and_order(self) -> None:
        stack = [(self.root, 0)]
        while stack:
            vertex, depth = stack.pop()
            self._depth[vertex] = depth
            self._order.append(vertex)
            for child in reversed(self._children[vertex]):
                stack.append((child, depth + 1))
        if len(self._order) != len(self._parent):
            unreachable = set(self._parent) - set(self._order)
            raise ValueError("parent map does not describe a tree rooted at %r; "
                             "unreachable vertices: %r" % (self.root, sorted(map(repr, unreachable))[:5]))

    # ------------------------------------------------------------- accessors

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._parent)

    def num_vertices(self) -> int:
        return len(self._parent)

    def parent(self, vertex: Vertex):
        """Parent of a vertex (``None`` for the root)."""
        return self._parent[vertex]

    def children(self, vertex: Vertex) -> list:
        """Children of a vertex, in deterministic order."""
        return list(self._children[vertex])

    def depth(self, vertex: Vertex) -> int:
        return self._depth[vertex]

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._parent

    def preorder(self) -> list:
        """Vertices in DFS preorder (deterministic)."""
        return list(self._order)

    def postorder(self) -> list:
        """Vertices in DFS postorder (deterministic)."""
        result: list = []
        stack: list[tuple] = [(self.root, False)]
        while stack:
            vertex, expanded = stack.pop()
            if expanded:
                result.append(vertex)
                continue
            stack.append((vertex, True))
            for child in reversed(self._children[vertex]):
                stack.append((child, False))
        return result

    def tree_edges(self) -> list[Edge]:
        """Canonical edges of the tree."""
        return [canonical_edge(vertex, parent)
                for vertex, parent in self._parent.items() if parent is not None]

    def is_tree_edge(self, u: Vertex, v: Vertex) -> bool:
        if u not in self._parent or v not in self._parent:
            return False
        return self._parent.get(u) == v or self._parent.get(v) == u

    def lower_endpoint(self, u: Vertex, v: Vertex) -> Vertex:
        """The endpoint farther from the root (the paper's "lower vertex")."""
        if self._parent.get(u) == v:
            return u
        if self._parent.get(v) == u:
            return v
        raise ValueError("(%r, %r) is not a tree edge" % (u, v))

    def subtree_vertices(self, vertex: Vertex) -> list:
        """All vertices in the subtree rooted at ``vertex`` (inclusive)."""
        result = []
        stack = [vertex]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self._children[current])
        return result

    def path_to_root(self, vertex: Vertex) -> list:
        """Vertices on the path from ``vertex`` up to (and including) the root."""
        path = [vertex]
        while self._parent[path[-1]] is not None:
            path.append(self._parent[path[-1]])
        return path

    def is_ancestor(self, ancestor: Vertex, descendant: Vertex) -> bool:
        """Ground-truth ancestry test by walking parent pointers."""
        current = descendant
        while current is not None:
            if current == ancestor:
                return True
            current = self._parent[current]
        return False


def bfs_spanning_tree(graph: Graph, root: Vertex) -> RootedTree:
    """Build a BFS spanning tree of a connected graph rooted at ``root``."""
    return _spanning_tree(graph, root, breadth_first=True)


def dfs_spanning_tree(graph: Graph, root: Vertex) -> RootedTree:
    """Build a DFS spanning tree of a connected graph rooted at ``root``."""
    return _spanning_tree(graph, root, breadth_first=False)


def _spanning_tree(graph: Graph, root: Vertex, breadth_first: bool) -> RootedTree:
    if not graph.has_vertex(root):
        raise ValueError("root %r is not a vertex of the graph" % (root,))
    parent: dict = {root: None}
    frontier = [root]
    while frontier:
        current = frontier.pop(0) if breadth_first else frontier.pop()
        for neighbor in sorted(graph.neighbors(current), key=_vertex_sort_key):
            if neighbor not in parent:
                parent[neighbor] = current
                frontier.append(neighbor)
    if len(parent) != graph.num_vertices():
        raise ValueError("graph is not connected; spanning tree covers %d of %d vertices"
                         % (len(parent), graph.num_vertices()))
    return RootedTree(root, parent)


def non_tree_edges(graph: Graph, tree: RootedTree) -> list[Edge]:
    """Canonical edges of the graph that are not edges of the tree."""
    tree_set = set(tree.tree_edges())
    return sorted((edge for edge in graph.edges() if edge not in tree_set),
                  key=lambda edge: (_vertex_sort_key(edge[0]), _vertex_sort_key(edge[1])))


def _vertex_sort_key(vertex: Vertex) -> tuple:
    return (type(vertex).__name__, repr(vertex))
