"""One oracle protocol, three transports: the ``repro.api`` facade.

The paper's oracle abstraction (Section 1.4) says any f-FTC labeling doubles
as a centralized connectivity oracle.  This module makes that one *contract*
with three interchangeable transports:

========== ============================================== =====================
transport   backing                                        factory
========== ============================================== =====================
``build``   labels constructed in process from a graph     :meth:`Oracle.build`
``snapshot`` labels rehydrated from an ``FTCS`` artifact   :meth:`Oracle.load`
``tcp``     a :mod:`repro.server` process over the wire    :meth:`Oracle.connect`
========== ============================================== =====================

Every transport satisfies :class:`OracleProtocol` — ``connected``,
``connected_many``, ``batch_session``, ``stats() -> OracleStats``,
``close()``, and context-manager use — and answers queries bit-identically
(the conformance suite in ``tests/test_oracle_protocol.py`` enforces this).
Callers program against the protocol; which transport they got is a
deployment detail selected by one URI via :func:`open_oracle`::

    with open_oracle("snapshot:network.ftcs") as oracle:
        oracle.connected_many([("a", "c")], faults=[("b", "c")])

    with open_oracle("tcp://127.0.0.1:7421") as oracle:
        print(oracle.stats().to_prometheus())

Error contract (shared by all transports):

* unknown vertices/edges raise :class:`KeyError`;
* over-budget fault sets raise :class:`ValueError`;
* unreliable decodes raise :class:`~repro.core.query.QueryFailure`;
* everything above is (or is mirrored by) an
  :class:`~repro.errors.OracleError`; the remote transport additionally
  raises :class:`~repro.errors.TransportError` when the *connection* — not
  the query — fails.

The remote transport maps the server's structured error codes onto
``Remote*`` exception classes that inherit from both the local exception type
and :class:`RemoteOracleError` (which preserves the wire ``code``), so
``except KeyError`` and ``except OracleError`` both keep working.

``batch_session(faults)`` pins one fault set on every transport.  The uniform
surface of the returned session is ``num_components()`` / ``num_fragments()``
plus fault-set-pinned queries; local transports return the label-level
:class:`~repro.core.batch.BatchQuerySession` itself (with its identity-cached
LRU semantics), while the remote transport returns a
:class:`RemoteBatchSession` backed by the server's ``session_info`` op.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import (TYPE_CHECKING, Any, Callable, Hashable, Iterable, Mapping,
                    Protocol, Sequence, cast, runtime_checkable)

from repro.core.config import (FTCConfig, SchemeVariant, resolve_build_executor,
                               resolve_ftc_config)
from repro.core.query import QueryFailure
from repro.core.serialize import LabelDecodeError
from repro.errors import (DeltaError, OracleClosedError, OracleError,
                          TransportError)
# The Prometheus text-exposition helpers live in repro.obs.prometheus so the
# metrics registry, the /metrics sidecar, and this facade render one format
# (repro.obs imports nothing from this module — the dependency is one-way).
from repro.obs.prometheus import (render_gauge_families,
                                  sanitize_metric_name as _prom_metric_name,
                                  walk_numeric as _prom_walk)

if TYPE_CHECKING:
    from repro.server.client import QueryClient, ServerError

Vertex = Hashable

#: The transport tags, in the order the conformance suite exercises them.
TRANSPORTS = ("build", "snapshot", "pool", "tcp")


# ------------------------------------------------------------------- stats

@dataclass(frozen=True)
class OracleStats:
    """The normalized ``stats()`` payload of every oracle transport.

    ``extra`` carries transport-specific detail (the remote transport puts
    the server's full metrics snapshot under ``extra["server"]``); everything
    else is uniform, so dashboards and the conformance suite read one shape.
    """

    transport: str
    max_faults: int
    vertices: int | None = None
    edges: int | None = None
    queries_answered: int | None = None
    variant: str | None = None
    session_cache: Mapping | None = None
    extra: Mapping = dataclass_field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-ready view (what the CLI's ``--json`` mode prints)."""
        payload: dict = {"transport": self.transport, "max_faults": self.max_faults}
        for name in ("vertices", "edges", "queries_answered", "variant"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.session_cache is not None:
            payload["session_cache"] = dict(self.session_cache)
        if self.extra:
            payload["extra"] = {key: value for key, value in self.extra.items()}
        return payload

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render as Prometheus text exposition format (one gauge per leaf).

        Counter-style dicts keyed ``*_by_op`` / ``*_by_code`` become labeled
        families (``repro_server_requests{op="connected_many"} 5``); the
        transport and variant ride on ``<prefix>_oracle_info``.
        """
        families: dict[str, list] = {}

        def add(parts: list, labels: list, value: Any) -> None:
            families.setdefault(_prom_metric_name(parts), []).append(
                (tuple(labels), value))

        base = [prefix, "oracle"]
        add(base + ["max_faults"], [], self.max_faults)
        for name in ("vertices", "edges", "queries_answered"):
            value = getattr(self, name)
            if value is not None:
                add(base + [name], [], value)
        info_labels = [("transport", self.transport)]
        if self.variant is not None:
            info_labels.append(("variant", self.variant))
        add(base + ["info"], info_labels, 1)
        if self.session_cache is not None:
            _prom_walk([prefix, "session_cache"], [], self.session_cache, add)
        for key, value in (self.extra or {}).items():
            _prom_walk([prefix, str(key)], [], value, add)

        return "\n".join(render_gauge_families(families)) + "\n"


def local_oracle_stats(oracle: Any, session_cache: Mapping) -> OracleStats:
    """Assemble :class:`OracleStats` for an in-process transport.

    Shared by the "build" and "snapshot" oracles so the normalized shape is
    defined exactly once; ``oracle`` supplies ``transport``, ``config``,
    ``num_vertices``/``num_edges``, and ``queries_answered``.
    """
    return OracleStats(
        transport=oracle.transport,
        max_faults=oracle.config.max_faults,
        vertices=oracle.num_vertices(),
        edges=oracle.num_edges(),
        queries_answered=oracle.queries_answered,
        variant=oracle.config.variant.value,
        session_cache=session_cache,
    )


# ---------------------------------------------------------------- protocol

@runtime_checkable
class OracleProtocol(Protocol):
    """The contract every oracle transport satisfies.

    ``isinstance(obj, OracleProtocol)`` checks the surface at runtime; the
    conformance suite additionally checks *behavior* (bit-identical answers,
    shared error contract) across all three transports.
    """

    transport: str
    max_faults: int

    def connected(self, s: Vertex, t: Vertex, faults: Iterable = ()) -> bool: ...

    def connected_many(self, pairs: Sequence[tuple],
                       faults: Iterable = ()) -> list: ...

    def batch_session(self, faults: Iterable = ()) -> Any:
        """Pin one fault set; the returned session's *uniform* surface is
        ``num_components()`` / ``num_fragments()``.  Query methods on the
        session are transport-specific — local transports expose the
        label-level :class:`~repro.core.batch.BatchQuerySession`, the remote
        transport a vertex-level :class:`RemoteBatchSession` — so portable
        callers query through the oracle's own ``connected_many`` instead."""
        ...

    def stats(self) -> OracleStats: ...

    def close(self) -> None: ...

    def __enter__(self) -> Any: ...

    def __exit__(self, *exc_info: Any) -> None: ...


# --------------------------------------------------------- remote transport

class RemoteOracleError(OracleError):
    """A structured server-side error, mapped into the local hierarchy.

    ``code`` preserves the wire error code (``unknown-vertex``,
    ``over-budget``, ...); subclasses additionally inherit the builtin type
    local transports raise for the same condition, so one ``except`` clause
    covers every transport.
    """

    def __init__(self, code: str, message: str):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.message = message


#: Builtin exception types all define ``__init__``/``__str__`` in their own
#: class dict, so without these explicit bindings the MRO would pick
#: ``KeyError.__init__`` over :class:`RemoteOracleError`'s and drop ``code``.

class RemoteLookupError(KeyError, RemoteOracleError):
    """Unknown vertex or edge (the local transports raise ``KeyError``)."""

    __init__ = RemoteOracleError.__init__
    __str__ = Exception.__str__


class RemoteBudgetError(ValueError, RemoteOracleError):
    """Fault set exceeds the scheme's budget (locally a ``ValueError``)."""

    __init__ = RemoteOracleError.__init__


class RemoteQueryFailure(QueryFailure, RemoteOracleError):
    """Server-side :class:`~repro.core.query.QueryFailure` (randomized labels)."""

    __init__ = RemoteOracleError.__init__


class RemoteDecodeError(LabelDecodeError, RemoteOracleError):
    """Server-side label corruption (locally a ``LabelDecodeError``)."""

    __init__ = RemoteOracleError.__init__


def map_server_error(error: "ServerError") -> RemoteOracleError:
    """Translate a client :class:`~repro.server.client.ServerError` into the
    shared hierarchy, preserving the wire code."""
    from repro.server import protocol as wire

    mapping: dict[str, type[RemoteOracleError]] = {
        wire.E_UNKNOWN_VERTEX: RemoteLookupError,
        wire.E_UNKNOWN_EDGE: RemoteLookupError,
        wire.E_OVER_BUDGET: RemoteBudgetError,
        wire.E_QUERY_FAILED: RemoteQueryFailure,
        wire.E_DECODE: RemoteDecodeError,
    }
    exception_class = mapping.get(error.code, RemoteOracleError)
    return exception_class(error.code, error.message)


class RemoteBatchSession:
    """A fault-set-pinned view of a server-side batch session.

    Created by :meth:`RemoteOracle.batch_session`; the server has already
    built (or reused) the shared :class:`~repro.core.batch.BatchQuerySession`
    for this fault set, so the structure counts are local reads and every
    query rides the existing session via the pinned fault list.  Unlike the
    local label-level session, ``connected``/``connected_many`` here take
    vertex ids — the protocol's uniform session surface is the structure
    counts plus fault-set-pinned querying.
    """

    def __init__(self, oracle: "RemoteOracle", faults: list, info: Mapping):
        self._oracle = oracle
        self._faults = list(faults)
        self._info = dict(info)

    def connected(self, s: Vertex, t: Vertex) -> bool:
        return self._oracle.connected(s, t, self._faults)

    def connected_many(self, pairs: Sequence[tuple]) -> list:
        return self._oracle.connected_many(pairs, self._faults)

    def num_components(self) -> int:
        return cast(int, self._info.get("num_components"))

    def num_fragments(self) -> int:
        return cast(int, self._info.get("num_fragments"))


class RemoteOracle:
    """The "tcp" transport: an oracle served by a :mod:`repro.server` process.

    Wraps the blocking :class:`~repro.server.client.QueryClient`; every
    server-side error is mapped into the shared hierarchy by
    :func:`map_server_error`, and transport failures (connection refused or
    lost, non-protocol bytes, use after ``close()``) raise
    :class:`~repro.errors.TransportError`.  Like the underlying client, one
    instance belongs to one thread.
    """

    #: Transport tag of the oracle protocol.
    transport = "tcp"

    def __init__(self, client: "QueryClient", host: str | None = None,
                 port: int | None = None):
        self._client = client
        self.host = host
        self.port = port
        self._closed = False
        self._max_faults: int | None = None

    @classmethod
    def connect(cls, host: str, port: int, timeout: float = 30.0) -> "RemoteOracle":
        from repro.server.client import QueryClient

        try:
            client = QueryClient(host, port, timeout=timeout)
        except OSError as error:
            raise TransportError("cannot connect to %s:%d: %s"
                                 % (host, port, error)) from error
        oracle = cls(client, host, port)
        # Prime max_faults now: on Python < 3.12, a runtime_checkable
        # isinstance(oracle, OracleProtocol) probes the max_faults property
        # with getattr, and a property that performed I/O would turn a type
        # check into a network round-trip (or a TransportError).  One stats
        # call here makes the property a cached read for the oracle's
        # lifetime — it also validates that the endpoint speaks the protocol.
        oracle.stats()
        return oracle

    # ------------------------------------------------------------- plumbing

    def _call(self, method: Callable[..., Any], *args: Any) -> Any:
        from repro.server.client import ProtocolViolation, ServerError

        if self._closed:
            raise TransportError("remote oracle %s:%s is closed" % (self.host, self.port))
        try:
            return method(*args)
        except ServerError as error:
            raise map_server_error(error) from error
        except ProtocolViolation as error:
            raise TransportError("endpoint %s:%s broke protocol: %s"
                                 % (self.host, self.port, error)) from error
        except OSError as error:
            raise TransportError("connection to %s:%s failed: %s"
                                 % (self.host, self.port, error)) from error

    # -------------------------------------------------------------- queries

    def connected(self, s: Vertex, t: Vertex, faults: Iterable = ()) -> bool:
        return cast(bool, self._call(self._client.connected, s, t, list(faults)))

    def connected_many(self, pairs: Sequence[tuple],
                       faults: Iterable = ()) -> list:
        return cast(list, self._call(self._client.connected_many,
                                     list(pairs), list(faults)))

    def batch_session(self, faults: Iterable = ()) -> RemoteBatchSession:
        fault_list = list(faults)
        info = self._call(self._client.session_info, fault_list)
        return RemoteBatchSession(self, fault_list, info)

    # ---------------------------------------------------------------- stats

    def ping(self) -> dict:
        return cast(dict, self._call(self._client.ping))

    @property
    def last_trace(self) -> Any:
        """The trace echo of the most recent server response (or None)."""
        return getattr(self._client, "last_trace", None)

    def server_stats(self) -> dict:
        """The raw ``stats`` wire payload (``{"server": ..., "oracle": ...}``)."""
        return cast(dict, self._call(self._client.stats))

    def reload(self, token: str, path: str | None = None) -> dict:
        """Ask the server to hot-swap its snapshot (zero downtime).

        Requires the server's configured ``--reload-token``; ``path``, if
        given, must equal the server's snapshot path.  Returns the reload
        report (new ``epoch``, ``rewarmed_sessions``, ...).  Unauthorized or
        failed reloads surface as :class:`RemoteOracleError` with the wire
        code preserved (``reload-forbidden`` / ``reload-failed``).
        """
        return cast(dict, self._call(self._client.reload, token, path))

    def stats(self) -> OracleStats:
        payload = self.server_stats()
        server = payload.get("server") or {}
        oracle = payload.get("oracle") or {}
        if isinstance(oracle.get("max_faults"), int):
            self._max_faults = oracle["max_faults"]
        # Keys promoted to normalized OracleStats fields are dropped from the
        # embedded server snapshot, so to_dict()/to_prometheus() report each
        # counter exactly once.
        residual = {key: value for key, value in server.items()
                    if key not in ("session_cache", "queries_answered")}
        return OracleStats(
            transport=self.transport,
            max_faults=oracle.get("max_faults", -1),
            vertices=oracle.get("vertices"),
            edges=oracle.get("edges"),
            queries_answered=server.get("queries_answered"),
            variant=oracle.get("variant"),
            session_cache=server.get("session_cache"),
            extra={"server": residual},
        )

    @property
    def max_faults(self) -> int:
        """The served scheme's fault budget (fetched once, then cached)."""
        if self._max_faults is None:
            self.stats()
        if self._max_faults is None:
            raise TransportError("server at %s:%s did not report max_faults"
                                 % (self.host, self.port))
        return self._max_faults

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Close the connection.  Idempotent, even on a dead socket."""
        if self._closed:
            return
        self._closed = True
        self._client.close()

    def __enter__(self) -> "RemoteOracle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------- factories

class Oracle:
    """The factory surface of the oracle protocol — not instantiable.

    ``Oracle.build`` constructs labels in process, ``Oracle.load`` rehydrates
    a snapshot, ``Oracle.connect`` dials a server.  All three return objects
    satisfying :class:`OracleProtocol`.
    """

    def __new__(cls, *args: Any, **kwargs: Any) -> "Oracle":
        raise TypeError("Oracle is a factory namespace; use Oracle.build(...), "
                        "Oracle.load(...), or Oracle.connect(...)")

    @staticmethod
    def build(graph: Any, max_faults: int | None = None, *,
              config: FTCConfig | None = None,
              variant: SchemeVariant | str | None = None,
              random_seed: int | None = None,
              use_fast_engine: bool = True,
              executor: Any = None, jobs: int | None = None,
              **overrides: Any) -> Any:
        """Construct labels for ``graph`` and return the "build" transport.

        Configuration is normalized through
        :func:`~repro.core.config.resolve_ftc_config`: pass either
        ``config=FTCConfig(...)`` or loose parameters, not both.  Construction
        itself runs through the staged plan of :mod:`repro.build`;
        ``executor`` / ``jobs`` select the execution strategy (``jobs=4``
        fans the outdetect shards out to four processes) via
        :func:`~repro.core.config.resolve_build_executor` — the labels are
        byte-identical whichever strategy runs.
        """
        from repro.core.oracle import FTConnectivityOracle

        resolved = resolve_ftc_config(max_faults=max_faults, config=config,
                                      variant=variant, random_seed=random_seed,
                                      **overrides)
        return FTConnectivityOracle(graph, config=resolved,
                                    use_fast_engine=use_fast_engine,
                                    executor=resolve_build_executor(executor, jobs))

    @staticmethod
    def load(source: Any) -> Any:
        """Rehydrate the "snapshot" transport from ``FTCS`` bytes or a path."""
        from repro.core.snapshot import load_snapshot

        return load_snapshot(source)

    @staticmethod
    def pool(path: Any, workers: int | None = None) -> Any:
        """Serve a snapshot *file* through a process pool (the "pool" transport).

        Each pool worker loads ``path`` independently, so a version-2
        (mmap layout) artifact is one page-cached copy shared by all of
        them.  ``workers`` defaults to the machine's CPU count.
        """
        from repro.pool import PooledOracle

        return PooledOracle(path, workers=workers)

    @staticmethod
    def build_delta(base: Any, graph: Any = None, *,
                    add_edges: Iterable = (), remove_edges: Iterable = (),
                    use_fast_engine: bool = True,
                    executor: Any = None, jobs: int | None = None) -> Any:
        """Rebuild a "build" transport oracle after a graph edit, incrementally.

        ``base`` is an oracle from :meth:`Oracle.build`; pass either the full
        target ``graph`` or the edit itself (``add_edges`` /
        ``remove_edges``).  Labels are reconstructed through
        :func:`repro.delta.incremental.incremental_labeling`, which patches
        every base level whose structure survived the edit and falls back to
        normal shard construction where it did not — the result (and its
        snapshot) is byte-identical to a from-scratch build either way.
        """
        from repro.core.oracle import FTConnectivityOracle
        from repro.delta.incremental import incremental_labeling

        if getattr(base, "labeling", None) is None or \
                getattr(base, "graph", None) is None:
            raise DeltaError(
                "build_delta needs a 'build' transport oracle (Oracle.build): "
                "the %r transport carries labels only, not the graph and "
                "build structures an incremental rebuild patches"
                % getattr(base, "transport", "unknown"))
        labeling = incremental_labeling(base.labeling, graph,
                                        add_edges=add_edges,
                                        remove_edges=remove_edges,
                                        executor=resolve_build_executor(executor, jobs))
        return FTConnectivityOracle.from_labeling(labeling.graph, labeling,
                                                  use_fast_engine=use_fast_engine)

    @staticmethod
    def connect(host: str, port: int, timeout: float = 30.0) -> RemoteOracle:
        """Dial a running :mod:`repro.server` and return the "tcp" transport."""
        return RemoteOracle.connect(host, port, timeout=timeout)


def parse_oracle_uri(uri: str) -> tuple:
    """Split an oracle URI into ``(kind, rest)``.

    Accepted forms: ``snapshot:PATH``, ``pool:PATH``, ``tcp://HOST:PORT``,
    ``build:PATH`` (an edge-list file; the empty path means "caller supplies
    the graph"), and — as a convenience — a bare path ending in ``.ftcs``.
    ``build:`` URIs additionally accept a query string of construction
    options (``build:edges.txt?jobs=4``), split off by
    :func:`parse_build_query`; ``pool:`` URIs accept ``?workers=N``, split
    off by :func:`parse_pool_query`.
    """
    if not isinstance(uri, str):
        raise TypeError("oracle URI must be a string, got %r" % type(uri).__name__)
    for scheme, kind in (("tcp://", "tcp"), ("snapshot:", "snapshot"),
                         ("pool:", "pool"), ("build:", "build")):
        if uri.startswith(scheme):
            return kind, uri[len(scheme):]
    if uri.endswith(".ftcs"):
        return "snapshot", uri
    raise ValueError("unsupported oracle URI %r (expected snapshot:PATH, "
                     "pool:PATH, tcp://HOST:PORT, or build:EDGELIST)" % (uri,))


def parse_build_query(rest: str) -> tuple:
    """Split a ``build:`` URI remainder into ``(path, options)``.

    The query string accepts ``jobs=N`` (a positive integer) and
    ``executor=SPEC`` (a :func:`~repro.core.config.resolve_build_executor`
    spec such as ``process:4``); anything else is a :class:`ValueError`, so
    typos fail loudly instead of silently building serially.
    """
    path, separator, query = rest.partition("?")
    options: dict = {}
    if not separator:
        return path, options
    for item in query.split("&"):
        if not item:
            continue
        key, equals, value = item.partition("=")
        if key == "jobs" and equals:
            if not value.isdigit() or int(value) < 1:
                raise ValueError("build: oracle URI option jobs=%r must be a "
                                 "positive integer" % value)
            options["jobs"] = int(value)
        elif key == "executor" and equals and value:
            options["executor"] = value
        else:
            raise ValueError("unsupported build: oracle URI option %r "
                             "(expected jobs=N and/or executor=SPEC)" % item)
    return path, options


def parse_pool_query(rest: str) -> tuple:
    """Split a ``pool:`` URI remainder into ``(path, options)``.

    The query string accepts ``workers=N`` (a positive integer — the process
    pool size; default lets the pool match the CPU count); anything else is
    a :class:`ValueError`, so typos fail loudly instead of silently serving
    from one process.
    """
    path, separator, query = rest.partition("?")
    options: dict = {}
    if not separator:
        return path, options
    for item in query.split("&"):
        if not item:
            continue
        key, equals, value = item.partition("=")
        if key == "workers" and equals:
            if not value.isdigit() or int(value) < 1:
                raise ValueError("pool: oracle URI option workers=%r must be "
                                 "a positive integer" % value)
            options["workers"] = int(value)
        else:
            raise ValueError("unsupported pool: oracle URI option %r "
                             "(expected workers=N)" % item)
    return path, options


def open_oracle(uri: str, *, graph: Any = None,
                config: FTCConfig | None = None,
                max_faults: int | None = None,
                variant: SchemeVariant | str | None = None,
                random_seed: int | None = None, timeout: float = 30.0,
                executor: Any = None, jobs: int | None = None) -> Any:
    """Open an oracle by URI — the CLI's one-flag transport selection.

    * ``snapshot:network.ftcs`` (or a bare ``*.ftcs`` path) →
      :meth:`Oracle.load`;
    * ``pool:network.ftcs?workers=4`` → :meth:`Oracle.pool` (a process pool
      answering queries over the same snapshot file; ``workers`` defaults to
      the CPU count);
    * ``tcp://127.0.0.1:7421`` → :meth:`Oracle.connect`;
    * ``build:edges.txt`` → read the edge list and :meth:`Oracle.build` with
      the given construction parameters (``build:`` with an empty path uses
      the ``graph=`` keyword instead).  A query string selects the build
      executor — ``build:edges.txt?jobs=4`` shards label construction across
      four processes (``executor=thread:2`` etc. also accepted); each URI
      option replaces the same-named keyword, and the combined result goes
      through :func:`~repro.build.executors.resolve_executor`, which raises
      ``ValueError`` on genuine conflicts (e.g. ``?executor=process:2`` with
      ``jobs=4``).  On ``snapshot:`` / ``pool:`` / ``tcp://`` URIs the
      ``executor=`` / ``jobs=`` keywords raise ``ValueError`` — construction
      options must never silently do nothing (a pool's parallelism is its
      ``workers=`` option, not a build executor).
    """
    kind, rest = parse_oracle_uri(uri)
    if kind != "build" and (executor is not None or jobs is not None):
        # The PR-wide rule: a construction option must never silently do
        # nothing.  Snapshot and tcp transports serve labels that were
        # already constructed elsewhere.
        raise ValueError("executor=/jobs= apply only to build: oracle URIs; "
                         "the %s transport serves already-constructed labels"
                         % kind)
    if kind == "tcp":
        host, separator, port = rest.rpartition(":")
        if not separator or not port.isdigit():
            raise ValueError("tcp:// oracle URI needs HOST:PORT, got %r" % (uri,))
        if host.startswith("[") and host.endswith("]"):
            host = host[1:-1]  # bracketed IPv6 literal: tcp://[::1]:7421
        return Oracle.connect(host or "127.0.0.1", int(port), timeout=timeout)
    if kind == "snapshot":
        if not rest:
            raise ValueError("snapshot: oracle URI needs a path")
        return Oracle.load(rest)
    if kind == "pool":
        pool_path, pool_options = parse_pool_query(rest)
        if not pool_path:
            raise ValueError("pool: oracle URI needs a snapshot path")
        return Oracle.pool(pool_path, workers=pool_options.get("workers"))
    path, options = parse_build_query(rest)
    executor = options.get("executor", executor)
    jobs = options.get("jobs", jobs)
    if path:
        from repro.graphs.graph import read_edge_list

        graph = read_edge_list(path)
    if graph is None:
        raise ValueError("build: oracle URI needs an edge-list path or graph=")
    return Oracle.build(graph, max_faults=max_faults, config=config,
                        variant=variant, random_seed=random_seed,
                        executor=executor, jobs=jobs)


def upgrade_snapshot(source: Any, destination: Any) -> dict:
    """Rewrite a version-1 ``FTCS`` artifact as version 2 (the mmap layout).

    Facade over :func:`repro.core.snapshot.upgrade_snapshot_file` (the CLI's
    ``snapshot-upgrade`` goes through here — seam discipline keeps it off
    ``repro.core``).  Returns the converter's summary dict: source and
    destination paths, format versions, output size, and label counts.  The
    answers served from either artifact are bit-identical; version 2 adds the
    page-aligned label region that lets :meth:`Oracle.load` mmap the file.
    """
    from repro.core.snapshot import upgrade_snapshot_file

    return upgrade_snapshot_file(source, destination)


def diff_snapshots(base: Any, target: Any, destination: Any) -> dict:
    """Write the ``FTCS-D`` delta that patches ``base`` into ``target``.

    Facade over :func:`repro.delta.format.diff_snapshot_files` (the CLI's
    ``snapshot-diff`` goes through here — seam discipline keeps it off
    ``repro.delta`` internals).  The produced artifact is fail-closed: before
    anything is written it is applied in memory and the reconstruction is
    compared byte-for-byte against ``target``.  Returns the differ's summary
    dict (paths, sizes, per-section change counts).
    """
    from repro.delta import diff_snapshot_files

    return diff_snapshot_files(base, target, destination)


def apply_delta(base: Any, delta: Any, destination: Any) -> dict:
    """Reconstruct a target snapshot from ``base`` plus an ``FTCS-D`` delta.

    Facade over :func:`repro.delta.format.apply_delta_file` (the CLI's
    ``snapshot-apply``).  Fail-closed: the delta records the SHA-256 of both
    endpoints, a mismatched base or a reconstruction that does not hash to
    the recorded target raises :class:`~repro.errors.DeltaError` and nothing
    is written.  Returns the summary dict of the reconstruction.
    """
    from repro.delta import apply_delta_file

    return apply_delta_file(base, delta, destination)


__all__ = [
    "Oracle",
    "OracleProtocol",
    "OracleStats",
    "OracleError",
    "OracleClosedError",
    "DeltaError",
    "TransportError",
    "apply_delta",
    "diff_snapshots",
    "RemoteOracle",
    "RemoteBatchSession",
    "RemoteOracleError",
    "RemoteLookupError",
    "RemoteBudgetError",
    "RemoteQueryFailure",
    "RemoteDecodeError",
    "QueryFailure",
    "TRANSPORTS",
    "local_oracle_stats",
    "map_server_error",
    "open_oracle",
    "parse_build_query",
    "parse_oracle_uri",
    "parse_pool_query",
    "upgrade_snapshot",
]
