"""``repro serve --workers N``: a fleet of query servers on one port.

One parent process reserves the serving port with ``SO_REUSEPORT``, forks N
worker processes, and each worker runs the ordinary
:func:`~repro.server.server.run_server` loop against its own copy of the
snapshot — joined to the shared listener group, so the kernel load-balances
accepted connections across workers with no user-space proxy in the path.
With a version-2 (mmap layout) snapshot the "copy" per worker is an mmap of
the same file: the label bytes are one page-cached region shared by the
whole fleet.

Division of labor:

* **Parent** — owns the port reservation (bound, never listening, so it
  receives no connections), collects per-worker readiness events, prints the
  combined ``serving`` announcement, relays SIGTERM/SIGINT to the fleet, and
  reaps it.
* **Workers** — everything else: each has its own event loop, session
  manager, ``/metrics`` + ``/healthz`` sidecar (port ``--metrics-port + i``,
  or ephemeral), and stamps ``server_worker_info{worker="i"}`` so scrapes
  identify the process.  All workers share one pre-warm sidecar file
  (:mod:`repro.pool.prewarm`) keyed by the snapshot path.

``SO_REUSEPORT`` is required (Linux ≥ 3.9, modern BSDs/macOS); platforms
without it get an :class:`OSError` at startup rather than a degraded
single-socket fallback.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import sys
import threading
from typing import Any, Callable, Mapping

from repro.errors import TransportError
from repro.pool.prewarm import hot_keys_path

#: How long the parent waits for every worker's readiness event.  Generous:
#: workers pre-warm their hottest sessions before announcing, and session
#: construction can take seconds each; dead children still fail fast.
READY_TIMEOUT_SECONDS = 300.0

#: Grace period between SIGTERM fan-out and SIGKILL escalation.
SHUTDOWN_GRACE_SECONDS = 10.0


def _reserve_port(host: str, port: int) -> socket.socket:
    """Bind ``(host, port)`` with ``SO_REUSEPORT`` and hold the reservation.

    The socket never listens — it exists so an ephemeral ``port=0`` resolves
    to one concrete port before any worker starts, and so the port cannot be
    claimed by an unrelated process between worker launches.  Raises
    :class:`OSError` where ``SO_REUSEPORT`` is unavailable.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        raise OSError("repro serve --workers requires SO_REUSEPORT, "
                      "which this platform does not provide")
    reservation = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        reservation.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        reservation.bind((host, port))
    except OSError:
        reservation.close()
        raise
    return reservation


def _worker_metrics_port(base: int | None, worker_index: int) -> int | None:
    """The sidecar port for one worker: disabled, ephemeral, or ``base + i``."""
    if base is None:
        return None
    if base == 0:
        return 0
    return base + worker_index


def _worker_entry(snapshot_path: str, host: str, port: int,
                  worker_index: int, ready_queue: Any,
                  max_sessions: int | None, max_request_bytes: int,
                  jobs: int | None, metrics_port: int | None,
                  prewarm_top: int | None,
                  reload_token: str | None = None,
                  rewarm_interval: float | None = None) -> None:
    """Worker process body: load the snapshot, run the ordinary server loop.

    Module-level (not a closure) so the fleet also works under the ``spawn``
    start method.  Readiness — or a startup failure — is reported through
    ``ready_queue``; after that the worker is indistinguishable from a plain
    ``repro serve`` process until the parent's SIGTERM arrives.
    """
    from repro.api import Oracle
    from repro.server.server import run_server

    try:
        oracle = Oracle.load(snapshot_path)
    except Exception as error:  # startup triage: report, don't hang the parent
        ready_queue.put({"event": "worker-failed", "worker": worker_index,
                         "error": "%s: %s" % (type(error).__name__, error)})
        raise
    code = run_server(
        oracle, host=host, port=port, max_sessions=max_sessions,
        max_request_bytes=max_request_bytes, jobs=jobs,
        announce=ready_queue.put, metrics_port=metrics_port,
        reuse_port=True, worker_index=worker_index,
        hot_keys_file=hot_keys_path(snapshot_path), prewarm_top=prewarm_top,
        snapshot_path=snapshot_path, reload_token=reload_token,
        rewarm_interval=rewarm_interval)
    sys.exit(code)


def _collect_ready_events(ready_queue: Any, processes: list,
                          workers: int) -> list[dict]:
    """Wait for one readiness event per worker; fail fast on a dead child."""
    import queue as queue_module
    import time

    deadline = time.monotonic() + READY_TIMEOUT_SECONDS
    events: list[dict] = []
    while len(events) < workers:
        if time.monotonic() > deadline:
            raise TransportError(
                "serving workers not ready after %.0fs (%d of %d reported)"
                % (READY_TIMEOUT_SECONDS, len(events), workers))
        try:
            event = ready_queue.get(timeout=1.0)
        except queue_module.Empty:
            dead = [process for process in processes if not process.is_alive()]
            if dead:
                raise TransportError(
                    "%d serving worker(s) exited before becoming ready"
                    % len(dead))
            continue
        if event.get("event") == "worker-failed":
            raise TransportError("serving worker %s failed to start: %s"
                                 % (event.get("worker"), event.get("error")))
        events.append(event)
    return events


def _terminate_fleet(processes: list) -> None:
    """SIGTERM every live worker, wait out the grace period, then SIGKILL."""
    for process in processes:
        if process.is_alive():
            process.terminate()
    deadline_per_child = SHUTDOWN_GRACE_SECONDS / max(len(processes), 1)
    for process in processes:
        process.join(timeout=deadline_per_child)
    for process in processes:
        if process.is_alive():
            process.kill()
            process.join()


def run_pooled_server(snapshot_path: str, host: str = "127.0.0.1",
                      port: int = 0, workers: int = 2,
                      max_sessions: int | None = None,
                      max_request_bytes: int | None = None,
                      jobs: int | None = None,
                      metrics_port: int | None = None,
                      announce: Callable[[Mapping], None] | None = None,
                      prewarm_top: int | None = None,
                      reload_token: str | None = None,
                      rewarm_interval: float | None = None) -> int:
    """Blocking entry point behind ``repro serve --workers N``.

    Announces one combined event once every worker is ready::

        {"event": "serving", "host": ..., "port": ..., "workers": N,
         "metrics_ports": [...], "max_faults": f, "prewarmed_sessions": [...]}

    then serves until SIGTERM/SIGINT and returns a process exit code (0 for
    a clean shutdown, the first non-zero worker exit code otherwise).
    Workers pre-warm the snapshot's hot-key sidecar file on start and the
    first worker to exit cleanly refreshes it, so restarts of the fleet —
    and later single-process serves of the same snapshot — start warm.

    SIGHUP to the parent is relayed to every live worker, so one signal
    hot-swaps the whole fleet onto the rewritten snapshot file with zero
    dropped connections (each worker swaps independently; see
    :meth:`repro.server.server.QueryServer.reload_snapshot`).
    """
    from repro.server import protocol

    if workers < 1:
        raise ValueError("workers must be at least 1, got %d" % workers)
    if max_request_bytes is None:
        max_request_bytes = protocol.MAX_REQUEST_BYTES
    snapshot_path = str(snapshot_path)
    if not os.path.exists(snapshot_path):
        raise FileNotFoundError(snapshot_path)

    reservation = _reserve_port(host, port)
    try:
        bound_host, bound_port = reservation.getsockname()[:2]
        context = multiprocessing.get_context()
        ready_queue = context.Queue()
        processes = [
            context.Process(
                target=_worker_entry,
                args=(snapshot_path, bound_host, bound_port, index,
                      ready_queue, max_sessions, max_request_bytes, jobs,
                      _worker_metrics_port(metrics_port, index), prewarm_top,
                      reload_token, rewarm_interval),
                name="repro-serve-%d" % index, daemon=False)
            for index in range(workers)
        ]
        for process in processes:
            process.start()
        try:
            ready = _collect_ready_events(ready_queue, processes, workers)
        except TransportError:
            _terminate_fleet(processes)
            raise
        ready.sort(key=lambda event: event.get("worker", 0))
        if announce is not None:
            event: dict = {"event": "serving", "host": bound_host,
                           "port": bound_port, "workers": workers,
                           "max_faults": ready[0].get("max_faults")}
            metrics_ports = [entry["metrics_port"] for entry in ready
                             if "metrics_port" in entry]
            if metrics_ports:
                event["metrics_ports"] = metrics_ports
            prewarmed = [entry["prewarmed_sessions"] for entry in ready
                         if "prewarmed_sessions" in entry]
            if prewarmed:
                event["prewarmed_sessions"] = prewarmed
            announce(event)

        stop = threading.Event()

        def _handle_stop(signum: int, frame: Any) -> None:
            stop.set()

        previous_handlers = {
            signum: signal.signal(signum, _handle_stop)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }

        def _handle_reload(signum: int, frame: Any) -> None:
            # Relay only: each worker performs its own swap, so a worker
            # mid-request simply swaps a moment later than its siblings.
            for process in processes:
                if process.is_alive() and process.pid is not None:
                    os.kill(process.pid, signal.SIGHUP)

        if hasattr(signal, "SIGHUP"):
            previous_handlers[signal.SIGHUP] = \
                signal.signal(signal.SIGHUP, _handle_reload)
        try:
            # Wake periodically to notice a worker that died on its own —
            # the fleet degrades to full restart, never to silent capacity
            # loss behind one port.
            while not stop.is_set():
                stop.wait(timeout=1.0)
                if any(not process.is_alive() for process in processes):
                    break
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
        _terminate_fleet(processes)
        exit_codes = [process.exitcode or 0 for process in processes]
        # SIGTERM is the normal shutdown path, not a failure.
        failures = [code for code in exit_codes
                    if code not in (0, -signal.SIGTERM)]
        return failures[0] if failures else 0
    finally:
        reservation.close()


def print_announce(event: Mapping) -> None:
    """Default announce hook: one JSON line on stdout (what scripts grep)."""
    print(json.dumps(dict(event), sort_keys=True), flush=True)


__all__ = ["run_pooled_server", "print_announce", "READY_TIMEOUT_SECONDS",
           "SHUTDOWN_GRACE_SECONDS"]
