"""The "pool" transport: one snapshot served by a process pool.

A :class:`PooledOracle` satisfies the same
:class:`~repro.api.OracleProtocol` as the build/snapshot/tcp transports, but
answers queries in a :class:`~concurrent.futures.ProcessPoolExecutor` whose
workers each hold the *same* snapshot — loaded by path, so a v2 (mmap
layout) artifact is one page-cached copy shared by every worker, not N
resident copies.  This sidesteps the GIL for CPU-bound decode work while
keeping the caller's surface synchronous and local.

Error contract: worker-side exceptions (``KeyError`` for unknown ids,
``ValueError`` for over-budget fault sets, ``QueryFailure``,
``LabelDecodeError``) pickle back and re-raise in the caller unchanged, so
the conformance suite's shared expectations hold.  A crashed worker pool
surfaces as :class:`~repro.errors.TransportError`; queries after ``close()``
raise :class:`~repro.errors.OracleClosedError` — the same post-close
contract as the remote transport.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence, cast

from repro.errors import OracleClosedError, TransportError

Vertex = Hashable

# ----------------------------------------------------------- worker process
#
# Each pool worker loads the snapshot once (initializer) into a module
# global, then answers plain-data requests against it.  Only module-level
# functions and picklable arguments cross the process boundary, so the pool
# works under fork and spawn start methods alike.

_worker_oracle: Any = None


def _pool_initializer(path: str) -> None:
    global _worker_oracle
    from repro.api import Oracle

    _worker_oracle = Oracle.load(path)


def _worker_connected_many(pairs: list, faults: list) -> list:
    return list(_worker_oracle.connected_many(pairs, faults))


def _worker_session_info(faults: list) -> dict:
    session = _worker_oracle.batch_session(faults)
    return {"num_components": session.num_components(),
            "num_fragments": session.num_fragments()}


# ------------------------------------------------------------- the transport

class PooledBatchSession:
    """A fault-set-pinned view over the pool (mirrors ``RemoteBatchSession``).

    The structure counts were computed by a worker when the session was
    created; queries ride the pool via the pinned fault list, hitting
    whichever worker's session cache is free.
    """

    def __init__(self, oracle: "PooledOracle", faults: list, info: Mapping):
        self._oracle = oracle
        self._faults = list(faults)
        self._info = dict(info)

    def connected(self, s: Vertex, t: Vertex) -> bool:
        return self._oracle.connected(s, t, self._faults)

    def connected_many(self, pairs: Sequence[tuple]) -> list:
        return self._oracle.connected_many(pairs, self._faults)

    def num_components(self) -> int:
        return cast(int, self._info.get("num_components"))

    def num_fragments(self) -> int:
        return cast(int, self._info.get("num_fragments"))


class PooledOracle:
    """Fan ``connected_many`` / ``batch_session`` out to snapshot workers.

    ``path`` must be a snapshot *file* (workers re-load it by path; bytes
    would be pickled to every worker, defeating the shared page cache).  The
    parent also loads the snapshot once for metadata (``max_faults``,
    vertex/edge counts, ``stats()``) — with a v2 artifact that costs an mmap
    and an index parse, not a copy of the labels.
    """

    #: Transport tag of the oracle protocol (:mod:`repro.api`).
    transport = "pool"

    def __init__(self, path: Any, workers: int | None = None):
        if workers is not None and workers < 1:
            raise ValueError("pool workers must be at least 1, got %d" % workers)
        from repro.api import Oracle

        self.path = str(path)
        # Validates the artifact up front: a bad path or corrupt snapshot
        # fails here, in the caller, not later inside a worker.
        self._local = Oracle.load(self.path)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_pool_initializer,
            initargs=(self.path,))
        self._lock = threading.Lock()
        self._queries_answered = 0
        self._closed = False

    # ------------------------------------------------------------- plumbing

    def _run(self, task: Callable[..., Any], *args: Any) -> Any:
        executor = self._executor
        if self._closed or executor is None:
            raise OracleClosedError("pool oracle over %s is closed" % self.path)
        try:
            return executor.submit(task, *args).result()
        except BrokenProcessPool as error:
            raise TransportError("pool worker for %s crashed: %s"
                                 % (self.path, error)) from error

    # -------------------------------------------------------------- queries

    def connected(self, s: Vertex, t: Vertex, faults: Iterable = ()) -> bool:
        return cast(bool, self.connected_many([(s, t)], faults)[0])

    def connected_many(self, pairs: Sequence[tuple],
                       faults: Iterable = ()) -> list:
        answers = cast(list, self._run(_worker_connected_many, list(pairs),
                                       list(faults)))
        with self._lock:
            self._queries_answered += len(answers)
        return answers

    def batch_session(self, faults: Iterable = ()) -> PooledBatchSession:
        fault_list = list(faults)
        info = cast(dict, self._run(_worker_session_info, fault_list))
        return PooledBatchSession(self, fault_list, info)

    # ---------------------------------------------------------------- stats

    @property
    def max_faults(self) -> int:
        return cast(int, self._local.config.max_faults)

    @property
    def queries_answered(self) -> int:
        with self._lock:
            return self._queries_answered

    def stats(self) -> Any:
        """Normalized :class:`~repro.api.OracleStats` for the pool.

        Counts are parent-side (queries routed through this object); the
        session cache reported is the parent's metadata oracle's — worker
        caches are per-process and surface in the served ``/metrics``
        sidecars instead.
        """
        from repro.api import OracleStats

        local = self._local
        with self._lock:
            answered = self._queries_answered
        return OracleStats(
            transport=self.transport,
            max_faults=local.config.max_faults,
            vertices=cast(int, local.num_vertices()),
            edges=cast(int, local.num_edges()),
            queries_answered=answered,
            variant=cast(str, local.config.variant.value),
            session_cache=cast(Mapping, local.session_cache_info()),
            extra={"pool": {"workers": self.workers}},
        )

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Shut the worker pool down and release the metadata oracle.

        Idempotent; queries afterwards raise
        :class:`~repro.errors.OracleClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        self._local.close()

    def __enter__(self) -> "PooledOracle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = ["PooledOracle", "PooledBatchSession"]
