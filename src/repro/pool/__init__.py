"""``repro.pool``: the multi-process serving tier over an mmap-backed snapshot.

Three pieces that turn one snapshot artifact into multi-core capacity:

* :class:`~repro.pool.oracle.PooledOracle` — the ``pool:`` transport of the
  :class:`~repro.api.OracleProtocol`: queries fan out to a process pool whose
  workers each hold the same (page-cache-shared, when version 2) snapshot.
* :func:`~repro.pool.frontend.run_pooled_server` — ``repro serve --workers
  N``: a fleet of ordinary query servers sharing one listening port via
  ``SO_REUSEPORT``, each with its own ``/metrics`` sidecar.
* :mod:`~repro.pool.prewarm` — hot fault-set persistence beside the
  snapshot, so restarted servers (single or fleet) warm their session caches
  before the first client connects.
"""

from repro.pool.frontend import print_announce, run_pooled_server
from repro.pool.oracle import PooledBatchSession, PooledOracle
from repro.pool.prewarm import (
    HOT_KEYS_FORMAT_VERSION,
    HOT_KEYS_SUFFIX,
    hot_keys_path,
    load_hot_fault_sets,
    save_hot_fault_sets,
)

__all__ = [
    "PooledOracle",
    "PooledBatchSession",
    "run_pooled_server",
    "print_announce",
    "hot_keys_path",
    "save_hot_fault_sets",
    "load_hot_fault_sets",
    "HOT_KEYS_SUFFIX",
    "HOT_KEYS_FORMAT_VERSION",
]
