"""Hot-key persistence: carry a server's hottest fault sets across restarts.

The :class:`~repro.server.session_manager.SessionManager` tracks which
canonical fault sets concentrate traffic (``session_hot_keys``).  This module
persists the top of that table *beside the snapshot* — at
``<snapshot>.hotkeys.json`` — on graceful shutdown, so the next run (every
worker of a ``repro serve --workers N`` fleet, or a plain single-process
serve) pre-warms those sessions before the first client connects.

The file is advisory state, never a source of truth: loading is fail-soft
(missing, unreadable, or malformed files yield an empty list and cold-start
behavior), and writing is atomic (temp file + rename), so a crash mid-write
leaves the previous generation intact.  Vertex ids round-trip through JSON,
which covers everything the wire protocol serves (ints and strings).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Sequence

#: Appended to the snapshot path to name its pre-warm sidecar file.
HOT_KEYS_SUFFIX = ".hotkeys.json"

#: Bump when the sidecar payload shape changes; mismatches load as empty.
HOT_KEYS_FORMAT_VERSION = 1


def hot_keys_path(snapshot_path: "str | os.PathLike[str]") -> str:
    """The pre-warm sidecar path for a snapshot artifact."""
    return str(snapshot_path) + HOT_KEYS_SUFFIX


def save_hot_fault_sets(path: "str | os.PathLike[str]",
                        fault_sets: Sequence[Sequence[Any]]) -> int:
    """Atomically persist ``fault_sets``; returns the number written.

    ``fault_sets`` is what
    :meth:`~repro.server.session_manager.SessionManager.hot_fault_sets`
    returns: a ranked list of fault sets, each a list of ``(u, v)`` edges.
    """
    encoded = [[[edge[0], edge[1]] for edge in fault_set]
               for fault_set in fault_sets]
    payload = {"version": HOT_KEYS_FORMAT_VERSION, "fault_sets": encoded}
    target = Path(path)
    temporary = target.with_name(target.name + ".tmp")
    temporary.write_text(json.dumps(payload, sort_keys=True))
    os.replace(temporary, target)
    return len(encoded)


def load_hot_fault_sets(path: "str | os.PathLike[str]") -> list:
    """Load persisted fault sets; fail-soft — any problem yields ``[]``.

    Edges come back as tuples (what ``prewarm_sessions`` and the oracles
    take); a payload that is not exactly the expected shape is rejected
    wholesale rather than partially trusted.
    """
    try:
        raw = Path(path).read_text()
    except OSError:
        return []
    try:
        payload = json.loads(raw)
    except ValueError:
        return []
    if not isinstance(payload, dict) or \
            payload.get("version") != HOT_KEYS_FORMAT_VERSION:
        return []
    stored = payload.get("fault_sets")
    if not isinstance(stored, list):
        return []
    fault_sets: list = []
    for fault_set in stored:
        if not isinstance(fault_set, list):
            return []
        edges: list = []
        for edge in fault_set:
            if not isinstance(edge, list) or len(edge) != 2:
                return []
            edges.append((edge[0], edge[1]))
        fault_sets.append(edges)
    return fault_sets


__all__ = ["HOT_KEYS_SUFFIX", "HOT_KEYS_FORMAT_VERSION", "hot_keys_path",
           "save_hot_fault_sets", "load_hot_fault_sets"]
