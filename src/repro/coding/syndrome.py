"""Power-sum syndromes of sparse supports over GF(2^w).

The deterministic outdetect labeling assigns each edge ``e`` (identified by a
non-zero field element ``x_e``) the vector

    g(e) = (x_e, x_e^2, ..., x_e^{2k})

which is exactly the row of the Reed--Solomon parity-check matrix indexed by
``e`` (Section 7.4).  A vertex label is the XOR of ``g(e)`` over incident
edges, and the XOR over a vertex set S collapses to the *syndrome* of the
outgoing edge set ``∂(S)``:

    sum_{v in S} L(v) = sum_{e in ∂(S)} g(e) = (s_1, ..., s_{2k}),
    s_j = sum_{e in ∂(S)} x_e^j.

Recovering the ``x_e`` from the power sums ``s_j`` is classic syndrome
decoding, performed in :mod:`repro.coding.rs_decoder`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.gf2.bulk import BulkOps, get_bulk_ops
from repro.gf2.field import GF2m


def xor_vectors(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Component-wise XOR of two equal-length syndrome vectors."""
    if len(a) != len(b):
        raise ValueError("syndrome vectors have different lengths: %d vs %d" % (len(a), len(b)))
    return [x ^ y for x, y in zip(a, b)]


class SyndromeEncoder:
    """Computes ``g(e)`` rows and syndromes of explicit supports.

    Parameters
    ----------
    field:
        The GF(2^w) field the edge identifiers live in.
    threshold:
        The sparsity threshold ``k``; syndromes have ``2k`` components, which
        is what allows recovery of up to ``k`` edges.
    bulk:
        Bulk arithmetic backend; defaults to the auto-selected one (numpy
        bit-sliced when available, pure Python otherwise).
    """

    __slots__ = ("field", "threshold", "length", "bulk")

    def __init__(self, field: GF2m, threshold: int, bulk: BulkOps | None = None):
        if threshold < 1:
            raise ValueError("threshold must be at least 1, got %d" % threshold)
        self.field = field
        self.threshold = threshold
        self.length = 2 * threshold
        self.bulk = bulk if bulk is not None else get_bulk_ops(field)

    def zero(self) -> list[int]:
        """The syndrome of the empty support."""
        return [0] * self.length

    def encode(self, element: int) -> list[int]:
        """The parity-check row ``(x, x^2, ..., x^{2k})`` for one element.

        The element must be a non-zero field element; zero is reserved as the
        paper's "formal zero" marker for an empty outgoing edge set.
        """
        if element == 0:
            raise ValueError("edge identifiers must be non-zero field elements")
        if not self.field.contains(element):
            raise ValueError("element %d is outside the field" % element)
        return self.bulk.pow_range(element, self.length)

    def encode_many(self, elements: Sequence[int]) -> list[list[int]]:
        """The parity-check rows of many elements, computed in one bulk call."""
        for element in elements:
            if element == 0:
                raise ValueError("edge identifiers must be non-zero field elements")
            if not self.field.contains(element):
                raise ValueError("element %d is outside the field" % element)
        return self.bulk.pow_range_many(elements, self.length)

    def encode_prefix(self, element: int, length: int) -> list[int]:
        """The first ``length`` components of ``encode(element)``.

        Proposition 6 of the paper: prefixes of Reed--Solomon syndromes are
        themselves Reed--Solomon syndromes for a smaller threshold, which is
        what makes adaptive decoding possible without re-labeling.
        """
        full = self.encode(element)
        return full[:length]

    def syndrome_of(self, elements: Iterable[int]) -> list[int]:
        """The syndrome (power sums) of an explicit support set."""
        total = self.zero()
        support = list(elements)
        if support:
            self.bulk.xor_accumulate(total, self.encode_many(support))
        return total

    def syndrome_of_many(self, supports: Sequence[Sequence[int]]) -> list[list[int]]:
        """The syndromes of many support sets, computed in two bulk calls.

        All elements of all supports are encoded by one ``pow_range_many``
        and the rows are XOR-scattered back into one syndrome per support
        (``scatter_xor_rows``), so the cost of verifying every component of a
        batched decode is two backend calls instead of one scalar
        :meth:`syndrome_of` per component.  Bit-identical to calling
        :meth:`syndrome_of` on each support.
        """
        flat: list[int] = []
        owners: list[int] = []
        for index, support in enumerate(supports):
            for element in support:
                flat.append(element)
                owners.append(index)
        if not flat:
            return [self.zero() for _ in supports]
        rows = self.encode_many(flat)
        return self.bulk.scatter_xor_rows(len(supports), self.length, owners, rows)

    def accumulate(self, target: list[int], element: int) -> None:
        """XOR ``g(element)`` into ``target`` in place (used by label builders)."""
        row = self.encode(element)
        for index in range(self.length):
            target[index] ^= row[index]
