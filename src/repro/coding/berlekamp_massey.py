"""Berlekamp--Massey algorithm over GF(2^w).

Given the power-sum syndromes ``s_1, ..., s_{2k}`` of an unknown support
``{x_1, ..., x_t}`` with ``t <= k``, Berlekamp--Massey computes the minimal
linear-feedback shift register generating the sequence, which is the
error-locator polynomial

    Lambda(z) = prod_i (1 - x_i z) = 1 + lambda_1 z + ... + lambda_t z^t.

Its reciprocal roots are exactly the support elements; they are extracted by
the deterministic root finder in :mod:`repro.coding.rootfind`.
"""

from __future__ import annotations

from typing import Sequence

from repro.gf2.field import GF2m
from repro.gf2.poly import Gf2Poly


def berlekamp_massey(field: GF2m, syndromes: Sequence[int]) -> Gf2Poly:
    """Return the minimal connection polynomial of a syndrome sequence.

    Parameters
    ----------
    field:
        The field the syndromes live in.
    syndromes:
        The sequence ``s_1, ..., s_n`` (power sums, 1-indexed in the paper's
        notation; passed here as a plain 0-indexed list).

    Returns
    -------
    Gf2Poly
        The connection polynomial ``Lambda(z)`` with ``Lambda(0) = 1``.  Its
        degree equals the linear complexity of the sequence, i.e. the number
        of support elements when the syndromes come from a sparse support
        within the decoding radius.
    """
    # Coefficients of the current and previous connection polynomials.
    current = [1]
    previous = [1]
    length = 0              # current LFSR length
    shift = 1               # number of steps since `previous` was updated
    previous_discrepancy = 1

    for index, syndrome in enumerate(syndromes):
        # Compute the discrepancy: s_index + sum_{i=1..length} c_i * s_{index-i}.
        discrepancy = syndrome
        for i in range(1, length + 1):
            if i < len(current) and current[i] != 0 and index - i >= 0:
                discrepancy ^= field.mul(current[i], syndromes[index - i])
        if discrepancy == 0:
            shift += 1
            continue
        if 2 * length <= index:
            # The LFSR is too short; lengthen it.
            saved = list(current)
            current = _update(field, current, previous, discrepancy,
                              previous_discrepancy, shift)
            previous = saved
            previous_discrepancy = discrepancy
            length = index + 1 - length
            shift = 1
        else:
            current = _update(field, current, previous, discrepancy,
                              previous_discrepancy, shift)
            shift += 1

    return Gf2Poly(field, current)


def _update(field: GF2m, current: list[int], previous: list[int],
            discrepancy: int, previous_discrepancy: int, shift: int) -> list[int]:
    """Return ``current - (d/d_prev) * z^shift * previous`` as a coefficient list."""
    factor = field.mul(discrepancy, field.inv(previous_discrepancy))
    size = max(len(current), len(previous) + shift)
    updated = list(current) + [0] * (size - len(current))
    for index, coefficient in enumerate(previous):
        if coefficient == 0:
            continue
        updated[index + shift] ^= field.mul(factor, coefficient)
    return updated
