"""Berlekamp--Massey algorithm over GF(2^w).

Given the power-sum syndromes ``s_1, ..., s_{2k}`` of an unknown support
``{x_1, ..., x_t}`` with ``t <= k``, Berlekamp--Massey computes the minimal
linear-feedback shift register generating the sequence, which is the
error-locator polynomial

    Lambda(z) = prod_i (1 - x_i z) = 1 + lambda_1 z + ... + lambda_t z^t.

Its reciprocal roots are exactly the support elements; they are extracted by
the deterministic root finder in :mod:`repro.coding.rootfind`.

Two entry points: :func:`berlekamp_massey` runs one sequence (the scalar
reference), and :func:`berlekamp_massey_many` advances the *same* algorithm
across many sequences in lockstep, so the field multiplications of one step —
the discrepancy dot products and the connection-polynomial updates — across
all sequences become single :meth:`~repro.gf2.bulk.BulkOps.mul_many` calls.
Because XOR reassociation and the backends' element-wise products are exact,
the batched variant is bit-identical to running the scalar one per sequence
(hard-asserted by the conformance tests).
"""

from __future__ import annotations

from typing import Sequence

from repro.gf2.bulk import BulkOps, get_bulk_ops
from repro.gf2.field import GF2m
from repro.gf2.poly import Gf2Poly


def berlekamp_massey(field: GF2m, syndromes: Sequence[int]) -> Gf2Poly:
    """Return the minimal connection polynomial of a syndrome sequence.

    Parameters
    ----------
    field:
        The field the syndromes live in.
    syndromes:
        The sequence ``s_1, ..., s_n`` (power sums, 1-indexed in the paper's
        notation; passed here as a plain 0-indexed list).

    Returns
    -------
    Gf2Poly
        The connection polynomial ``Lambda(z)`` with ``Lambda(0) = 1``.  Its
        degree equals the linear complexity of the sequence, i.e. the number
        of support elements when the syndromes come from a sparse support
        within the decoding radius.
    """
    # Coefficients of the current and previous connection polynomials.
    current = [1]
    previous = [1]
    length = 0              # current LFSR length
    shift = 1               # number of steps since `previous` was updated
    previous_discrepancy = 1

    for index, syndrome in enumerate(syndromes):
        # Compute the discrepancy: s_index + sum_{i=1..length} c_i * s_{index-i}.
        discrepancy = syndrome
        for i in range(1, length + 1):
            if i < len(current) and current[i] != 0 and index - i >= 0:
                discrepancy ^= field.mul(current[i], syndromes[index - i])
        if discrepancy == 0:
            shift += 1
            continue
        if 2 * length <= index:
            # The LFSR is too short; lengthen it.
            saved = list(current)
            current = _update(field, current, previous, discrepancy,
                              previous_discrepancy, shift)
            previous = saved
            previous_discrepancy = discrepancy
            length = index + 1 - length
            shift = 1
        else:
            current = _update(field, current, previous, discrepancy,
                              previous_discrepancy, shift)
            shift += 1

    return Gf2Poly(field, current)


def _update(field: GF2m, current: list[int], previous: list[int],
            discrepancy: int, previous_discrepancy: int, shift: int) -> list[int]:
    """Return ``current - (d/d_prev) * z^shift * previous`` as a coefficient list."""
    factor = field.mul(discrepancy, field.inv(previous_discrepancy))
    size = max(len(current), len(previous) + shift)
    updated = list(current) + [0] * (size - len(current))
    for index, coefficient in enumerate(previous):
        if coefficient == 0:
            continue
        updated[index + shift] ^= field.mul(factor, coefficient)
    return updated


def berlekamp_massey_many(field: GF2m, sequences: Sequence[Sequence[int]],
                          bulk: BulkOps | None = None) -> list[Gf2Poly]:
    """Run Berlekamp--Massey over many syndrome sequences in lockstep.

    All sequences advance through step ``j`` together: the per-sequence
    discrepancy terms ``c_i * s_{j-i}`` are gathered into one element-wise
    :meth:`~repro.gf2.bulk.BulkOps.mul_many`, and so are the
    connection-polynomial update products ``(d/d_prev) * p_i``.  Per-sequence
    control flow (LFSR lengthening, shift bookkeeping) is untouched, so the
    returned polynomials equal ``[berlekamp_massey(field, s) for s in
    sequences]`` bit for bit.

    Sequences may have different lengths; shorter ones simply stop advancing.
    """
    sequences = [list(sequence) for sequence in sequences]
    if not sequences:
        return []
    if bulk is None:
        bulk = get_bulk_ops(field)
    count = len(sequences)
    current: list[list[int]] = [[1] for _ in range(count)]
    previous: list[list[int]] = [[1] for _ in range(count)]
    length = [0] * count
    shift = [1] * count
    previous_discrepancy = [1] * count

    for index in range(max(len(sequence) for sequence in sequences)):
        # Batched discrepancies: one flat element-wise product for the
        # c_i * s_{index-i} terms of every still-active sequence.
        factors_a: list[int] = []
        factors_b: list[int] = []
        owners: list[int] = []
        discrepancy = [0] * count
        for j, sequence in enumerate(sequences):
            if index >= len(sequence):
                continue
            discrepancy[j] = sequence[index]
            coefficients = current[j]
            for i in range(1, length[j] + 1):
                if i < len(coefficients) and coefficients[i] != 0 and index - i >= 0:
                    factors_a.append(coefficients[i])
                    factors_b.append(sequence[index - i])
                    owners.append(j)
        if factors_a:
            for j, product in zip(owners, bulk.mul_many(factors_a, factors_b)):
                discrepancy[j] ^= product
        # Batched updates: the factor * p_i products of every sequence whose
        # discrepancy is non-zero, scattered back into the padded polynomials.
        update_a: list[int] = []
        update_b: list[int] = []
        update_position: list[int] = []
        update_owner: list[int] = []
        for j, sequence in enumerate(sequences):
            if index >= len(sequence):
                continue
            if discrepancy[j] == 0:
                shift[j] += 1
                continue
            factor = field.mul(discrepancy[j], field.inv(previous_discrepancy[j]))
            old_previous = previous[j]
            size = max(len(current[j]), len(old_previous) + shift[j])
            updated = list(current[j]) + [0] * (size - len(current[j]))
            for i, coefficient in enumerate(old_previous):
                if coefficient == 0:
                    continue
                update_a.append(factor)
                update_b.append(coefficient)
                update_position.append(i + shift[j])
                update_owner.append(j)
            if 2 * length[j] <= index:
                previous[j] = list(current[j])
                previous_discrepancy[j] = discrepancy[j]
                length[j] = index + 1 - length[j]
                shift[j] = 1
            else:
                shift[j] += 1
            current[j] = updated
        if update_a:
            for j, position, product in zip(update_owner, update_position,
                                            bulk.mul_many(update_a, update_b)):
                current[j][position] ^= product

    return [Gf2Poly(field, coefficients) for coefficients in current]
