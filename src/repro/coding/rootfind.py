"""Deterministic root finding for polynomials over GF(2^w).

The error-locator polynomial produced by Berlekamp--Massey has all its roots
in the field, but the field can be far too large (up to 2^64 elements) for a
Chien-style exhaustive search.  The classic randomized answer is
Cantor--Zassenhaus; since the whole point of the paper is determinism, we use
the deterministic alternative available in characteristic two:

1.  Restrict to roots lying in GF(2^w) by taking
    ``gcd(p(x), x^{2^w} - x)``, computed with ``w`` modular squarings.
2.  Split the resulting product of distinct linear factors using *trace*
    polynomials: for a GF(2)-basis ``beta_0, ..., beta_{w-1}`` of the field,
    ``T_j(x) = Tr(beta_j x) = sum_i (beta_j x)^{2^i}`` takes values in {0, 1}
    on field elements, and two distinct elements differ on at least one
    ``T_j`` (the trace bilinear form is non-degenerate).  Therefore
    ``gcd(p, T_j mod p)`` repeatedly splits ``p`` until every factor is
    linear.  No randomness is involved and the cost is
    ``O(w^2 * deg(p)^2)`` field operations.

A third option joins the two classics on the batched decode path:
:func:`chien_roots` is a *vectorized* Chien sweep — one Horner evaluation of
the polynomial at every non-zero field element, expressed as ``deg(p)``
element-wise :meth:`~repro.gf2.bulk.BulkOps.mul_many` calls.  Exhaustive
search is only sensible when the field is small enough and the backend is
data-parallel, so :func:`find_roots_bulk` picks between the sweep and the
trace-based method; both return the same sorted set of roots, making the
choice a pure speed knob.
"""

from __future__ import annotations

from typing import Sequence

from repro.gf2.bulk import BulkOps
from repro.gf2.field import GF2m
from repro.gf2.poly import Gf2Poly

#: Largest field order the vectorized Chien sweep is allowed to enumerate.
CHIEN_MAX_ORDER = 1 << 16


def find_roots(poly: Gf2Poly) -> list[int]:
    """Return all distinct roots of ``poly`` that lie in its field.

    The result is sorted (as integers) to keep the procedure fully
    deterministic and reproducible across runs.
    """
    field = poly.field
    if poly.is_zero():
        raise ValueError("the zero polynomial has every field element as a root")
    roots: list[int] = []
    poly = poly.monic()

    # Pull out roots at zero.
    while poly.degree > 0 and poly.coefficient(0) == 0:
        if 0 not in roots:
            roots.append(0)
        poly = poly.divmod(Gf2Poly.x(field))[0]

    if poly.degree <= 0:
        return sorted(roots)
    if poly.degree == 1:
        roots.append(_linear_root(poly))
        return sorted(roots)

    # Keep only the part of the polynomial whose roots lie in GF(2^w).
    x_poly = Gf2Poly.x(field)
    frobenius = x_poly % poly
    for _ in range(field.width):
        frobenius = frobenius.square_mod(poly)
    split_part = poly.gcd(frobenius + x_poly)
    if split_part.degree <= 0:
        return sorted(roots)
    if split_part.degree == 1:
        roots.append(_linear_root(split_part))
        return sorted(roots)

    # Frobenius powers of x modulo the split part: F_i = x^{2^i} mod split_part.
    frobenius_powers = [x_poly % split_part]
    for _ in range(1, field.width):
        frobenius_powers.append(frobenius_powers[-1].square_mod(split_part))

    pending = [split_part]
    for basis_index in range(field.width):
        if all(factor.degree <= 1 for factor in pending):
            break
        beta = 1 << basis_index
        refined: list[Gf2Poly] = []
        for factor in pending:
            if factor.degree <= 1:
                refined.append(factor)
                continue
            trace_poly = _trace_polynomial(field, frobenius_powers, beta, factor)
            pieces = _split_with_trace(factor, trace_poly)
            refined.extend(pieces)
        pending = refined

    for factor in pending:
        if factor.degree == 1:
            roots.append(_linear_root(factor))
        elif factor.degree > 1:
            # The basis sweep separates any two distinct field elements, so a
            # non-linear factor can only appear if the input polynomial was not
            # square-free over the field; its roots are still roots of the
            # original polynomial, recoverable by recursing on the factor's
            # distinct-root part.
            roots.extend(root for root in find_roots(factor) if root not in roots)
    return sorted(set(roots))


def _linear_root(poly: Gf2Poly) -> int:
    """Root of a degree-one polynomial ``c1 x + c0`` (characteristic two)."""
    field = poly.field
    return field.div(poly.coefficient(0), poly.coefficient(1))


def _trace_polynomial(field: GF2m, frobenius_powers: list[Gf2Poly],
                      beta: int, modulus: Gf2Poly) -> Gf2Poly:
    """Compute ``Tr(beta * x) mod modulus`` from precomputed Frobenius powers.

    ``Tr(beta x) = sum_i (beta x)^{2^i} = sum_i beta^{2^i} * x^{2^i}``, so the
    trace polynomial is a field-scalar combination of the Frobenius powers.
    """
    total = Gf2Poly.zero(field)
    beta_power = beta
    for frob in frobenius_powers:
        total = total + (frob % modulus).scale(beta_power)
        beta_power = field.mul(beta_power, beta_power)
    return total


def chien_roots(poly: Gf2Poly, bulk: BulkOps) -> list[int]:
    """All roots of ``poly`` by a vectorized sweep over the whole field.

    Evaluates the polynomial at every non-zero field element with one Horner
    recurrence expressed element-wise over the field — ``deg(p)`` bulk
    ``mul_many`` calls of ``2^w - 1`` lanes each — and separately tests the
    zero element from the constant coefficient.  Returns the same sorted,
    distinct root list as :func:`find_roots`.
    """
    field = poly.field
    if poly.is_zero():
        raise ValueError("the zero polynomial has every field element as a root")
    if poly.degree <= 0:
        return []
    coefficients = poly.coeffs
    candidates = list(range(1, field.order))
    values: list[int] = [coefficients[-1]] * len(candidates)
    for position in range(len(coefficients) - 2, -1, -1):
        values = bulk.mul_many(values, candidates)
        constant = coefficients[position]
        if constant:
            values = [value ^ constant for value in values]
    roots = [candidate for candidate, value in zip(candidates, values) if value == 0]
    if coefficients[0] == 0:
        roots.append(0)
    return sorted(roots)


def find_roots_bulk(poly: Gf2Poly, bulk: BulkOps | None = None) -> list[int]:
    """Root finding with the backend-appropriate strategy.

    The Chien sweep enumerates the whole field, so it only wins when the
    backend turns the per-element work into data-parallel kernels (numpy) and
    the field is small enough to enumerate (``CHIEN_MAX_ORDER``); every other
    case — including every pure-Python run — uses the deterministic
    trace-based :func:`find_roots`.  Both strategies return identical sorted
    root lists, so the dispatch never changes results.
    """
    if (bulk is None or bulk.name != "numpy" or poly.is_zero()
            or poly.degree <= 1 or poly.field.order > CHIEN_MAX_ORDER):
        return find_roots(poly)
    return chien_roots(poly, bulk)


def find_roots_many(polys: Sequence[Gf2Poly],
                    bulk: BulkOps | None = None) -> list[list[int]]:
    """Roots of many polynomials (one batched-decode round's locators)."""
    return [find_roots_bulk(poly, bulk) for poly in polys]


def _split_with_trace(factor: Gf2Poly, trace_poly: Gf2Poly) -> list[Gf2Poly]:
    """Split ``factor`` into the trace-0 and trace-1 parts if possible."""
    zero_part = factor.gcd(trace_poly)
    if 0 < zero_part.degree < factor.degree:
        cofactor = factor.divmod(zero_part)[0].monic()
        return [zero_part, cofactor]
    one_part = factor.gcd(trace_poly + Gf2Poly.one(factor.field))
    if 0 < one_part.degree < factor.degree:
        cofactor = factor.divmod(one_part)[0].monic()
        return [one_part, cofactor]
    return [factor]
