"""k-threshold sparse recovery from power-sum syndromes (Proposition 2).

The decoder receives the XOR of vertex labels over a vertex set S — which
equals the syndrome ``(s_1, ..., s_{2k})`` of the outgoing edge set — and
recovers the edge identifiers, provided at most ``k`` edges are outgoing.

Beyond the paper's statement the implementation adds *failure detection*:
the recovered support is re-encoded and compared against the input syndrome,
and the number of recovered roots must match the locator degree.  When the
sparsity promise ``|∂(S)| <= k`` is violated the paper allows an arbitrary
answer; the decoder instead raises :class:`DecodeFailure` in the vast majority
of such cases, which the layered scheme uses for defensive checks and which
the PRACTICAL (heuristic-constant) hierarchy preset relies on.

Adaptive decoding (Appendix B / Proposition 6): because prefixes of
Reed--Solomon syndromes are themselves valid lower-threshold syndromes, the
decoder can first try a short prefix and only fall back to longer ones,
yielding a decoding time that depends on the actual support size rather than
on the worst-case threshold ``k``.

Batched decoding: :meth:`SparseRecoveryDecoder.decode_many_deferred` runs the
same pipeline over many syndromes at once, advancing every stage — prefix BM,
root finding, re-encode verification — across the whole batch so one batch is
a handful of :class:`~repro.gf2.bulk.BulkOps` calls instead of one scalar
pipeline per syndrome.  Per-syndrome control flow (the adaptive budget ladder,
every failure check and its message) is preserved exactly, so each entry of
the result is bit-identical to what the scalar :meth:`decode` /
:meth:`decode_adaptive` would produce for that syndrome, including which
:class:`DecodeFailure` it would raise.
"""

from __future__ import annotations

from typing import Sequence

from repro.coding.berlekamp_massey import berlekamp_massey, berlekamp_massey_many
from repro.coding.rootfind import find_roots, find_roots_many
from repro.coding.syndrome import SyndromeEncoder
from repro.gf2.bulk import BulkOps, get_bulk_ops
from repro.gf2.field import GF2m


class DecodeFailure(Exception):
    """Raised when a syndrome is inconsistent with any support of size <= k."""


class SparseRecoveryDecoder:
    """Recovers sparse supports from power-sum syndromes over GF(2^w)."""

    __slots__ = ("field", "threshold", "bulk", "_encoder")

    def __init__(self, field: GF2m, threshold: int, bulk: BulkOps | None = None):
        self.field = field
        self.threshold = threshold
        self.bulk = bulk if bulk is not None else get_bulk_ops(field)
        self._encoder = SyndromeEncoder(field, threshold, bulk=self.bulk)

    # ----------------------------------------------------------------- decode

    def decode(self, syndrome: Sequence[int]) -> list[int]:
        """Recover the support from a full ``2k``-component syndrome.

        Returns the sorted list of support elements; the empty list means the
        support is empty (the paper's "formal zero").  Raises
        :class:`DecodeFailure` when the syndrome is detectably inconsistent.
        """
        return self._decode_with_budget(syndrome, self.threshold)

    def decode_adaptive(self, syndrome: Sequence[int]) -> list[int]:
        """Adaptive decoding: geometrically growing prefixes (Appendix B).

        The cost of a successful decode is quadratic in the actual support
        size rather than in the threshold ``k``.  Verification is always done
        against the *full* syndrome, so a successful adaptive decode is as
        trustworthy as a full decode.
        """
        if all(component == 0 for component in syndrome):
            return []
        budget = 1
        last_error: DecodeFailure | None = None
        while budget <= self.threshold:
            try:
                return self._decode_with_budget(syndrome, budget)
            except DecodeFailure as error:
                last_error = error
                if budget == self.threshold:
                    break
                budget = min(budget * 2, self.threshold)
        raise last_error if last_error is not None else DecodeFailure("undecodable syndrome")

    # ---------------------------------------------------------------- batched

    def decode_many(self, syndromes: Sequence[Sequence[int]],
                    adaptive: bool = False) -> list[list[int]]:
        """Decode many syndromes at once; raises on the first failed entry.

        Equivalent to ``[self.decode(s) for s in syndromes]`` (or the adaptive
        variant), but the whole batch advances through each pipeline stage
        together so the field arithmetic lands in bulk backend calls.
        """
        results = self.decode_many_deferred(syndromes, adaptive=adaptive)
        for entry in results:
            if isinstance(entry, DecodeFailure):
                raise entry
        return results

    def decode_many_deferred(self, syndromes: Sequence[Sequence[int]],
                             adaptive: bool = False
                             ) -> list[list[int] | DecodeFailure]:
        """Decode many syndromes, returning failures instead of raising them.

        Each result entry is either the sorted support (``list[int]``) or the
        :class:`DecodeFailure` the scalar decoder would have raised for that
        syndrome.  Deferred failures let callers that decode lazily — the
        merge forest in :class:`repro.core.batch.BatchQuerySession` only
        surfaces a failure when the failing component is actually *used* —
        keep their failure semantics while still decoding eagerly in bulk.
        """
        syndromes = [list(syndrome) for syndrome in syndromes]
        expected = 2 * self.threshold
        for syndrome in syndromes:
            if len(syndrome) != expected:
                raise ValueError("syndrome has %d components, expected %d"
                                 % (len(syndrome), expected))
        results: list[list[int] | DecodeFailure | None] = [None] * len(syndromes)
        pending: list[int] = []
        for index, syndrome in enumerate(syndromes):
            if all(component == 0 for component in syndrome):
                results[index] = []
            else:
                pending.append(index)
        if adaptive:
            budgets = []
            budget = 1
            while True:
                budgets.append(budget)
                if budget == self.threshold:
                    break
                budget = min(budget * 2, self.threshold)
        else:
            budgets = [self.threshold]
        for budget in budgets:
            if not pending:
                break
            pending = self._decode_round(syndromes, results, pending, budget,
                                         final_round=budget == self.threshold)
        return results  # type: ignore[return-value]

    def _decode_round(self, syndromes: list[list[int]],
                      results: list[list[int] | DecodeFailure | None],
                      pending: list[int], budget: int,
                      final_round: bool) -> list[int]:
        """Advance every pending syndrome through one budget of the ladder.

        Successes and (in the final round) failures are written into
        ``results``; the returned list holds the indices that should retry at
        the next larger budget.
        """
        retry: list[int] = []

        def fail(index: int, message: str) -> None:
            if final_round:
                results[index] = DecodeFailure(message)
            else:
                retry.append(index)

        prefixes = [syndromes[index][:2 * budget] for index in pending]
        locators = berlekamp_massey_many(self.field, prefixes, self.bulk)
        rooted: list[int] = []
        rooted_locators = []
        for index, locator in zip(pending, locators):
            degree = locator.degree
            if degree <= 0 or degree > budget:
                fail(index, "locator degree %d outside (0, %d]" % (degree, budget))
            else:
                rooted.append(index)
                rooted_locators.append(locator)
        roots_many = find_roots_many(rooted_locators, self.bulk)
        candidates: list[int] = []
        supports: list[list[int]] = []
        for index, locator, roots in zip(rooted, rooted_locators, roots_many):
            degree = locator.degree
            if len(roots) != degree or any(root == 0 for root in roots):
                fail(index, "locator of degree %d has %d usable roots"
                     % (degree, len(roots)))
                continue
            support = sorted(self.field.inv(root) for root in roots)
            if len(set(support)) != len(support):
                fail(index, "recovered support contains duplicates")
                continue
            candidates.append(index)
            supports.append(support)
        if candidates:
            # Verification is always against the full syndrome, exactly like
            # the scalar path, batched into one syndrome_of_many call.
            recomputed = self._encoder.syndrome_of_many(supports)
            for index, support, verification in zip(candidates, supports, recomputed):
                if syndromes[index] != verification:
                    fail(index, "recovered support does not reproduce the syndrome")
                else:
                    results[index] = support
        return retry

    # ---------------------------------------------------------------- helpers

    def _decode_with_budget(self, syndrome: Sequence[int], budget: int) -> list[int]:
        if len(syndrome) != 2 * self.threshold:
            raise ValueError("syndrome has %d components, expected %d"
                             % (len(syndrome), 2 * self.threshold))
        if all(component == 0 for component in syndrome):
            return []
        prefix = list(syndrome[:2 * budget])
        locator = berlekamp_massey(self.field, prefix)
        degree = locator.degree
        if degree <= 0 or degree > budget:
            raise DecodeFailure("locator degree %d outside (0, %d]" % (degree, budget))
        roots = find_roots(locator)
        if len(roots) != degree or any(root == 0 for root in roots):
            raise DecodeFailure("locator of degree %d has %d usable roots" % (degree, len(roots)))
        support = sorted(self.field.inv(root) for root in roots)
        if len(set(support)) != len(support):
            raise DecodeFailure("recovered support contains duplicates")
        self._verify(syndrome, support)
        return support

    def _verify(self, syndrome: Sequence[int], support: Sequence[int]) -> None:
        """Re-encode the recovered support and compare against the syndrome."""
        recomputed = self._encoder.syndrome_of(support)
        if list(syndrome) != recomputed:
            raise DecodeFailure("recovered support does not reproduce the syndrome")
