"""k-threshold sparse recovery from power-sum syndromes (Proposition 2).

The decoder receives the XOR of vertex labels over a vertex set S — which
equals the syndrome ``(s_1, ..., s_{2k})`` of the outgoing edge set — and
recovers the edge identifiers, provided at most ``k`` edges are outgoing.

Beyond the paper's statement the implementation adds *failure detection*:
the recovered support is re-encoded and compared against the input syndrome,
and the number of recovered roots must match the locator degree.  When the
sparsity promise ``|∂(S)| <= k`` is violated the paper allows an arbitrary
answer; the decoder instead raises :class:`DecodeFailure` in the vast majority
of such cases, which the layered scheme uses for defensive checks and which
the PRACTICAL (heuristic-constant) hierarchy preset relies on.

Adaptive decoding (Appendix B / Proposition 6): because prefixes of
Reed--Solomon syndromes are themselves valid lower-threshold syndromes, the
decoder can first try a short prefix and only fall back to longer ones,
yielding a decoding time that depends on the actual support size rather than
on the worst-case threshold ``k``.
"""

from __future__ import annotations

from typing import Sequence

from repro.coding.berlekamp_massey import berlekamp_massey
from repro.coding.rootfind import find_roots
from repro.coding.syndrome import SyndromeEncoder
from repro.gf2.field import GF2m


class DecodeFailure(Exception):
    """Raised when a syndrome is inconsistent with any support of size <= k."""


class SparseRecoveryDecoder:
    """Recovers sparse supports from power-sum syndromes over GF(2^w)."""

    __slots__ = ("field", "threshold", "_encoder")

    def __init__(self, field: GF2m, threshold: int):
        self.field = field
        self.threshold = threshold
        self._encoder = SyndromeEncoder(field, threshold)

    # ----------------------------------------------------------------- decode

    def decode(self, syndrome: Sequence[int]) -> list[int]:
        """Recover the support from a full ``2k``-component syndrome.

        Returns the sorted list of support elements; the empty list means the
        support is empty (the paper's "formal zero").  Raises
        :class:`DecodeFailure` when the syndrome is detectably inconsistent.
        """
        return self._decode_with_budget(syndrome, self.threshold)

    def decode_adaptive(self, syndrome: Sequence[int]) -> list[int]:
        """Adaptive decoding: geometrically growing prefixes (Appendix B).

        The cost of a successful decode is quadratic in the actual support
        size rather than in the threshold ``k``.  Verification is always done
        against the *full* syndrome, so a successful adaptive decode is as
        trustworthy as a full decode.
        """
        if all(component == 0 for component in syndrome):
            return []
        budget = 1
        last_error: DecodeFailure | None = None
        while budget <= self.threshold:
            try:
                return self._decode_with_budget(syndrome, budget)
            except DecodeFailure as error:
                last_error = error
                if budget == self.threshold:
                    break
                budget = min(budget * 2, self.threshold)
        raise last_error if last_error is not None else DecodeFailure("undecodable syndrome")

    # ---------------------------------------------------------------- helpers

    def _decode_with_budget(self, syndrome: Sequence[int], budget: int) -> list[int]:
        if len(syndrome) != 2 * self.threshold:
            raise ValueError("syndrome has %d components, expected %d"
                             % (len(syndrome), 2 * self.threshold))
        if all(component == 0 for component in syndrome):
            return []
        prefix = list(syndrome[:2 * budget])
        locator = berlekamp_massey(self.field, prefix)
        degree = locator.degree
        if degree <= 0 or degree > budget:
            raise DecodeFailure("locator degree %d outside (0, %d]" % (degree, budget))
        roots = find_roots(locator)
        if len(roots) != degree or any(root == 0 for root in roots):
            raise DecodeFailure("locator of degree %d has %d usable roots" % (degree, len(roots)))
        support = sorted(self.field.inv(root) for root in roots)
        if len(set(support)) != len(support):
            raise DecodeFailure("recovered support contains duplicates")
        self._verify(syndrome, support)
        return support

    def _verify(self, syndrome: Sequence[int], support: Sequence[int]) -> None:
        """Re-encode the recovered support and compare against the syndrome."""
        recomputed = self._encoder.syndrome_of(support)
        if list(syndrome) != recomputed:
            raise DecodeFailure("recovered support does not reproduce the syndrome")
