"""Error-correcting-code machinery for deterministic outgoing-edge detection.

The paper's first key technique (Section 4.2) replaces the random hash of the
Ahn--Guha--McGregor graph sketch with the parity-check matrix of a
Reed--Solomon-style code: the XOR sum of vertex labels over a vertex set S is
exactly the *syndrome* of the characteristic vector of the outgoing edge set
``∂(S)``, and recovering up to ``k`` outgoing edges is syndrome decoding of a
``k``-sparse error vector.

This subpackage implements that pipeline from scratch:

* :mod:`repro.coding.syndrome` — power-sum syndromes of sparse supports
  (the rows of the parity-check matrix, computed "locally" per edge).
* :mod:`repro.coding.berlekamp_massey` — the Berlekamp--Massey algorithm that
  turns syndromes into an error-locator polynomial.
* :mod:`repro.coding.rootfind` — deterministic root finding over GF(2^w) via
  the Frobenius map and trace splitting (no randomness anywhere).
* :mod:`repro.coding.rs_decoder` — the end-to-end ``k``-threshold sparse
  recovery used by the outdetect labeling scheme (Proposition 2), including
  verification (failure detection) and adaptive prefix decoding (Appendix B).
"""

from repro.coding.syndrome import SyndromeEncoder, xor_vectors
from repro.coding.berlekamp_massey import berlekamp_massey, berlekamp_massey_many
from repro.coding.rootfind import chien_roots, find_roots, find_roots_bulk, find_roots_many
from repro.coding.rs_decoder import DecodeFailure, SparseRecoveryDecoder

__all__ = [
    "SyndromeEncoder",
    "xor_vectors",
    "berlekamp_massey",
    "berlekamp_massey_many",
    "chien_roots",
    "find_roots",
    "find_roots_bulk",
    "find_roots_many",
    "DecodeFailure",
    "SparseRecoveryDecoder",
]
