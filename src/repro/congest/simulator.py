"""The synchronous CONGEST round engine.

A :class:`NodeAlgorithm` describes the behaviour of every node: an ``init``
hook and a per-round ``compute`` hook that receives the messages delivered
this round and returns the messages to send next round.  The simulator runs
all nodes in lock-step, delivers messages with a one-round delay, counts
rounds, and (optionally) enforces the CONGEST bandwidth constraint of
``O(log n)`` bits per edge per round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.graphs.graph import Graph

Vertex = Hashable


@dataclass(frozen=True)
class Message:
    """One message travelling over one edge in one round."""

    sender: Vertex
    payload: object

    def bit_size(self) -> int:
        """Approximate payload size in bits (ints, strings, tuples/lists of ints)."""
        return _payload_bits(self.payload)


def _payload_bits(payload: object) -> int:
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(payload.bit_length(), 1)
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_bits(item) for item in payload) + len(payload)
    if isinstance(payload, dict):
        return sum(_payload_bits(k) + _payload_bits(v) for k, v in payload.items())
    return 64


class NodeAlgorithm:
    """Base class for node behaviours.

    Subclasses override :meth:`init` and :meth:`compute`.  A node signals
    termination by calling :meth:`halt`; the simulation stops when every node
    has halted or the round limit is reached.
    """

    def __init__(self):
        self._halted: set = set()

    # -- to be overridden -------------------------------------------------

    def init(self, node: Vertex, neighbors: list, state: dict) -> dict:
        """Return the initial outgoing messages ``{neighbor: payload}``."""
        return {}

    def compute(self, node: Vertex, neighbors: list, state: dict,
                inbox: list) -> dict:
        """Process one round; return outgoing messages ``{neighbor: payload}``."""
        return {}

    # -- services ----------------------------------------------------------

    def halt(self, node: Vertex) -> None:
        self._halted.add(node)

    def has_halted(self, node: Vertex) -> bool:
        return node in self._halted


class CongestSimulator:
    """Runs a :class:`NodeAlgorithm` on a graph and accounts for rounds/bits."""

    def __init__(self, graph: Graph, bandwidth_factor: float = 8.0,
                 enforce_bandwidth: bool = True):
        self.graph = graph
        self.bandwidth_factor = bandwidth_factor
        self.enforce_bandwidth = enforce_bandwidth
        self.rounds_executed = 0
        self.max_message_bits = 0
        self.total_messages = 0

    def bandwidth_limit(self) -> int:
        """The per-message bit budget: ``bandwidth_factor * log2 n``."""
        n = max(self.graph.num_vertices(), 2)
        return int(math.ceil(self.bandwidth_factor * math.log2(n)))

    def run(self, algorithm: NodeAlgorithm, max_rounds: int = 10_000,
            until: Callable[[dict], bool] | None = None) -> dict:
        """Execute the algorithm; returns the per-node state dictionaries."""
        states: dict[Vertex, dict] = {vertex: {} for vertex in self.graph.vertices()}
        neighbor_lists = {vertex: sorted(self.graph.neighbors(vertex),
                                         key=lambda v: (type(v).__name__, repr(v)))
                          for vertex in self.graph.vertices()}
        outboxes: dict[Vertex, dict] = {}
        for vertex in self.graph.vertices():
            outboxes[vertex] = algorithm.init(vertex, neighbor_lists[vertex], states[vertex]) or {}

        limit = self.bandwidth_limit()
        for _ in range(max_rounds):
            inboxes: dict[Vertex, list] = {vertex: [] for vertex in self.graph.vertices()}
            any_message = False
            for sender, messages in outboxes.items():
                for receiver, payload in messages.items():
                    if not self.graph.has_edge(sender, receiver):
                        raise ValueError("node %r tried to message non-neighbor %r"
                                         % (sender, receiver))
                    message = Message(sender=sender, payload=payload)
                    bits = message.bit_size()
                    self.max_message_bits = max(self.max_message_bits, bits)
                    self.total_messages += 1
                    if self.enforce_bandwidth and bits > limit:
                        raise ValueError("message of %d bits exceeds the CONGEST budget of %d"
                                         % (bits, limit))
                    inboxes[receiver].append(message)
                    any_message = True
            if not any_message and all(algorithm.has_halted(v) for v in self.graph.vertices()):
                break
            self.rounds_executed += 1
            outboxes = {}
            for vertex in self.graph.vertices():
                if algorithm.has_halted(vertex) and not inboxes[vertex]:
                    outboxes[vertex] = {}
                    continue
                outboxes[vertex] = algorithm.compute(
                    vertex, neighbor_lists[vertex], states[vertex], inboxes[vertex]) or {}
            if until is not None and until(states):
                break
        return states

    def report(self) -> dict:
        return {
            "rounds": self.rounds_executed,
            "max_message_bits": self.max_message_bits,
            "total_messages": self.total_messages,
            "bandwidth_limit_bits": self.bandwidth_limit(),
        }
