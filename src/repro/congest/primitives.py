"""Tree-based communication primitives in the CONGEST model.

Three primitives cover everything Section 8 needs:

* :func:`broadcast_value` — the root pushes a value down the tree
  (depth rounds).
* :func:`convergecast_sum` — leaves push partial aggregates up the tree
  (depth rounds); used for subtree sizes (ancestry labels) and subtree XOR
  sums (outdetect edge labels).
* :func:`pipelined_subtree_xor` — the same aggregation for *vectors* of words:
  a ``w``-word vector is pipelined one word per round, so the round count is
  ``depth + w`` rather than ``depth * w``, which is where the ``f^2`` additive
  term of Theorem 3 comes from.

The primitives run on the simulator so rounds and bandwidth are measured, and
they return both the result and the round count.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.congest.simulator import CongestSimulator, NodeAlgorithm
from repro.graphs.graph import Graph
from repro.graphs.spanning_tree import RootedTree

Vertex = Hashable


class _ConvergecastAlgorithm(NodeAlgorithm):
    """Aggregate per-node values towards the root, one value per node."""

    def __init__(self, tree: RootedTree, values: dict, combine: Callable):
        super().__init__()
        self.tree = tree
        self.values = values
        self.combine = combine

    def init(self, node, neighbors, state):
        state["pending"] = set(self.tree.children(node))
        state["accumulator"] = self.values.get(node, 0)
        state["result"] = None
        if not state["pending"]:
            return self._forward(node, state)
        return {}

    def compute(self, node, neighbors, state, inbox):
        for message in inbox:
            if message.sender in state["pending"]:
                state["pending"].discard(message.sender)
                state["accumulator"] = self.combine(state["accumulator"], message.payload)
        if not state["pending"] and not self.has_halted(node):
            return self._forward(node, state)
        return {}

    def _forward(self, node, state):
        state["result"] = state["accumulator"]
        self.halt(node)
        parent = self.tree.parent(node)
        if parent is None:
            return {}
        return {parent: state["accumulator"]}


def convergecast_sum(graph: Graph, tree: RootedTree, values: dict,
                     combine: Callable = lambda a, b: a + b) -> tuple[dict, dict]:
    """Aggregate ``values`` over every subtree; returns (per-node subtree aggregate, report)."""
    simulator = CongestSimulator(graph, enforce_bandwidth=False)
    algorithm = _ConvergecastAlgorithm(tree, values, combine)
    states = simulator.run(algorithm)
    results = {vertex: state["result"] for vertex, state in states.items()}
    return results, simulator.report()


class _BroadcastAlgorithm(NodeAlgorithm):
    def __init__(self, tree: RootedTree, value):
        super().__init__()
        self.tree = tree
        self.value = value

    def init(self, node, neighbors, state):
        state["value"] = None
        if self.tree.parent(node) is None:
            state["value"] = self.value
            self.halt(node)
            return {child: self.value for child in self.tree.children(node)}
        return {}

    def compute(self, node, neighbors, state, inbox):
        if state["value"] is not None:
            return {}
        for message in inbox:
            if message.sender == self.tree.parent(node):
                state["value"] = message.payload
                self.halt(node)
                return {child: message.payload for child in self.tree.children(node)}
        return {}


def broadcast_value(graph: Graph, tree: RootedTree, value) -> tuple[dict, dict]:
    """Broadcast a value from the root to every node; returns (per-node value, report)."""
    simulator = CongestSimulator(graph, enforce_bandwidth=False)
    algorithm = _BroadcastAlgorithm(tree, value)
    states = simulator.run(algorithm)
    return {vertex: state["value"] for vertex, state in states.items()}, simulator.report()


class _PipelinedXorAlgorithm(NodeAlgorithm):
    """Pipelined convergecast of fixed-length word vectors (XOR per word)."""

    def __init__(self, tree: RootedTree, vectors: dict, width: int):
        super().__init__()
        self.tree = tree
        self.vectors = vectors
        self.width = width

    def init(self, node, neighbors, state):
        state["received"] = {child: [] for child in self.tree.children(node)}
        state["own"] = list(self.vectors.get(node, [0] * self.width))
        state["sent_words"] = 0
        state["result"] = None
        return {}

    def compute(self, node, neighbors, state, inbox):
        for message in inbox:
            if message.sender in state["received"]:
                state["received"][message.sender].append(message.payload)
        outgoing = {}
        parent = self.tree.parent(node)
        # A word can be forwarded as soon as it has been received from every child.
        next_word = state["sent_words"]
        ready = all(len(words) > next_word for words in state["received"].values())
        if ready and next_word < self.width:
            word = state["own"][next_word]
            for words in state["received"].values():
                word ^= words[next_word]
            state["own"][next_word] = word
            state["sent_words"] += 1
            if parent is not None:
                outgoing[parent] = word
        if state["sent_words"] == self.width:
            state["result"] = list(state["own"])
            self.halt(node)
        return outgoing


def pipelined_subtree_xor(graph: Graph, tree: RootedTree, vectors: dict,
                          width: int) -> tuple[dict, dict]:
    """Subtree XOR of ``width``-word vectors for every vertex, pipelined.

    Returns ``(per-vertex subtree XOR vector, simulator report)``; the round
    count is ``O(depth + width)`` thanks to pipelining.
    """
    simulator = CongestSimulator(graph, enforce_bandwidth=False)
    algorithm = _PipelinedXorAlgorithm(tree, vectors, width)
    states = simulator.run(algorithm, max_rounds=50_000)
    results = {vertex: state["result"] for vertex, state in states.items()}
    return results, simulator.report()
