"""Distributed construction of the f-FTC labels (Section 8, Theorem 3).

The construction runs on the CONGEST simulator and is organized exactly as in
the paper:

1. build a BFS tree of the auxiliary graph (``O(D)`` rounds);
2. compute ancestry labels from subtree sizes (convergecast + top-down
   interval assignment, ``O(D)`` rounds);
3. compute the outdetect vertex labels locally (each node knows the
   identifiers of its incident non-tree edges) and aggregate the subtree XOR
   sums of the tree-edge labels by *pipelined* convergecast
   (``O(D + f^2 polylog n)`` rounds — the label length in words is the
   pipeline depth);
4. the sparsification hierarchy itself is computed centrally and charged the
   ``Õ(√m · D)`` round budget of Lemma 13 (the distributed NetFind of the
   paper is a segment-parallel emulation of the same centralized code; we
   account for its rounds analytically, as documented in DESIGN.md).

The outcome is checked against the centralized construction: the distributed
ancestry labels and subtree XOR sums must match exactly, which the CONGEST
tests assert.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.congest.bfs import DistributedBFS
from repro.congest.primitives import convergecast_sum, pipelined_subtree_xor
from repro.core.config import FTCConfig
from repro.core.ftc import FTCLabeling
from repro.graphs.graph import Graph

Vertex = Hashable


class DistributedLabelConstruction:
    """Runs the distributed construction and accounts for rounds."""

    def __init__(self, graph: Graph, max_faults: int, config: FTCConfig | None = None):
        self.graph = graph
        self.config = config or FTCConfig(max_faults=max_faults)
        if self.config.max_faults != max_faults:
            raise ValueError("config.max_faults disagrees with max_faults")
        self.rounds: dict[str, int] = {}
        self._run()

    def _run(self) -> None:
        root = min(self.graph.vertices(), key=lambda v: (type(v).__name__, repr(v)))

        # Phase 1: distributed BFS tree (on the original graph; the auxiliary
        # graph is simulated on top of it, one extra round per phase).
        bfs = DistributedBFS(self.graph, root)
        tree = bfs.tree()
        self.rounds["bfs"] = bfs.rounds()

        # The centralized labeling gives the reference labels (and carries the
        # auxiliary-graph bookkeeping); the distributed phases below recompute
        # the communication-heavy parts and are compared against it.
        self.labeling = FTCLabeling(self.graph, self.config, root=root)
        instance = self.labeling.instance

        # Phase 2: ancestry labels = subtree sizes (convergecast) + top-down
        # interval assignment (broadcast depth).  We measure the convergecast.
        sizes, report = convergecast_sum(self.graph, tree,
                                         {v: 1 for v in self.graph.vertices()})
        self.rounds["ancestry_subtree_sizes"] = report["rounds"]
        self._subtree_sizes = sizes

        # Phase 3: pipelined aggregation of the outdetect vertex labels into
        # tree-edge subtree sums.  The vector width (in words) is what the
        # pipeline pays for beyond the tree depth.
        vectors, width = self._flatten_outdetect_labels(tree)
        if width > 0:
            xor_sums, xor_report = pipelined_subtree_xor(self.graph, tree, vectors, width)
            self.rounds["outdetect_aggregation"] = xor_report["rounds"]
            self._distributed_subtree_xor = xor_sums
        else:
            self.rounds["outdetect_aggregation"] = 0
            self._distributed_subtree_xor = {v: [] for v in self.graph.vertices()}
        self._label_width_words = width

        # Phase 4: hierarchy construction round budget (Lemma 13), accounted
        # analytically for the segment-parallel NetFind emulation.
        m = max(self.graph.num_edges(), 2)
        diameter = max(bfs.rounds(), 1)
        self.rounds["hierarchy_budget"] = int(math.ceil(math.sqrt(m) * diameter
                                                        + math.log2(m) * diameter))

    # ------------------------------------------------------------------ helpers

    def _flatten_outdetect_labels(self, tree) -> tuple[dict, int]:
        """Flatten each original vertex's outdetect label into a word vector.

        Subdivision vertices of G' are simulated by one of their endpoints, so
        for the round accounting we aggregate the labels of original vertices
        over the original tree — the quantity whose pipelined aggregation
        dominates the communication.
        """
        outdetect = self.labeling.outdetect
        vectors = {}
        width = 0
        for vertex in self.graph.vertices():
            label = outdetect.label_of(vertex)
            flat = _flatten_label(label)
            vectors[vertex] = flat
            width = max(width, len(flat))
        for vertex, flat in vectors.items():
            if len(flat) < width:
                vectors[vertex] = flat + [0] * (width - len(flat))
        return vectors, width

    # ------------------------------------------------------------------ results

    def subtree_sizes(self) -> dict:
        """Distributed subtree sizes (phase 2 result)."""
        return dict(self._subtree_sizes)

    def distributed_subtree_xor(self) -> dict:
        """Distributed subtree XOR vectors (phase 3 result)."""
        return dict(self._distributed_subtree_xor)

    def label_width_words(self) -> int:
        return self._label_width_words

    def total_rounds(self) -> int:
        return sum(self.rounds.values())

    def theoretical_bound(self) -> float:
        """The Õ(√m·D + f²) bound of Theorem 3 (with the polylog spelled out)."""
        m = max(self.graph.num_edges(), 2)
        n = max(self.graph.num_vertices(), 2)
        diameter = max(self.rounds.get("bfs", 1), 1)
        f = self.config.max_faults
        polylog = math.log2(n) ** 3
        return math.sqrt(m) * diameter + f * f * polylog + diameter

    def report(self) -> dict:
        return {
            "rounds": dict(self.rounds),
            "total_rounds": self.total_rounds(),
            "theoretical_bound": self.theoretical_bound(),
            "label_width_words": self._label_width_words,
        }


def _flatten_label(label) -> list[int]:
    """Flatten a (possibly nested) outdetect label into a list of integer words."""
    if isinstance(label, int):
        return [label]
    flat: list[int] = []
    for part in label:
        flat.extend(_flatten_label(part))
    return flat
