"""A synchronous CONGEST-model simulator and the distributed construction of Section 8.

The CONGEST model is a synchronous message-passing network: in every round
each node may send one O(log n)-bit message over each incident edge.  The
simulator executes node algorithms round by round, counts rounds, and enforces
the per-message bit budget, which is what Theorem 3's round bounds are about.

* :mod:`repro.congest.simulator` — the round engine and the node API.
* :mod:`repro.congest.bfs` — distributed BFS-tree construction (O(D) rounds).
* :mod:`repro.congest.primitives` — broadcast, convergecast, and pipelined
  subtree-sum aggregation over a rooted tree.
* :mod:`repro.congest.construction` — the distributed label construction:
  ancestry labels and outdetect/tree-edge label aggregation, with round
  accounting compared against the Õ(√m·D + f²) bound.
"""

from repro.congest.simulator import CongestSimulator, Message, NodeAlgorithm
from repro.congest.bfs import DistributedBFS
from repro.congest.primitives import broadcast_value, convergecast_sum, pipelined_subtree_xor
from repro.congest.construction import DistributedLabelConstruction

__all__ = [
    "CongestSimulator",
    "Message",
    "NodeAlgorithm",
    "DistributedBFS",
    "broadcast_value",
    "convergecast_sum",
    "pipelined_subtree_xor",
    "DistributedLabelConstruction",
]
