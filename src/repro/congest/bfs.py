"""Distributed BFS-tree construction in the CONGEST model.

The root floods a "join" wave; every node adopts the first sender it hears
from as its parent and forwards the wave.  This takes ``D + O(1)`` rounds with
1-bit-plus-id messages, and the resulting parent map is exactly a BFS tree —
the spanning tree Section 8 fixes for the distributed construction.
"""

from __future__ import annotations

from typing import Hashable

from repro.congest.simulator import CongestSimulator, NodeAlgorithm
from repro.graphs.graph import Graph
from repro.graphs.spanning_tree import RootedTree

Vertex = Hashable


class _BFSAlgorithm(NodeAlgorithm):
    def __init__(self, root: Vertex):
        super().__init__()
        self.root = root

    def init(self, node, neighbors, state):
        state["parent"] = None
        state["level"] = None
        if node == self.root:
            state["level"] = 0
            self.halt(node)
            return {neighbor: 0 for neighbor in neighbors}
        return {}

    def compute(self, node, neighbors, state, inbox):
        if state["level"] is not None or not inbox:
            return {}
        # Adopt the smallest-keyed sender for determinism.
        chosen = min(inbox, key=lambda msg: (type(msg.sender).__name__, repr(msg.sender)))
        state["parent"] = chosen.sender
        state["level"] = chosen.payload + 1
        self.halt(node)
        return {neighbor: state["level"] for neighbor in neighbors if neighbor != chosen.sender}


class DistributedBFS:
    """Builds a BFS tree of a connected graph with a CONGEST algorithm."""

    def __init__(self, graph: Graph, root: Vertex):
        self.graph = graph
        self.root = root
        self.simulator = CongestSimulator(graph)
        self._states = self.simulator.run(_BFSAlgorithm(root))

    def rounds(self) -> int:
        return self.simulator.rounds_executed

    def parent_map(self) -> dict:
        return {vertex: state["parent"] for vertex, state in self._states.items()
                if state["parent"] is not None}

    def levels(self) -> dict:
        return {vertex: state["level"] for vertex, state in self._states.items()}

    def tree(self) -> RootedTree:
        """The BFS tree as a :class:`RootedTree` (raises if the graph was disconnected)."""
        parent = self.parent_map()
        missing = [v for v in self.graph.vertices() if v != self.root and v not in parent]
        if missing:
            raise ValueError("BFS did not reach %d vertices; graph disconnected?" % len(missing))
        return RootedTree(self.root, parent)
