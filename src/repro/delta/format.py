"""The ``FTCS-D`` delta artifact: a byte-level patch between two snapshots.

Layout (all integers are the varint/svarint codecs of
:mod:`repro.core.snapshot`; digests are raw SHA-256)::

    magic      b"FTCD"
    version    0x01
    target_fv  1 byte   -- the FTCS container version the target serializes as
    base       32 bytes -- SHA-256 of the exact base snapshot bytes
    target     32 bytes -- SHA-256 of the exact target snapshot bytes
    header     varint length + the target's header-field bytes
               (config / codec / outdetect, the shared v1/v2 encoding)
    vertex section
    edge section

Each section encodes three deterministic groups, keys in the library's
canonical sort order (:func:`repro.graphs.graph._vertex_key`):

    changed    varint count; per entry: key(s), op byte, payload
    added      varint count; per entry: key(s), varint blob length, blob
    removed    varint count; per entry: key(s)

A vertex entry carries one tagged key; an edge entry carries the canonical
edge's two keys.  Changed-entry ops:

* ``0x01`` (XOR spans, equal-length blobs): varint span count, then per span
  a varint gap from the end of the previous span, a varint length, and that
  many raw XOR bytes.  Labels are XOR-linear, so a local graph change leaves
  most label bytes untouched and the spans stay tiny.
* ``0x02`` (replace): varint length + the new blob, used when the blob length
  changed or when the XOR encoding would be larger.

Every failure mode — malformed delta, wrong base, any divergence between the
reconstruction and the recorded target digest — raises
:class:`~repro.errors.DeltaError` and nothing is written: the artifact is
fail-closed end to end.  :func:`diff_snapshots` additionally self-verifies
(applies its own output in memory) before returning, so a delta that exists
is a delta that works.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any

from repro.core.serialize import LabelDecodeError, read_varint, write_varint
from repro.core.snapshot import (SNAPSHOT_VERSION, SNAPSHOT_VERSION_V2,
                                 FTCSnapshot, _label_blob, _read_exact,
                                 read_vertex_key, write_vertex_key)
from repro.errors import DeltaError
from repro.graphs.graph import _vertex_key, canonical_edge

#: Magic prefix of every FTCS-D artifact.
DELTA_MAGIC = b"FTCD"

#: Format version of the delta container itself.
DELTA_VERSION = 1

#: Changed-entry op: XOR spans over an equal-length blob.
_OP_XOR = 0x01

#: Changed-entry op: full replacement blob.
_OP_REPLACE = 0x02

_DIGEST_BYTES = 32


def _sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _xor_spans(old: bytes, new: bytes) -> list[tuple[int, bytes]]:
    """Maximal differing runs of two equal-length blobs as ``(start, xor)``."""
    spans: list[tuple[int, bytes]] = []
    start: int | None = None
    for index, (a, b) in enumerate(zip(old, new)):
        if a != b:
            if start is None:
                start = index
        elif start is not None:
            spans.append((start, bytes(x ^ y for x, y in
                                       zip(old[start:index], new[start:index]))))
            start = None
    if start is not None:
        spans.append((start, bytes(x ^ y for x, y in
                                   zip(old[start:], new[start:]))))
    return spans


def _encode_xor_payload(old: bytes, new: bytes) -> bytes:
    out = bytearray()
    spans = _xor_spans(old, new)
    write_varint(len(spans), out)
    cursor = 0
    for start, patch in spans:
        write_varint(start - cursor, out)
        write_varint(len(patch), out)
        out += patch
        cursor = start + len(patch)
    return bytes(out)


def _apply_xor_payload(old: bytes, data: bytes, offset: int,
                       what: str) -> tuple[bytes, int]:
    patched = bytearray(old)
    span_count, offset = read_varint(data, offset)
    cursor = 0
    for _ in range(span_count):
        gap, offset = read_varint(data, offset)
        length, offset = read_varint(data, offset)
        start = cursor + gap
        if start + length > len(patched):
            raise DeltaError("%s XOR span at %d + %d bytes runs past the "
                             "%d-byte base blob" % (what, start, length,
                                                    len(patched)))
        patch, offset = _read_exact(data, offset, length, what + " XOR span")
        for index in range(length):
            patched[start + index] ^= patch[index]
        cursor = start + length
    return bytes(patched), offset


def _encode_changed(old: bytes, new: bytes, out: bytearray) -> None:
    """Append the op byte + payload for one changed blob (smaller encoding wins)."""
    replace = bytearray()
    write_varint(len(new), replace)
    replace += new
    if len(old) == len(new):
        xor_payload = _encode_xor_payload(old, new)
        if len(xor_payload) < len(replace):
            out.append(_OP_XOR)
            out += xor_payload
            return
    out.append(_OP_REPLACE)
    out += replace


def _sorted_vertices(labels: dict) -> list:
    return sorted(labels, key=_vertex_key)


def _sorted_edges(labels: dict) -> list:
    return sorted(labels, key=lambda e: (_vertex_key(e[0]), _vertex_key(e[1])))


def _write_keys(entry: Any, out: bytearray, edge: bool) -> None:
    if edge:
        write_vertex_key(entry[0], out)
        write_vertex_key(entry[1], out)
    else:
        write_vertex_key(entry, out)


def _read_keys(data: bytes, offset: int, edge: bool) -> tuple[Any, int]:
    if edge:
        u, offset = read_vertex_key(data, offset)
        v, offset = read_vertex_key(data, offset)
        try:
            return canonical_edge(u, v), offset
        except ValueError as error:
            raise DeltaError("invalid delta edge: %s" % error) from error
    return read_vertex_key(data, offset)


def _encode_section(base: dict, target: dict, out: bytearray,
                    edge: bool) -> None:
    order = _sorted_edges(target) if edge else _sorted_vertices(target)
    base_order = _sorted_edges(base) if edge else _sorted_vertices(base)
    changed = [key for key in order
               if key in base and _label_blob(base[key]) != _label_blob(target[key])]
    added = [key for key in order if key not in base]
    removed = [key for key in base_order if key not in target]

    write_varint(len(changed), out)
    for key in changed:
        _write_keys(key, out, edge)
        _encode_changed(_label_blob(base[key]), _label_blob(target[key]), out)
    write_varint(len(added), out)
    for key in added:
        _write_keys(key, out, edge)
        blob = _label_blob(target[key])
        write_varint(len(blob), out)
        out += blob
    write_varint(len(removed), out)
    for key in removed:
        _write_keys(key, out, edge)


def _apply_section(base: dict, data: bytes, offset: int, edge: bool,
                   what: str) -> tuple[dict, int]:
    patched = {key: _label_blob(value) for key, value in base.items()}
    changed_count, offset = read_varint(data, offset)
    for _ in range(changed_count):
        key, offset = _read_keys(data, offset, edge)
        if key not in patched:
            raise DeltaError("delta changes %s %r, which the base snapshot "
                             "does not contain" % (what, key))
        if offset >= len(data):
            raise DeltaError("truncated delta (missing %s op byte)" % what)
        op = data[offset]
        offset += 1
        if op == _OP_XOR:
            patched[key], offset = _apply_xor_payload(
                patched[key], data, offset, what)
        elif op == _OP_REPLACE:
            length, offset = read_varint(data, offset)
            blob, offset = _read_exact(data, offset, length, what + " blob")
            patched[key] = bytes(blob)
        else:
            raise DeltaError("unknown delta op byte 0x%02x for %s" % (op, what))
    added_count, offset = read_varint(data, offset)
    for _ in range(added_count):
        key, offset = _read_keys(data, offset, edge)
        if key in patched:
            raise DeltaError("delta adds %s %r, which the base snapshot "
                             "already contains" % (what, key))
        length, offset = read_varint(data, offset)
        blob, offset = _read_exact(data, offset, length, what + " blob")
        patched[key] = bytes(blob)
    removed_count, offset = read_varint(data, offset)
    for _ in range(removed_count):
        key, offset = _read_keys(data, offset, edge)
        if key not in patched:
            raise DeltaError("delta removes %s %r, which the base snapshot "
                             "does not contain" % (what, key))
        del patched[key]
    return patched, offset


# ------------------------------------------------------------------ diffing

def diff_snapshots(base: bytes, target: bytes) -> bytes:
    """The FTCS-D patch turning ``base`` into ``target`` (both FTCS bytes).

    The patch is verified before it is returned: applying it to ``base`` in
    memory must reproduce ``target`` byte-for-byte, or :class:`DeltaError` is
    raised and nothing escapes.  Raises
    :class:`~repro.core.serialize.LabelDecodeError` when either input is not
    a loadable snapshot.
    """
    base_snapshot = FTCSnapshot.from_bytes(base, decode_labels=False)
    target_snapshot = FTCSnapshot.from_bytes(target, decode_labels=False)

    out = bytearray(DELTA_MAGIC)
    out.append(DELTA_VERSION)
    out.append(target_snapshot.format_version)
    out += _sha256(bytes(base))
    out += _sha256(bytes(target))

    header = bytearray()
    target_snapshot._write_header_fields(header)
    write_varint(len(header), out)
    out += header

    _encode_section(base_snapshot.vertex_labels, target_snapshot.vertex_labels,
                    out, edge=False)
    _encode_section(base_snapshot.edge_labels, target_snapshot.edge_labels,
                    out, edge=True)
    delta = bytes(out)

    # Self-verification: a delta that exists is a delta that applies.  A
    # non-canonical target (labels stored out of the library's sort order)
    # cannot be reconstructed key-by-key, and fails here instead of at the
    # consumer.
    reconstructed = apply_delta(base, delta)
    if bytes(reconstructed) != bytes(target):
        raise DeltaError("delta self-verification failed: the target snapshot "
                         "is not in canonical serialization order")
    return delta


# ----------------------------------------------------------------- applying

def apply_delta(base: bytes, delta: bytes) -> bytes:
    """Reconstruct the target snapshot bytes from ``base`` + an FTCS-D patch.

    Fail-closed: the delta must parse, must have been diffed against exactly
    these base bytes (SHA-256 match), and the reconstruction must hash to the
    recorded target digest — otherwise :class:`DeltaError`.
    """
    try:
        return _apply_delta(bytes(base), bytes(delta))
    except LabelDecodeError as error:
        # Codec primitives shared with repro.core.snapshot raise
        # LabelDecodeError; inside a delta artifact that is a delta failure.
        raise DeltaError("malformed delta: %s" % error) from error


def _apply_delta(base: bytes, delta: bytes) -> bytes:
    header = _parse_delta_header(delta)
    if _sha256(base) != header["base_digest"]:
        raise DeltaError("delta was built against a different base snapshot "
                         "(base digest mismatch)")
    base_snapshot = FTCSnapshot.from_bytes(base, decode_labels=False)

    offset = int(header["sections_offset"])
    vertex_labels, offset = _apply_section(
        base_snapshot.vertex_labels, delta, offset, edge=False,
        what="vertex label")
    edge_labels, offset = _apply_section(
        base_snapshot.edge_labels, delta, offset, edge=True,
        what="edge label")
    if offset != len(delta):
        raise DeltaError("%d trailing bytes after the delta payload"
                         % (len(delta) - offset))

    target_version = int(header["target_format_version"])
    target = FTCSnapshot(
        config=header["config"],
        codec_modulus=header["codec_modulus"],
        field_width=header["field_width"],
        field_modulus=header["field_modulus"],
        outdetect=header["outdetect"],
        vertex_labels={key: vertex_labels[key]
                       for key in _sorted_vertices(vertex_labels)},
        edge_labels={key: edge_labels[key]
                     for key in _sorted_edges(edge_labels)},
        format_version=target_version,
    )
    data = target.to_bytes() if target_version == SNAPSHOT_VERSION \
        else target.to_bytes_v2()
    if _sha256(data) != header["target_digest"]:
        raise DeltaError("applied delta does not reproduce the recorded "
                         "target snapshot (target digest mismatch)")
    return data


def _parse_delta_header(delta: bytes) -> dict:
    """Validate the fixed prefix + header blob; returns the parsed fields."""
    prefix = len(DELTA_MAGIC) + 2 + 2 * _DIGEST_BYTES
    if len(delta) < prefix:
        raise DeltaError("byte string too short to hold an FTCS-D header")
    if delta[:len(DELTA_MAGIC)] != DELTA_MAGIC:
        raise DeltaError("bad delta magic %r (expected %r)"
                         % (delta[:len(DELTA_MAGIC)], DELTA_MAGIC))
    version = delta[len(DELTA_MAGIC)]
    if version != DELTA_VERSION:
        raise DeltaError("unsupported delta format version %d (this build "
                         "reads version %d)" % (version, DELTA_VERSION))
    target_format_version = delta[len(DELTA_MAGIC) + 1]
    if target_format_version not in (SNAPSHOT_VERSION, SNAPSHOT_VERSION_V2):
        raise DeltaError("delta records unknown target snapshot version %d"
                         % target_format_version)
    digests = delta[len(DELTA_MAGIC) + 2:prefix]
    base_digest = digests[:_DIGEST_BYTES]
    target_digest = digests[_DIGEST_BYTES:]

    header_length, offset = read_varint(delta, offset=prefix)
    header_blob, offset = _read_exact(delta, offset, header_length,
                                      "delta header blob")
    config, codec_modulus, field_width, field_modulus, descriptor, consumed = \
        FTCSnapshot._read_header_fields(bytes(header_blob), 0)
    if consumed != len(header_blob):
        raise DeltaError("%d trailing bytes inside the delta header blob"
                         % (len(header_blob) - consumed))
    return {
        "target_format_version": target_format_version,
        "base_digest": bytes(base_digest),
        "target_digest": bytes(target_digest),
        "config": config,
        "codec_modulus": codec_modulus,
        "field_width": field_width,
        "field_modulus": field_modulus,
        "outdetect": descriptor,
        "sections_offset": offset,
    }


def describe_delta(delta: bytes) -> dict:
    """Human-oriented summary of a delta artifact (no base required)."""
    try:
        header = _parse_delta_header(bytes(delta))
        offset = int(header["sections_offset"])
        counts: dict = {}
        for section, edge in (("vertex", False), ("edge", True)):
            for group in ("changed", "added", "removed"):
                count, offset = read_varint(delta, offset)
                counts["%s_%s" % (section, group)] = count
                for _ in range(count):
                    _, offset = _read_keys(bytes(delta), offset, edge)
                    if group == "removed":
                        continue
                    if group == "changed":
                        if offset >= len(delta):
                            raise DeltaError("truncated delta entry")
                        op = delta[offset]
                        offset += 1
                        if op == _OP_XOR:
                            span_count, offset = read_varint(delta, offset)
                            for _ in range(span_count):
                                _, offset = read_varint(delta, offset)
                                length, offset = read_varint(delta, offset)
                                _, offset = _read_exact(bytes(delta), offset,
                                                        length, "XOR span")
                            continue
                        if op != _OP_REPLACE:
                            raise DeltaError("unknown delta op byte 0x%02x" % op)
                    length, offset = read_varint(delta, offset)
                    _, offset = _read_exact(bytes(delta), offset, length, "blob")
    except LabelDecodeError as error:
        raise DeltaError("malformed delta: %s" % error) from error
    summary = {
        "format": "ftcs-delta",
        "delta_version": DELTA_VERSION,
        "target_snapshot_version": header["target_format_version"],
        "base_sha256": bytes(header["base_digest"]).hex(),
        "target_sha256": bytes(header["target_digest"]).hex(),
        "bytes": len(delta),
    }
    summary.update(counts)
    return summary


# -------------------------------------------------------------------- files

def diff_snapshot_files(base: Any, target: Any, destination: Any) -> dict:
    """File-level :func:`diff_snapshots` (``repro snapshot-diff``).

    Reads both snapshots, writes the self-verified delta to ``destination``,
    and returns a summary dict for the CLI to print.
    """
    base_bytes = Path(base).read_bytes()
    target_bytes = Path(target).read_bytes()
    delta = diff_snapshots(base_bytes, target_bytes)
    Path(destination).write_bytes(delta)
    summary = describe_delta(delta)
    summary.update({
        "base": str(base),
        "target": str(target),
        "destination": str(destination),
        "base_bytes": len(base_bytes),
        "target_bytes": len(target_bytes),
    })
    return summary


def apply_delta_file(base: Any, delta: Any, destination: Any) -> dict:
    """File-level :func:`apply_delta` (``repro snapshot-apply``).

    The reconstructed target is written to ``destination`` only after the
    digest verification passes; a failing delta writes nothing.
    """
    base_bytes = Path(base).read_bytes()
    delta_bytes = Path(delta).read_bytes()
    data = apply_delta(base_bytes, delta_bytes)
    Path(destination).write_bytes(data)
    return {
        "base": str(base),
        "delta": str(delta),
        "destination": str(destination),
        "bytes": len(data),
        "target_sha256": _sha256(data).hex(),
    }


__all__ = [
    "DELTA_MAGIC",
    "DELTA_VERSION",
    "apply_delta",
    "apply_delta_file",
    "describe_delta",
    "diff_snapshot_files",
    "diff_snapshots",
]
