"""Incremental rebuilds: patch a base labeling instead of starting over.

The outdetect labels are XOR sums of per-edge parity rows, so a level whose
structural parameters survive a graph edit (same threshold, same field, same
vertex set) can be patched: XOR out the rows of the removed edges, XOR in the
rows of the added ones, and the result is *exactly* the matrix a from-scratch
build would produce — XOR associativity is the byte-identity guarantee.

What can break that locality is the spanning-tree-derived structure: edge
identifiers come from the ancestry labeling of the rooted spanning tree
(:mod:`repro.core.transform`), so an edit that changes the tree (or the
identifier codec's width) re-identifies *every* edge and the "patch" would be
larger than the rebuild.  :func:`incremental_labeling` therefore decides per
level: patch when the changed-edge set is small, fall back to the plan's
normal shard construction when it is not — either way the resulting labeling
(and its snapshot) is byte-identical to a from-scratch build, only the work
differs.  ``build_report.reused_level_count`` says which path each level took.

Sketch variants (randomized, single global level) are never patched; they run
the normal plan.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.build.plan import BuildPlan, BuildResult
from repro.core.config import FTCConfig
from repro.core.ftc import FTCLabeling
from repro.graphs.graph import Graph, _vertex_key, canonical_edge

#: A level is patched only when the changed-edge set is this much smaller
#: than the level's full edge set — past that, scratch construction is both
#: simpler and cheaper (patching touches two rows per changed edge; a scratch
#: build touches two rows per level edge).
REUSE_MAX_CHANGED_FRACTION = 0.5


def plan_edge_diff(base_graph: Graph, target_graph: Graph) -> dict:
    """The canonical edge/vertex diff between two graphs (a summary dict).

    Deterministically ordered (the library's vertex sort order), so reports
    and tests see stable lists.
    """
    base_edges = set(base_graph.edges())
    target_edges = set(target_graph.edges())
    base_vertices = set(base_graph.vertices())
    target_vertices = set(target_graph.vertices())
    edge_key = lambda e: (_vertex_key(e[0]), _vertex_key(e[1]))  # noqa: E731
    return {
        "added_edges": sorted(target_edges - base_edges, key=edge_key),
        "removed_edges": sorted(base_edges - target_edges, key=edge_key),
        "added_vertices": sorted(target_vertices - base_vertices,
                                 key=_vertex_key),
        "removed_vertices": sorted(base_vertices - target_vertices,
                                   key=_vertex_key),
    }


def apply_edge_diff(base_graph: Graph, add_edges: Iterable = (),
                    remove_edges: Iterable = ()) -> Graph:
    """The target graph of an edge-list diff (copy, remove, add).

    Raises :class:`KeyError` when a removed edge is not present, mirroring
    :meth:`~repro.graphs.graph.Graph.remove_edge`.
    """
    graph = base_graph.copy()
    for u, v in remove_edges:
        graph.remove_edge(u, v)
    for u, v in add_edges:
        graph.add_edge(u, v)
    return graph


def incremental_labeling(base: FTCLabeling, graph: Graph | None = None, *,
                         add_edges: Iterable = (), remove_edges: Iterable = (),
                         executor: Any = None,
                         jobs: int | None = None) -> FTCLabeling:
    """Build the labeling of an edited graph, reusing the base where possible.

    ``graph`` is the full target graph; alternatively pass the edit itself
    (``add_edges`` / ``remove_edges`` against ``base.graph``).  The returned
    labeling — and therefore its ``FTCS`` snapshot — is byte-identical to
    ``FTCLabeling(graph, base.config)`` built from scratch; per-level shard
    construction is skipped wherever the base level's matrix can be patched
    (``build_report.reused_level_count`` reports how often that happened).
    """
    if graph is None:
        graph = apply_edge_diff(base.graph, add_edges, remove_edges)
    elif list(add_edges) or list(remove_edges):
        raise ValueError("pass either a target graph or an edge diff, not both")
    config: FTCConfig = base.config
    plan = BuildPlan(graph, config)
    result: BuildResult = plan.run(executor, jobs,
                                   level_reuse=_level_reuse_hook(base))
    return FTCLabeling.from_build_result(graph, config, result)


def _level_reuse_hook(base: FTCLabeling) -> Any:
    """The :data:`~repro.build.plan.LevelReuseHook` patching ``base``'s levels."""
    base_levels = getattr(base.outdetect, "level_schemes", None)

    def reuse(level_index: int, threshold: int, edge_ids: dict,
              vertices: list, field: Any) -> list | None:
        if base_levels is None or level_index >= len(base_levels):
            return None
        scheme = base_levels[level_index]
        if scheme.threshold != threshold:
            return None
        if scheme.field.width != getattr(field, "width", None) or \
                scheme.field.modulus != getattr(field, "modulus", None):
            return None
        base_labels = scheme._labels
        base_ids = scheme.edge_ids
        delta_items: list = []
        for edge, identifier in edge_ids.items():
            base_id = base_ids.get(edge)
            if base_id is None:
                delta_items.append((edge, identifier))
            elif base_id != identifier:
                # XOR symmetry: one row cancels the stale identifier, the
                # other installs the new one.
                delta_items.append((edge, base_id))
                delta_items.append((edge, identifier))
        for edge, base_id in base_ids.items():
            if edge not in edge_ids:
                delta_items.append((edge, base_id))
        zero_row = [0] * (2 * threshold)
        if not delta_items:
            return [list(base_labels.get(vertex, zero_row))
                    for vertex in vertices]
        if len(delta_items) > REUSE_MAX_CHANGED_FRACTION * len(edge_ids):
            return None  # locality broke; scratch construction is cheaper
        # A graph edit renames the subdivision leaves of the changed edges,
        # so the level's vertex set drifts with the edit: a vertex new to
        # this level starts from the zero row (all its incident level edges
        # are delta additions), and removals may reference base-only
        # vertices — the delta matrix is computed over the union and
        # truncated back to the target rows.
        extended = list(vertices)
        known = set(vertices)
        for (u, v), _ in delta_items:
            for endpoint in (u, v):
                if endpoint not in known:
                    known.add(endpoint)
                    extended.append(endpoint)
        delta_rows = scheme.label_matrix(extended, delta_items)
        patched = []
        for vertex, delta_row in zip(vertices, delta_rows):
            row = list(base_labels.get(vertex, zero_row))
            scheme.bulk.xor_accumulate(row, [delta_row])
            patched.append(row)
        return patched

    return reuse


__all__ = [
    "REUSE_MAX_CHANGED_FRACTION",
    "apply_edge_diff",
    "incremental_labeling",
    "plan_edge_diff",
]
