"""``repro.delta`` — delta snapshots (FTCS-D) and incremental rebuilds.

The labeling is XOR-linear per outdetect level, so most graph changes touch
only a small fraction of the label bytes.  This package exploits that twice:

* :mod:`repro.delta.format` defines the versioned, fail-closed **FTCS-D**
  artifact — the byte-level patch between two ``FTCS`` snapshots.
  :func:`diff_snapshots` produces it, :func:`apply_delta` reconstructs the
  target byte-for-byte (verified by digest, or :class:`~repro.errors.DeltaError`).
* :mod:`repro.delta.incremental` rebuilds a labeling after an edge-list diff
  by reusing every untouched per-level shard of the base labeling — the
  output is byte-identical to a from-scratch build.

Callers outside the library go through the :mod:`repro.api` facades
(``diff_snapshots`` / ``apply_delta`` / ``Oracle.build_delta``) or the CLI
(``repro snapshot-diff`` / ``repro snapshot-apply``).
"""

from __future__ import annotations

from repro.delta.format import (DELTA_MAGIC, DELTA_VERSION, apply_delta,
                                apply_delta_file, describe_delta,
                                diff_snapshot_files, diff_snapshots)
from repro.delta.incremental import (apply_edge_diff, incremental_labeling,
                                     plan_edge_diff)

__all__ = [
    "DELTA_MAGIC",
    "DELTA_VERSION",
    "apply_delta",
    "apply_delta_file",
    "apply_edge_diff",
    "describe_delta",
    "diff_snapshot_files",
    "diff_snapshots",
    "incremental_labeling",
    "plan_edge_diff",
]
