"""repro.analysis: the repo-specific AST invariant linter.

Run it as ``python -m repro.analysis`` (or ``repro lint``).  The rules encode
the seam contracts the rest of the codebase relies on — facade-only oracle
construction, the shared error hierarchy, async/executor discipline, lock
discipline, bulk/scalar parity, and build determinism.  See
:mod:`repro.analysis.rules` for the rule catalogue and
:mod:`repro.analysis.baseline` for the committed-debt workflow.
"""

from repro.analysis.baseline import (BASELINE_FILENAME, BaselineError,
                                     load_baseline, partition, write_baseline)
from repro.analysis.engine import Report, main, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.parity import (PARITY_TABLE, ParityPair,
                                   pairs_for_module, registered_bulk_names)
from repro.analysis.rules import (LOCK_CONTRACTS, RULES, LockContract,
                                  ModuleFile, Rule, rules_by_code)
from repro.analysis.suppressions import ALLOW_ALL, is_suppressed, suppressed_codes

__all__ = [
    "ALLOW_ALL", "BASELINE_FILENAME", "BaselineError", "Finding",
    "LOCK_CONTRACTS", "LockContract", "ModuleFile", "PARITY_TABLE",
    "ParityPair", "Report", "RULES", "Rule", "is_suppressed", "load_baseline",
    "main", "pairs_for_module", "partition", "registered_bulk_names",
    "rules_by_code", "run_analysis", "suppressed_codes", "write_baseline",
]
