"""The analysis driver: discover files, run rules, apply baseline, report.

``python -m repro.analysis`` (and the ``repro lint`` CLI subcommand) both land
in :func:`main` here.  The pipeline is deliberately linear:

1. discover ``src/repro/**/*.py`` and ``benchmarks/*.py`` under the root
   (or the explicit paths given on the command line),
2. parse each file once and hand it to every selected rule whose
   ``applies_to`` accepts the path,
3. drop findings carrying an inline ``# repro: allow[...]`` suppression,
4. subtract the committed baseline (``analysis-baseline.json``) with
   multiplicity, and
5. emit human or JSON output; exit 1 iff new findings remain (2 on usage or
   baseline-format errors).

Everything is stdlib-only so the linter runs in any environment the repo
itself runs in — including the no-numpy CI job.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import (BASELINE_FILENAME, BaselineError,
                                     load_baseline, partition, write_baseline)
from repro.analysis.findings import Finding
from repro.analysis.rules import (PARSE_ERROR_CODE, RULES, ModuleFile, Rule,
                                  rules_by_code)
from repro.analysis.suppressions import is_suppressed, suppressed_codes

#: Directories (relative to the root) whose ``*.py`` files are analyzed.
_SOURCE_GLOBS = (("src/repro", "**/*.py"), ("benchmarks", "*.py"))


@dataclass
class Report:
    """Everything one analysis run produced, pre- and post-baseline."""

    root: Path
    files_scanned: int = 0
    rules_run: list = field(default_factory=list)   #: rule codes, in order
    findings: list = field(default_factory=list)    #: after suppressions
    suppressed: int = 0                             #: inline-suppressed count
    new_findings: list = field(default_factory=list)
    baselined: int = 0
    stale_baseline: list = field(default_factory=list)

    def counts_by_code(self) -> dict:
        counts = Counter(finding.code for finding in self.new_findings)
        return {code: counts[code] for code in sorted(counts)}

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "tool": "repro.analysis",
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.new_findings],
            "counts_by_code": self.counts_by_code(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline_entries": list(self.stale_baseline),
        }


def discover_files(root: Path) -> list:
    """All analyzable files under ``root``, sorted for deterministic output."""
    paths: list = []
    for base, pattern in _SOURCE_GLOBS:
        directory = root / base
        if directory.is_dir():
            paths.extend(sorted(directory.glob(pattern)))
    return paths


def _relpath(path: Path, root: Path) -> str:
    """Root-relative POSIX path of ``path``.

    Compares fully resolved paths first, then the textual relationship, so a
    checkout reached through a symlink works either way.  Raises
    ``ValueError`` when ``path`` lies outside ``root`` under both views —
    ``main`` turns that into the documented exit-2 usage error.
    """
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.relative_to(root).as_posix()


def _module_name(relpath: str) -> str | None:
    """Dotted module name for ``src/`` files (else ``None``)."""
    if not relpath.startswith("src/"):
        return None
    dotted = relpath[len("src/"):-len(".py")].replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[:-len(".__init__")]
    return dotted


def load_module_file(path: Path,
                     root: Path) -> tuple[ModuleFile | None, Finding | None]:
    """Parse one file; returns ``(ModuleFile | None, Finding | None)``."""
    relpath = _relpath(path, root)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        finding = Finding(path=relpath, line=error.lineno or 1,
                          col=(error.offset or 1) - 1, code=PARSE_ERROR_CODE,
                          message="file does not parse: %s" % error.msg)
        return None, finding
    return ModuleFile(path=path, relpath=relpath, source=source, tree=tree,
                      module_name=_module_name(relpath)), None


def run_analysis(root: Path, rules: Sequence[Rule] | None = None,
                 paths: Sequence[Path] | None = None) -> Report:
    """Run ``rules`` (default: all) over ``paths`` (default: discovered)."""
    selected = list(RULES) if rules is None else list(rules)
    report = Report(root=root, rules_run=[rule.code for rule in selected])
    files = discover_files(root) if paths is None else list(paths)
    for path in files:
        report.files_scanned += 1
        module, parse_finding = load_module_file(path, root)
        if module is None:
            if parse_finding is not None:
                report.findings.append(parse_finding)
            continue
        raw: list[Finding] = []
        for rule in selected:
            if rule.applies_to(module.relpath):
                raw.extend(rule.check(module))
        if not raw:
            continue
        allowed = suppressed_codes(module.source)
        for finding in sorted(raw):
            if is_suppressed(allowed, finding.line, finding.code):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    # Without a baseline every finding is new; main() overwrites this split
    # after loading the committed baseline.
    report.new_findings = list(report.findings)
    return report


def _select_rules(spec: str) -> list:
    registry = rules_by_code()
    selected: list[Rule] = []
    for code in spec.split(","):
        code = code.strip().upper()
        if not code:
            continue
        if code not in registry:
            raise KeyError(code)
        selected.append(registry[code])
    return selected


def _resolve_root(argument: str) -> Path:
    """Explicit ``--root``, else cwd if it looks like the repo, else the
    checkout this package was imported from."""
    if argument:
        return Path(argument).resolve()
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    return Path(__file__).resolve().parents[3]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific AST invariant linter (rules RPL001-RPL006).")
    parser.add_argument("paths", nargs="*",
                        help="specific files to analyze (default: all of "
                             "src/repro and benchmarks)")
    parser.add_argument("--root", default="",
                        help="repository root (default: auto-detect)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--rules", default="",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--baseline", default="",
                        help="baseline file (default: <root>/%s if present)"
                             % BASELINE_FILENAME)
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline; every finding is new")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the baseline and "
                             "exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule codes and exit")
    return parser


def _print_text(report: Report, stream: TextIO) -> None:
    for finding in report.new_findings:
        print(finding.render(), file=stream)
    summary = ("%d file(s) scanned, %d new finding(s), %d baselined, "
               "%d suppressed"
               % (report.files_scanned, len(report.new_findings),
                  report.baselined, report.suppressed))
    print(summary, file=stream)
    for identity in report.stale_baseline:
        print("stale baseline entry (fixed? remove it): %s" % identity,
              file=stream)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        if options.format == "json":
            print(json.dumps([{"code": rule.code, "name": rule.name,
                               "description": rule.description}
                              for rule in RULES], indent=2))
        else:
            for rule in RULES:
                print("%s  %-18s %s" % (rule.code, rule.name,
                                        rule.description))
        return 0

    root = _resolve_root(options.root)
    if not (root / "src" / "repro").is_dir():
        print("error: %s does not look like the repo root "
              "(no src/repro)" % root, file=sys.stderr)
        return 2

    try:
        rules = _select_rules(options.rules) if options.rules else None
    except KeyError as error:
        print("error: unknown rule code %s (see --list-rules)" % error,
              file=sys.stderr)
        return 2

    paths: list[Path] | None = None
    if options.paths:
        paths = []
        for raw in options.paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            if not path.is_file():
                print("error: no such file: %s" % raw, file=sys.stderr)
                return 2
            try:
                _relpath(path, root)
            except ValueError:
                print("error: %s is outside the analysis root %s"
                      % (raw, root), file=sys.stderr)
                return 2
            paths.append(path)

    report = run_analysis(root, rules=rules, paths=paths)

    baseline_path = Path(options.baseline) if options.baseline \
        else root / BASELINE_FILENAME
    if options.write_baseline:
        total = write_baseline(baseline_path, report.findings)
        print("wrote %s: %d finding(s) baselined" % (baseline_path, total))
        return 0

    baseline: Counter = Counter()
    if not options.no_baseline and baseline_path.is_file():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
    report.new_findings, report.baselined, report.stale_baseline = \
        partition(report.findings, baseline)

    if options.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        _print_text(report, sys.stdout)
    return 1 if report.new_findings else 0


__all__ = ["Report", "run_analysis", "discover_files", "load_module_file",
           "build_parser", "main"]
