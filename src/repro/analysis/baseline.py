"""The committed finding baseline: known debt that must not block CI.

The baseline is a JSON file mapping finding identities (see
:meth:`~repro.analysis.findings.Finding.identity`) to the number of matching
findings that are grandfathered.  A lint run subtracts the baseline from what
it found: only findings *beyond* the baselined count are "new" and fail the
run, so pre-existing debt is recorded once instead of blocking every PR —
and fixing a baselined finding without removing its entry is reported as a
*stale* entry (a nudge to shrink the file, never an error).

Workflow::

    python -m repro.analysis --write-baseline   # record today's debt
    python -m repro.analysis                    # exits 0: all debt baselined
    # ...someone introduces a new violation...
    python -m repro.analysis                    # exits 1: 1 new finding

Entries are sorted and counts explicit, so diffs of the baseline file review
like any other code change: an entry added is debt taken on, an entry removed
is debt paid off.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

#: Default baseline filename, resolved against the analysis root.
BASELINE_FILENAME = "analysis-baseline.json"

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but is not a valid baseline document."""


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into an identity -> grandfathered-count Counter."""
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise BaselineError("%s is not valid JSON: %s" % (path, error)) from error
    if not isinstance(document, dict) or \
            document.get("version") != _FORMAT_VERSION or \
            not isinstance(document.get("entries"), dict):
        raise BaselineError(
            "%s is not a repro.analysis baseline (expected {'version': %d, "
            "'entries': {...}})" % (path, _FORMAT_VERSION))
    entries: Counter = Counter()
    for identity, count in document["entries"].items():
        if not isinstance(identity, str) or not isinstance(count, int) or count < 1:
            raise BaselineError("%s: bad entry %r: %r" % (path, identity, count))
        entries[identity] = count
    return entries


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write the baseline covering ``findings``; returns the entry count."""
    entries = Counter(finding.identity() for finding in findings)
    document = {
        "version": _FORMAT_VERSION,
        "tool": "repro.analysis",
        "entries": {identity: entries[identity] for identity in sorted(entries)},
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return sum(entries.values())


def partition(findings: Sequence[Finding],
              baseline: Counter) -> tuple[list[Finding], int, list[str]]:
    """Split findings into (new, baselined count, stale baseline identities).

    Findings sharing one identity consume baseline budget in source order, so
    with a budget of 1 and two copies the first is baselined and the second is
    new — the multiplicity rule that keeps "add one more of the same bug"
    failing.
    """
    remaining = Counter(baseline)
    new_findings: list[Finding] = []
    baselined = 0
    for finding in findings:
        identity = finding.identity()
        if remaining[identity] > 0:
            remaining[identity] -= 1
            baselined += 1
        else:
            new_findings.append(finding)
    stale = sorted(identity for identity, count in remaining.items() if count > 0)
    return new_findings, baselined, stale


__all__ = ["BASELINE_FILENAME", "BaselineError", "load_baseline",
           "write_baseline", "partition"]
