"""Inline suppression comments: ``# repro: allow[RPL002] why it is fine``.

A finding is suppressed when the physical line it is reported on carries an
``allow`` comment naming its rule code (or ``*`` for any code).  The comment
syntax deliberately requires the bracketed code list — a bare ``# repro:
allow`` suppresses nothing — and everything after the closing bracket is the
human justification, which reviewers should insist on.

Comments are found with :mod:`tokenize`, not a regex over raw lines, so the
pattern inside a string literal (e.g. in this very test suite's fixtures)
never suppresses anything by accident.
"""

from __future__ import annotations

import io
import re
import tokenize

#: Matches the comment body; group 1 is the comma-separated code list.
#: Codes match case-insensitively (normalized to upper case below), mirroring
#: the engine's ``--rules`` parsing — ``allow[rpl001]`` must not silently
#: suppress nothing.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9*,\s]+)\]")

#: Sentinel code meaning "every rule" (``allow[*]``).
ALLOW_ALL = "*"


def suppressed_codes(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the set of rule codes allowed there.

    Unparseable token streams yield no suppressions (the engine reports the
    syntax error separately); the set may contain :data:`ALLOW_ALL`.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            codes = {code.strip().upper() for code in match.group(1).split(",")}
            codes.discard("")
            if codes:
                suppressions.setdefault(token.start[0], set()).update(codes)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return suppressions


def is_suppressed(suppressions: dict[int, set[str]], line: int, code: str) -> bool:
    """Whether ``code`` is allowed on ``line`` by an inline comment."""
    codes = suppressions.get(line)
    if not codes:
        return False
    return code in codes or ALLOW_ALL in codes


__all__ = ["suppressed_codes", "is_suppressed", "ALLOW_ALL"]
