"""The unit of linter output: one :class:`Finding` at one source location.

A finding carries a stable rule code (``RPL001``...), a repo-root-relative
POSIX path, a 1-based line and 0-based column, and a deterministic message.
Two renderings exist:

* :meth:`Finding.render` — the human ``path:line:col: CODE message`` line.
* :meth:`Finding.to_dict` — the JSON object emitted under ``--format json``.

The *identity* of a finding (:meth:`Finding.identity`) deliberately excludes
the line and column: the committed baseline matches findings by
``code|path|message`` so that unrelated edits moving a known finding a few
lines does not resurrect it as "new" debt.  Identities are compared with
multiplicity (a :class:`collections.Counter`), so two copies of the same
violation in one file still require two baseline entries.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location (ordered for stable output)."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def identity(self) -> str:
        """Line-independent identity used by the baseline (see module doc)."""
        return "|".join((self.code, self.path, self.message))

    def render(self) -> str:
        """The human-readable one-line rendering."""
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col,
                                    self.code, self.message)

    def to_dict(self) -> dict:
        """The JSON object for ``--format json`` (key order is schema order)."""
        return {"code": self.code, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


__all__ = ["Finding"]
