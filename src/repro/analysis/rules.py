"""The repo-specific invariant rules (``RPL001``...``RPL007``).

Each rule encodes one seam contract of this codebase as an AST check — the
invariants that used to live only in reviewers' heads and one-off tests:

======= ==================== =====================================================
Code    Name                 Invariant
======= ==================== =====================================================
RPL001  seam-discipline      Entry points (``cli.py``, ``benchmarks/``) construct
                             oracles only via :mod:`repro.api`.
RPL002  error-discipline     API-boundary modules raise only the shared
                             :mod:`repro.errors` hierarchy; nothing in ``src/``
                             swallows exceptions blindly.
RPL003  async-safety         No blocking calls lexically inside ``async def``
                             bodies of :mod:`repro.server` — oracle work routes
                             through the executor offload.
RPL004  lock-discipline      Attributes registered as lock-guarded are only
                             mutated under ``with self.<lock>:`` (checked
                             intraprocedurally).
RPL005  bulk-scalar-parity   Every public ``*_many`` op in ``repro.coding`` /
                             ``repro.outdetect`` is registered in
                             :mod:`repro.analysis.parity` with its scalar twin.
RPL006  determinism          Build/decode modules use no wall-clock, unseeded
                             randomness, or set-iteration ordering — snapshot
                             bytes must be reproducible.
RPL007  swap-discipline      The serving oracle pointer is replaced only through
                             the hot-swap seam
                             (:meth:`SessionManager.swap_oracle`) — never by a
                             bare ``<obj>.oracle = ...`` assignment elsewhere in
                             :mod:`repro.server`.
======= ==================== =====================================================

All checks are lexical and intraprocedural on purpose: they are approximations
a contributor can predict, suppress inline with a justification
(``# repro: allow[RPLxxx] why``), and never wait on a type checker for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.parity import pairs_for_module, registered_bulk_names

#: Reserved code for files the engine cannot parse at all.
PARSE_ERROR_CODE = "RPL000"


@dataclass
class ModuleFile:
    """One parsed source file as the rules see it."""

    path: Path
    relpath: str          #: repo-root-relative POSIX path
    source: str
    tree: ast.Module
    module_name: str | None = None  #: dotted name for ``src/`` files, else None


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _self_attribute_root(node: ast.AST) -> str | None:
    """The first attribute name of a ``self.<attr>...`` chain, else ``None``.

    Subscripts and further attribute hops are peeled: ``self._cache[k].x``
    roots at ``_cache``.
    """
    root: str | None = None
    while True:
        if isinstance(node, ast.Attribute):
            root = node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name) and node.id == "self":
        return root
    return None


class Rule:
    """Base interface: one stable code, one scope predicate, one AST check."""

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, relpath: str) -> bool:
        raise NotImplementedError

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        raise NotImplementedError

    def _finding(self, module: ModuleFile, node: ast.AST, message: str) -> Finding:
        return Finding(path=module.relpath, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), code=self.code,
                       message=message)


# --------------------------------------------------------------------- RPL001

class SeamDisciplineRule(Rule):
    """Entry points construct oracles only through the :mod:`repro.api` facade.

    Generalizes (and replaces) the old test that grepped ``cli.py`` for
    transport-specific class names: any import of a transport implementation
    module, or any reference to a transport class/factory, is a finding.
    The sanctioned spellings are ``open_oracle(...)``, ``Oracle.build/load/
    connect``, and — for serving — ``repro.server.server.run_server`` /
    ``BackgroundServer``.
    """

    code = "RPL001"
    name = "seam-discipline"
    description = ("entry points (cli.py, benchmarks/) must construct oracles "
                   "via repro.api, never transport classes directly")

    FORBIDDEN_MODULES = frozenset({
        "repro.core.ftc", "repro.core.oracle", "repro.core.snapshot",
        "repro.server.client",
    })
    FORBIDDEN_NAMES = frozenset({
        "FTConnectivityOracle", "FTCLabeling", "RehydratedOracle",
        "load_snapshot", "QueryClient", "AsyncQueryClient",
    })

    def applies_to(self, relpath: str) -> bool:
        return relpath == "src/repro/cli.py" or relpath.startswith("benchmarks/")

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self.FORBIDDEN_MODULES:
                        yield self._finding(module, node,
                                            self._import_message(alias.name))
            elif isinstance(node, ast.ImportFrom):
                from_module = node.module or ""
                if from_module in self.FORBIDDEN_MODULES:
                    yield self._finding(module, node,
                                        self._import_message(from_module))
                else:
                    for alias in node.names:
                        if alias.name in self.FORBIDDEN_NAMES:
                            yield self._finding(module, node,
                                                self._name_message(alias.name))
            elif isinstance(node, ast.Name) and node.id in self.FORBIDDEN_NAMES:
                yield self._finding(module, node, self._name_message(node.id))
            elif isinstance(node, ast.Attribute) and \
                    node.attr in self.FORBIDDEN_NAMES:
                yield self._finding(module, node, self._name_message(node.attr))

    def _import_message(self, module_name: str) -> str:
        return ("imports transport module %s; entry points go through "
                "repro.api (open_oracle / Oracle.build|load|connect)"
                % module_name)

    def _name_message(self, name: str) -> str:
        return ("references transport symbol %s; entry points go through "
                "repro.api (open_oracle / Oracle.build|load|connect)" % name)


# --------------------------------------------------------------------- RPL002

class ErrorDisciplineRule(Rule):
    """API boundaries raise the shared hierarchy; nothing swallows blindly.

    Two checks share the code:

    * everywhere under ``src/repro``: no bare ``except:``, no ``except
      Exception/BaseException:`` whose body is only ``pass``/``...``, and no
      ``contextlib.suppress(Exception)`` — the silent-swallow patterns;
    * in the API-boundary modules (``api.py``, ``errors.py``, ``server/*``):
      every ``raise SomeClass(...)`` names either the shared hierarchy
      (:mod:`repro.errors` plus the documented ``QueryFailure`` /
      ``LabelDecodeError`` / ``ProtocolError``), a class defined in the same
      module (boundary modules may extend the hierarchy locally), or one of
      the builtins the oracle contract documents (``KeyError``, ``ValueError``,
      ...).  Re-raises and dynamically computed exceptions are not judged.
    """

    code = "RPL002"
    name = "error-discipline"
    description = ("API-boundary modules raise only the repro.errors "
                   "hierarchy; no bare/except-Exception-pass swallowing "
                   "in src/")

    RAISE_SCOPES = ("src/repro/api.py", "src/repro/errors.py")
    RAISE_PREFIXES = ("src/repro/server/",)

    #: The shared hierarchy plus the documented per-layer error types.
    ALLOWED_SHARED = frozenset({
        "OracleError", "TransportError", "QueryFailure", "LabelDecodeError",
        "ProtocolError", "RemoteOracleError", "DeltaError",
    })
    #: Builtins the oracle contract documents (unknown ids, over-budget
    #: faults, misuse) plus the interpreter-level types no hierarchy owns.
    ALLOWED_BUILTINS = frozenset({
        "KeyError", "ValueError", "TypeError", "RuntimeError",
        "NotImplementedError", "OSError", "FileNotFoundError",
        "TimeoutError", "ConnectionError", "StopIteration",
        "StopAsyncIteration", "KeyboardInterrupt", "AssertionError",
    })
    BROAD = frozenset({"Exception", "BaseException"})

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def _raise_checked(self, relpath: str) -> bool:
        return relpath in self.RAISE_SCOPES or \
            relpath.startswith(self.RAISE_PREFIXES)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        local_classes = {node.name for node in ast.walk(module.tree)
                         if isinstance(node, ast.ClassDef)}
        check_raises = self._raise_checked(module.relpath)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name in ("contextlib.suppress", "suppress"):
                    for argument in node.args:
                        arg_name = _dotted_name(argument)
                        if arg_name in self.BROAD:
                            yield self._finding(
                                module, node,
                                "contextlib.suppress(%s) swallows every error; "
                                "suppress the specific types instead" % arg_name)
            elif check_raises and isinstance(node, ast.Raise):
                yield from self._check_raise(module, node, local_classes)

    def _check_handler(self, module: ModuleFile,
                       node: ast.ExceptHandler) -> Iterator[Finding]:
        if node.type is None:
            yield self._finding(module, node,
                                "bare except: catches everything including "
                                "KeyboardInterrupt; name the exception types")
            return
        caught = [node.type] if not isinstance(node.type, ast.Tuple) \
            else list(node.type.elts)
        broad = [name for name in map(_dotted_name, caught) if name in self.BROAD]
        if broad and self._body_swallows(node.body):
            yield self._finding(
                module, node,
                "except %s with a pass-only body swallows every error; "
                "narrow the type or handle it" % broad[0])

    @staticmethod
    def _body_swallows(body: list) -> bool:
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and \
                    isinstance(statement.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    def _check_raise(self, module: ModuleFile, node: ast.Raise,
                     local_classes: set) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:  # bare re-raise
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = _dotted_name(exc)
        if name is None:
            return
        terminal = name.rsplit(".", 1)[-1]
        # Lowercase terminals are variables or factory calls (``raise error``,
        # ``raise map_server_error(e)``) — not statically judgeable.
        if not terminal[:1].isupper():
            return
        if terminal in self.ALLOWED_SHARED or \
                terminal in self.ALLOWED_BUILTINS or \
                terminal in local_classes:
            return
        yield self._finding(
            module, node,
            "raises %s at an API boundary; raise the shared repro.errors "
            "hierarchy (or a documented builtin) so all transports agree"
            % terminal)


# --------------------------------------------------------------------- RPL003

class AsyncSafetyRule(Rule):
    """No blocking work lexically inside ``async def`` bodies of the server.

    Flags (i) calls to known-blocking stdlib entry points (``time.sleep``,
    ``open``, synchronous socket construction, ``subprocess``), (ii)
    non-awaited calls of the oracle's expensive session/query methods —
    those must ride ``loop.run_in_executor(...)`` as function references —
    and (iii) direct ``BatchQuerySession(...)`` construction.  Nested
    synchronous ``def``/``lambda`` bodies reset the context: a lambda handed
    to the executor *is* the offload pattern.
    """

    code = "RPL003"
    name = "async-safety"
    description = ("no blocking calls inside async def bodies of "
                   "repro.server; oracle work goes through the executor")

    BLOCKING_CALLS = frozenset({
        "time.sleep", "socket.socket", "socket.create_connection",
        "socket.socketpair", "open", "subprocess.run", "subprocess.Popen",
        "subprocess.check_output", "subprocess.check_call", "os.system",
    })
    OFFLOAD_METHODS = frozenset({
        "batch_session", "build_sessions", "connected", "connected_many",
    })

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/server/")

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        findings: list[Finding] = []
        self._visit(module, module.tree, in_async=False, findings=findings)
        yield from findings

    def _visit(self, module: ModuleFile, node: ast.AST, in_async: bool,
               findings: list) -> None:
        if isinstance(node, ast.AsyncFunctionDef):
            for child in node.decorator_list:
                self._visit(module, child, in_async, findings)
            for child in node.body:
                self._visit(module, child, True, findings)
            return
        if isinstance(node, (ast.FunctionDef, ast.Lambda)):
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._visit(module, child, False, findings)
            return
        if isinstance(node, ast.Await):
            # An awaited call is a sanctioned coroutine; its arguments are
            # still inspected (a blocking call nested in them stays flagged).
            if isinstance(node.value, ast.Call):
                for child in ast.iter_child_nodes(node.value):
                    if child is not node.value.func:
                        self._visit(module, child, in_async, findings)
                return
            self._visit(module, node.value, in_async, findings)
            return
        if isinstance(node, ast.Call) and in_async:
            self._check_call(module, node, findings)
        for child in ast.iter_child_nodes(node):
            self._visit(module, child, in_async, findings)

    def _check_call(self, module: ModuleFile, node: ast.Call,
                    findings: list) -> None:
        name = _dotted_name(node.func)
        if name in self.BLOCKING_CALLS:
            findings.append(self._finding(
                module, node,
                "blocking call %s() inside async def; offload it via "
                "loop.run_in_executor" % name))
        elif name == "BatchQuerySession":
            findings.append(self._finding(
                module, node,
                "constructs BatchQuerySession on the event loop; session "
                "construction must run on the executor"))
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr in self.OFFLOAD_METHODS:
            findings.append(self._finding(
                module, node,
                "calls .%s() synchronously inside async def; pass it to "
                "loop.run_in_executor (or await the SessionManager coroutine)"
                % node.func.attr))


# --------------------------------------------------------------------- RPL004

@dataclass(frozen=True)
class LockContract:
    """One class whose registered attributes may only mutate under its lock."""

    relpath: str
    class_name: str
    lock_attr: str
    guarded: frozenset
    #: Methods that run before the instance is shared (no lock needed).
    exempt_methods: frozenset = dataclass_field(
        default_factory=lambda: frozenset({"__init__"}))


#: The race-detector-lite registry.  ``SessionManager._inflight`` is absent
#: on purpose: it is event-loop-confined (mutated only from the loop thread),
#: which a lexical rule cannot distinguish from a race — the confinement is
#: documented at the attribute instead.  ``ServerMetrics`` itself now holds
#: only registry metric objects (each thread-safe under its own lock, the
#: ``repro.obs.registry`` contracts below); its legacy entry stays so any
#: reintroduction of bare counters on the class is caught.
LOCK_CONTRACTS: tuple[LockContract, ...] = (
    LockContract("src/repro/server/metrics.py", "ServerMetrics", "_lock",
                 frozenset({
                     "_requests", "_errors", "_latency_sum", "_latency_max",
                     "_connections_opened", "_connections_active",
                     "_session_hits", "_session_misses", "_session_coalesced",
                     "_session_failures", "_queries_answered",
                 })),
    LockContract("src/repro/server/session_manager.py", "SessionManager",
                 "_hot_lock", frozenset({"_hot_keys", "_hot_key_names",
                                         "_hot_key_faults"})),
    # The hot-swap quadruple: the oracle pointer, its epoch, the per-epoch
    # lease counts, and the retired-but-leased oracles move together or the
    # swap races a request pinning the pointer (reads are epoch-tolerant by
    # design; every *mutation* must be atomic with the epoch bump).
    LockContract("src/repro/server/session_manager.py", "SessionManager",
                 "_swap_lock", frozenset({"oracle", "_epoch", "_leases",
                                          "_retired"})),
    LockContract("src/repro/pool/oracle.py", "PooledOracle", "_lock",
                 frozenset({"_queries_answered"})),
    LockContract("src/repro/core/ftc.py", "LabelBackedQueries",
                 "_session_lock",
                 frozenset({"_session_cache", "_session_evictions"}),
                 exempt_methods=frozenset({"__init__", "_init_session_cache"})),
    LockContract("src/repro/obs/registry.py", "Counter", "_lock",
                 frozenset({"_values"})),
    LockContract("src/repro/obs/registry.py", "Gauge", "_lock",
                 frozenset({"_values"})),
    LockContract("src/repro/obs/registry.py", "Histogram", "_lock",
                 frozenset({"_children"})),
    LockContract("src/repro/obs/registry.py", "MetricsRegistry", "_lock",
                 frozenset({"_metrics"})),
    LockContract("src/repro/obs/tracing.py", "Tracer", "_lock",
                 frozenset({"_spans_emitted", "_slow_spans"})),
)

#: Method names that mutate their receiver.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "subtract",
})


class LockDisciplineRule(Rule):
    """Registered lock-guarded attributes mutate only under their lock."""

    code = "RPL004"
    name = "lock-discipline"
    description = ("attributes registered in LOCK_CONTRACTS may only be "
                   "mutated inside `with self.<lock>:` blocks")

    def applies_to(self, relpath: str) -> bool:
        return any(contract.relpath == relpath for contract in LOCK_CONTRACTS)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        contracts = {contract.class_name: contract
                     for contract in LOCK_CONTRACTS
                     if contract.relpath == module.relpath}
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name in contracts:
                contract = contracts[node.name]
                for method in node.body:
                    if isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)) and \
                            method.name not in contract.exempt_methods:
                        findings: list[Finding] = []
                        self._visit(module, contract, method, method.body,
                                    locked=False, findings=findings)
                        yield from findings

    def _visit(self, module: ModuleFile, contract: LockContract,
               method: ast.FunctionDef | ast.AsyncFunctionDef,
               body: list, locked: bool, findings: list) -> None:
        for node in body:
            node_locked = locked
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(_self_attribute_root(item.context_expr) ==
                       contract.lock_attr for item in node.items):
                    node_locked = True
            if not node_locked:
                self._check_statement(module, contract, method, node, findings)
            # Recurse into compound statement bodies, preserving lock context.
            # ExceptHandler and match_case are not statements themselves; their
            # bodies are flattened into the visited statement list.
            for field_name in ("body", "orelse", "finalbody", "handlers",
                               "cases"):
                children = getattr(node, field_name, None)
                if children:
                    nested: list[ast.stmt] = []
                    for child in children:
                        if isinstance(child, (ast.ExceptHandler,
                                              ast.match_case)):
                            nested.extend(child.body)
                        else:
                            nested.append(child)
                    self._visit(module, contract, method, nested, node_locked,
                                findings)

    def _check_statement(self, module: ModuleFile, contract: LockContract,
                         method: ast.FunctionDef | ast.AsyncFunctionDef,
                         node: ast.stmt, findings: list) -> None:
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                root = _self_attribute_root(func.value)
                if root is not None and root in contract.guarded:
                    findings.append(self._mutation_finding(
                        module, node, contract, method, root,
                        ".%s()" % func.attr))
            return
        for target in targets:
            root = _self_attribute_root(target)
            if root is not None and root in contract.guarded:
                findings.append(self._mutation_finding(
                    module, node, contract, method, root, "assignment"))

    def _mutation_finding(self, module: ModuleFile, node: ast.stmt,
                          contract: LockContract,
                          method: ast.FunctionDef | ast.AsyncFunctionDef,
                          attr: str, how: str) -> Finding:
        return self._finding(
            module, node,
            "%s.%s mutated (%s) in %s() outside `with self.%s:`"
            % (contract.class_name, attr, how, method.name, contract.lock_attr))


# --------------------------------------------------------------------- RPL005

class BulkScalarParityRule(Rule):
    """Public ``*_many`` ops must be registered with their scalar twin.

    Checked both ways against :data:`repro.analysis.parity.PARITY_TABLE`:
    an unregistered public ``*_many`` definition is a finding, and a
    registered pair whose scalar or bulk member is missing from the module
    that declares it is a finding (the table must never drift from the
    code — the bit-identity tests consume the same table).
    """

    code = "RPL005"
    name = "bulk-scalar-parity"
    description = ("every public *_many op in repro.coding / repro.outdetect "
                   "is registered in repro.analysis.parity with its scalar "
                   "twin")

    SCOPES = ("src/repro/coding/", "src/repro/outdetect/")

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(self.SCOPES)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        if module.module_name is None:
            return
        defs = self._collect_defs(module.tree)
        registered = registered_bulk_names()
        for qualname, node in sorted(defs.items()):
            terminal = qualname.rsplit(".", 1)[-1]
            if terminal.startswith("_") or not terminal.endswith("_many"):
                continue
            pair = registered.get((module.module_name, qualname))
            if pair is None:
                yield self._finding(
                    module, node,
                    "public bulk op %s is not registered in "
                    "repro.analysis.parity.PARITY_TABLE; pair it with its "
                    "scalar twin so the bit-identity tests drive it"
                    % qualname)
            elif pair.scalar not in defs:
                yield self._finding(
                    module, node,
                    "registered scalar twin %s of %s does not exist in %s"
                    % (pair.scalar, qualname, module.module_name))
        for pair in pairs_for_module(module.module_name):
            for member in (pair.scalar, pair.bulk):
                if member not in defs:
                    yield self._finding(
                        module, module.tree,
                        "PARITY_TABLE entry (%s, %s) no longer resolves: "
                        "%s is not defined in %s"
                        % (pair.scalar, pair.bulk, member, module.module_name))

    @staticmethod
    def _collect_defs(tree: ast.Module) -> dict[str, ast.AST]:
        defs: dict[str, ast.AST] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for method in node.body:
                    if isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        defs["%s.%s" % (node.name, method.name)] = method
        return defs


# --------------------------------------------------------------------- RPL006

class DeterminismRule(Rule):
    """Build/decode modules must produce byte-identical artifacts.

    Flags the ambient-nondeterminism sources a reproducible labeling cannot
    contain: module-level ``random.*`` (the sanctioned seam is a seeded
    ``random.Random(seed)`` instance), ``os.urandom`` / ``secrets`` /
    ``uuid``, wall-clock reads (``time.time``; ``time.perf_counter`` is fine
    — it only feeds build reports), builtin ``hash()`` outside ``__hash__``
    (PYTHONHASHSEED-dependent for strings), and direct iteration over a set
    literal / ``set(...)`` call (iteration order is ambient; sort first).
    """

    code = "RPL006"
    name = "determinism"
    description = ("no unseeded randomness, wall-clock, or set-iteration "
                   "ordering in build/decode modules")

    SCOPES = tuple("src/repro/%s/" % package for package in
                   ("coding", "outdetect", "gf2", "core", "build", "graphs",
                    "hierarchy", "labeling"))
    FORBIDDEN_CALLS = frozenset({
        "os.urandom", "time.time", "time.time_ns", "uuid.uuid1", "uuid.uuid4",
    })

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(self.SCOPES)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        findings: list[Finding] = []
        self._visit(module, module.tree, in_hash=False, findings=findings)
        yield from findings

    def _visit(self, module: ModuleFile, node: ast.AST, in_hash: bool,
               findings: list) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            in_hash = node.name == "__hash__"
        elif isinstance(node, ast.ImportFrom):
            self._check_import(module, node, findings)
        elif isinstance(node, ast.Call):
            self._check_call(module, node, in_hash, findings)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_iterable(module, node.iter, findings)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                self._check_iterable(module, generator.iter, findings)
        for child in ast.iter_child_nodes(node):
            self._visit(module, child, in_hash, findings)

    def _check_import(self, module: ModuleFile, node: ast.ImportFrom,
                      findings: list) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    findings.append(self._finding(
                        module, node,
                        "imports random.%s; only seeded random.Random "
                        "instances are deterministic" % alias.name))
        elif node.module == "secrets":
            findings.append(self._finding(
                module, node, "imports secrets; build/decode modules must "
                              "be deterministic"))

    def _check_call(self, module: ModuleFile, node: ast.Call, in_hash: bool,
                    findings: list) -> None:
        name = _dotted_name(node.func)
        if name is None:
            return
        if name.startswith("random.") and name != "random.Random":
            findings.append(self._finding(
                module, node,
                "calls %s(); use a seeded random.Random instance (the "
                "config's random_seed seam)" % name))
        elif name in self.FORBIDDEN_CALLS or name.startswith("secrets."):
            findings.append(self._finding(
                module, node,
                "calls %s(); snapshot bytes must not depend on ambient "
                "entropy or wall-clock time" % name))
        elif name == "hash" and not in_hash:
            findings.append(self._finding(
                module, node,
                "calls builtin hash() outside __hash__; string hashes vary "
                "with PYTHONHASHSEED — use hashlib or a stable key"))

    def _check_iterable(self, module: ModuleFile, iterable: ast.AST,
                        findings: list) -> None:
        flagged = isinstance(iterable, ast.Set)
        if isinstance(iterable, ast.Call):
            flagged = _dotted_name(iterable.func) in ("set", "frozenset")
        if flagged:
            findings.append(self._finding(
                module, iterable,
                "iterates a set directly; set order is ambient — sort it "
                "(sorted(...)) before iterating in a build/decode path"))


# --------------------------------------------------------------------- RPL007

class SwapDisciplineRule(Rule):
    """The serving oracle is replaced only through the hot-swap seam.

    Zero-downtime reload works because exactly one code path —
    :meth:`SessionManager.swap_oracle` — flips the oracle pointer, under
    ``_swap_lock``, atomically with the epoch bump and the lease bookkeeping.
    A bare ``server.oracle = new`` / ``self.oracle = new`` anywhere else in
    :mod:`repro.server` would bypass the lease protocol: in-flight requests
    pinned to the old epoch could close an oracle still being read, or the
    epoch gauge would lie.  This rule flags every assignment whose target is
    an ``.oracle`` attribute in server code, outside the two sanctioned
    sites (``SessionManager.__init__`` and ``SessionManager.swap_oracle``).

    Lexical and intraprocedural like the other rules: any attribute named
    ``oracle`` counts, whatever the receiver — over-approximate on purpose,
    suppressible inline with ``# repro: allow[RPL007] why``.
    """

    code = "RPL007"
    name = "swap-discipline"
    description = ("the serving oracle pointer is assigned only inside "
                   "SessionManager.__init__ / SessionManager.swap_oracle")

    SCOPE = "src/repro/server/"
    ALLOWED_SITES = frozenset({("SessionManager", "__init__"),
                               ("SessionManager", "swap_oracle")})

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(self.SCOPE)

    def check(self, module: ModuleFile) -> Iterator[Finding]:
        findings: list[Finding] = []
        self._visit(module, module.tree, class_name=None, method_name=None,
                    findings=findings)
        yield from findings

    def _visit(self, module: ModuleFile, node: ast.AST,
               class_name: str | None, method_name: str | None,
               findings: list) -> None:
        if isinstance(node, ast.ClassDef):
            class_name, method_name = node.name, None
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if method_name is None:
                method_name = node.name
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        target.attr == "oracle" and \
                        (class_name, method_name) not in self.ALLOWED_SITES:
                    findings.append(self._finding(
                        module, node,
                        "assigns %s in %s — the serving oracle is replaced "
                        "only via SessionManager.swap_oracle (the lease-"
                        "protocol seam)"
                        % (ast.unparse(target),
                           "%s.%s()" % (class_name, method_name)
                           if class_name and method_name
                           else (method_name or "module scope"))))
        for child in ast.iter_child_nodes(node):
            self._visit(module, child, class_name, method_name, findings)


#: Registry in code order; the engine runs them all unless ``--rules`` picks.
RULES: tuple[Rule, ...] = (
    SeamDisciplineRule(),
    ErrorDisciplineRule(),
    AsyncSafetyRule(),
    LockDisciplineRule(),
    BulkScalarParityRule(),
    DeterminismRule(),
    SwapDisciplineRule(),
)


def rules_by_code() -> dict[str, Rule]:
    return {rule.code: rule for rule in RULES}


__all__ = ["ModuleFile", "Rule", "RULES", "rules_by_code", "LOCK_CONTRACTS",
           "LockContract", "PARSE_ERROR_CODE", "SeamDisciplineRule",
           "ErrorDisciplineRule", "AsyncSafetyRule", "LockDisciplineRule",
           "BulkScalarParityRule", "DeterminismRule", "SwapDisciplineRule"]
