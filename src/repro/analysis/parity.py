"""The bulk/scalar parity registry: every scalar decode op and its bulk twin.

PR 6 made the whole decode/query hot path bulk-first: every scalar primitive
(``syndrome_of``, ``berlekamp_massey``, ``find_roots``, ``decode``...) grew a
``*_many`` counterpart that must return, element for element, exactly what the
scalar reference computes.  That discipline only survives if it is *declared*
somewhere machine-readable — this table — and consumed from both sides:

* The linter's RPL005 rule checks the table against the AST of
  ``repro.coding`` / ``repro.outdetect``: a public ``*_many`` definition that
  is not registered here fails lint, as does a registered pair whose scalar
  or bulk member no longer exists in the source.
* ``tests/test_coding_batch.py`` imports :data:`PARITY_TABLE` and resolves
  every pair at runtime, so an entry that lints clean but does not import
  fails the tier-1 suite.

Adding a new bulk primitive therefore takes three steps, and forgetting any
one of them fails CI: implement ``X`` and ``X_many`` bit-identically,
register the pair here, and extend the bit-identity tests to drive it.

The naming convention the discovery side of RPL005 enforces: bulk twins are
named ``<scalar>_many`` (extra aliases like ``find_roots_bulk`` may be
registered on top, but do not satisfy the convention by themselves).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, cast


@dataclass(frozen=True)
class ParityPair:
    """One scalar primitive paired with its registered bulk counterpart.

    ``scalar`` and ``bulk`` are qualified names within ``module``: a bare
    function name (``berlekamp_massey``) or ``Class.method``
    (``SyndromeEncoder.syndrome_of``).
    """

    module: str
    scalar: str
    bulk: str

    def resolve(self) -> tuple[Callable, Callable]:
        """Import the module and return ``(scalar, bulk)`` callables.

        Raises :class:`AttributeError` / :class:`ImportError` when the table
        has drifted from the code — exactly what the consuming test asserts
        never happens.
        """
        return (_resolve_qualname(self.module, self.scalar),
                _resolve_qualname(self.module, self.bulk))


def _resolve_qualname(module_name: str, qualname: str) -> Callable:
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return cast(Callable, obj)


#: Every scalar decode primitive of the coding/outdetect layers and its bulk
#: twin.  Order is presentation order (module, then pipeline order).
PARITY_TABLE: tuple[ParityPair, ...] = (
    ParityPair("repro.coding.syndrome",
               "SyndromeEncoder.encode", "SyndromeEncoder.encode_many"),
    ParityPair("repro.coding.syndrome",
               "SyndromeEncoder.syndrome_of", "SyndromeEncoder.syndrome_of_many"),
    ParityPair("repro.coding.berlekamp_massey",
               "berlekamp_massey", "berlekamp_massey_many"),
    ParityPair("repro.coding.rootfind", "find_roots", "find_roots_many"),
    # A second registered alias of the same scalar: the single-poly bulk
    # sweep used when only one locator needs roots.
    ParityPair("repro.coding.rootfind", "find_roots", "find_roots_bulk"),
    ParityPair("repro.coding.rs_decoder",
               "SparseRecoveryDecoder.decode", "SparseRecoveryDecoder.decode_many"),
    ParityPair("repro.outdetect.base",
               "OutdetectScheme.decode", "OutdetectScheme.decode_many"),
    ParityPair("repro.outdetect.rs_threshold",
               "RSThresholdOutdetect.decode", "RSThresholdOutdetect.decode_many"),
    ParityPair("repro.outdetect.layered",
               "LayeredOutdetect.decode", "LayeredOutdetect.decode_many"),
)


def registered_bulk_names() -> dict[tuple[str, str], ParityPair]:
    """``(module, bulk qualname) -> pair`` lookup for the RPL005 rule."""
    return {(pair.module, pair.bulk): pair for pair in PARITY_TABLE}


def pairs_for_module(module_name: str) -> list[ParityPair]:
    """All registered pairs declared to live in ``module_name``."""
    return [pair for pair in PARITY_TABLE if pair.module == module_name]


__all__ = ["ParityPair", "PARITY_TABLE", "registered_bulk_names",
           "pairs_for_module"]
