"""Baseline schemes and oracles the paper compares against.

* :mod:`repro.baselines.naive` — exact recomputation oracles (BFS on G - F and
  an offline union-find oracle); the ground truth of every experiment.
* :mod:`repro.baselines.dory_parter` — the Dory--Parter sketch-based f-FTC
  labeling schemes (whp and full query support), i.e. the randomized schemes
  of Table 1 that the paper derandomizes.
* :mod:`repro.baselines.cycle_space` — Pritchard--Thurimella cycle-space
  sampling cut labels, the substrate of the *first* Dory--Parter scheme,
  provided as an additional baseline labeling for small cut detection.
"""

from repro.baselines.naive import ExactConnectivityOracle, UnionFindConnectivityOracle
from repro.baselines.dory_parter import DoryParterScheme
from repro.baselines.cycle_space import CycleSpaceCutLabeling

__all__ = [
    "ExactConnectivityOracle",
    "UnionFindConnectivityOracle",
    "DoryParterScheme",
    "CycleSpaceCutLabeling",
]
