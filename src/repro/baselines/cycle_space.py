"""Cycle-space sampling cut labels (Pritchard--Thurimella [PT11]).

This is the randomized substrate of the *first* Dory--Parter scheme: every
non-tree edge receives a random bit vector, and every tree edge receives the
XOR of the vectors of the non-tree edges whose fundamental cycle covers it.
The defining property is that the XOR of the labels over any *cut* ``∂(S)``
is always zero (every fundamental cycle crosses a cut an even number of
times), while edge sets that are not unions of cuts have a non-zero XOR with
high probability over the random vectors.  Equivalently: the labels of the
tree edges of ``∂_T(S)`` XOR to the labels of the non-tree edges of
``∂(S) \\ ∂_T(S)``, which is what makes small-cut detection/verification
possible from labels alone.

The library uses it as a baseline labeling for cut verification experiments;
the deterministic scheme of the paper does not rely on it.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.spanning_tree import RootedTree, non_tree_edges

Vertex = Hashable


class CycleSpaceCutLabeling:
    """Random cycle-space labels for all edges of a graph.

    Parameters
    ----------
    graph / tree:
        The graph and a rooted spanning tree of it.
    width:
        Number of random bits per label; failure probability of each
        membership test is ``2^-width``.
    seed:
        Seed of the (reproducible) randomness.
    """

    def __init__(self, graph: Graph, tree: RootedTree, width: int = 32, seed: int = 0):
        self.graph = graph
        self.tree = tree
        self.width = width
        rng = random.Random(seed)
        self._labels: dict[Edge, int] = {}
        # Step 1: random vectors on non-tree edges.
        for edge in non_tree_edges(graph, tree):
            self._labels[edge] = rng.getrandbits(width)
        # Step 2: tree edges get the XOR of the non-tree edges covering them.
        # Computed bottom-up: the label of tree edge (v, parent(v)) is the XOR
        # of the labels of all non-tree edges with exactly one endpoint in the
        # subtree of v, which equals the XOR over the subtree of a per-vertex
        # incidence XOR (each internal non-tree edge cancels).
        vertex_xor: dict[Vertex, int] = {vertex: 0 for vertex in tree.vertices()}
        for edge, value in list(self._labels.items()):
            u, v = edge
            vertex_xor[u] ^= value
            vertex_xor[v] ^= value
        subtree_xor: dict[Vertex, int] = {}
        for vertex in tree.postorder():
            total = vertex_xor[vertex]
            for child in tree.children(vertex):
                total ^= subtree_xor[child]
            subtree_xor[vertex] = total
        for vertex in tree.vertices():
            parent = tree.parent(vertex)
            if parent is None:
                continue
            self._labels[canonical_edge(vertex, parent)] = subtree_xor[vertex]

    # ------------------------------------------------------------------ labels

    def edge_label(self, u: Vertex, v: Vertex) -> int:
        return self._labels[canonical_edge(u, v)]

    def combined_label(self, edges: Iterable[Edge]) -> int:
        total = 0
        for u, v in edges:
            total ^= self.edge_label(u, v)
        return total

    def label_bit_size(self) -> int:
        return self.width

    # --------------------------------------------------------------- predicates

    def xor_is_zero(self, edges: Iterable[Edge]) -> bool:
        """Whether the labels of the edge set XOR to zero.

        Always true for cuts; false with probability ``1 - 2^-width`` for an
        edge set that differs from every union of cuts.
        """
        return self.combined_label(edges) == 0

    def cut_consistent(self, vertex_set: set) -> bool:
        """The deterministic guarantee: the cut ``∂(S)`` always XORs to zero.

        Each fundamental cycle crosses any cut an even number of times, so the
        label of a cut is the XOR, over the fundamental cycles, of an even
        number of copies of the cycle's random vector.
        """
        boundary = [edge for edge in self.graph.edges()
                    if (edge[0] in vertex_set) != (edge[1] in vertex_set)]
        return self.xor_is_zero(boundary)

    def verify_cut_candidate(self, tree_edges: Iterable[Edge],
                             non_tree_edges: Iterable[Edge]) -> bool:
        """Whp verification that the given tree/non-tree edges form a full cut.

        This is the way the first Dory--Parter scheme consumes the labels: a
        claimed cut is accepted iff the XOR over all its edges vanishes.
        """
        return self.xor_is_zero(list(tree_edges) + list(non_tree_edges))
