"""The Dory--Parter sketch-based f-FTC labeling schemes ([DP21], Table 1 rows 2 and 4).

These are thin, named wrappers around the library's modular pipeline with the
outdetect component instantiated by the randomized AGM graph sketch instead of
the deterministic Reed--Solomon labels — exactly the relationship the paper
describes ("one can easily transform our deterministic scheme into an
efficient randomized FTC labeling scheme ... just by replacing the graph
sparsification part").

* ``whp`` query support: O(log n) sketch repetitions; each individual query is
  answered correctly with high probability, but across all n^{O(f)} possible
  queries some are wrong.
* ``full`` query support: repetitions scaled by ``f`` (the footnote-4 variant
  of [DP21]), driving the per-query failure probability low enough for a union
  bound over all queries.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.graphs.graph import Edge, Graph

Vertex = Hashable


class DoryParterScheme:
    """The sketch-based Dory--Parter labeling scheme (second scheme of [DP21])."""

    def __init__(self, graph: Graph, max_faults: int, full_query_support: bool = False,
                 seed: int = 0, repetitions: int = 8):
        variant = SchemeVariant.SKETCH_FULL if full_query_support else SchemeVariant.SKETCH_WHP
        self.config = FTCConfig(
            max_faults=max_faults,
            variant=variant,
            random_seed=seed,
            sketch_repetitions=repetitions,
        )
        self.full_query_support = full_query_support
        self.labeling = FTCLabeling(graph, self.config)
        self.graph = graph

    def connected(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> bool:
        """Answer a connectivity query (may be wrong with small probability)."""
        return self.labeling.connected(s, t, faults)

    def label_size_stats(self) -> dict:
        stats = self.labeling.label_size_stats()
        stats["full_query_support"] = self.full_query_support
        return stats

    def error_rate(self, queries: Iterable[tuple]) -> dict:
        """Empirical error rate over explicit queries — the whp-vs-full experiment."""
        wrong = 0
        failed = 0
        total = 0
        for s, t, faults in queries:
            total += 1
            expected = self.graph.connected(s, t, removed=list(faults))
            try:
                answer = self.connected(s, t, faults)
            except Exception:
                failed += 1
                continue
            if answer != expected:
                wrong += 1
        return {
            "total": total,
            "wrong": wrong,
            "failed": failed,
            "error_rate": (wrong + failed) / total if total else 0.0,
        }
