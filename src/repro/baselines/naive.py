"""Exact (non-labeling) connectivity oracles used as ground truth and baselines.

These oracles have full access to the graph, unlike labeling schemes.  They
serve two purposes: they are the correctness reference of every test and audit,
and they are the "centralized oracle" baselines against which the labeling
scheme's query time is compared in the Table-1 benchmarks.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graphs.graph import Edge, Graph, canonical_edge

Vertex = Hashable


class ExactConnectivityOracle:
    """Answers queries by running BFS on G - F (always correct, O(n + m) per query)."""

    def __init__(self, graph: Graph):
        self.graph = graph

    def connected(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> bool:
        return self.graph.connected(s, t, removed=list(faults))


class _DisjointSet:
    """Union-find with path compression and union by size."""

    def __init__(self, items: Iterable[Vertex]):
        self._parent = {item: item for item in items}
        self._size = {item: 1 for item in self._parent}

    def find(self, item: Vertex) -> Vertex:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Vertex, b: Vertex) -> bool:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def same(self, a: Vertex, b: Vertex) -> bool:
        return self.find(a) == self.find(b)


class UnionFindConnectivityOracle:
    """Rebuilds a union-find over the surviving edges per fault set.

    Faster than BFS when many (s, t) pairs are queried under the *same* fault
    set, because the union-find is cached per fault set — the natural
    "centralized oracle" comparison point for batched queries.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self._cache: dict[frozenset, _DisjointSet] = {}

    def connected(self, s: Vertex, t: Vertex, faults: Iterable[Edge] = ()) -> bool:
        key = frozenset(canonical_edge(u, v) for u, v in faults)
        structure = self._cache.get(key)
        if structure is None:
            structure = _DisjointSet(self.graph.vertices())
            for u, v in self.graph.edges():
                if canonical_edge(u, v) not in key:
                    structure.union(u, v)
            self._cache[key] = structure
        return structure.same(s, t)

    def cache_size(self) -> int:
        return len(self._cache)
