"""Query-batch generation for the benchmark harness and audits."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.query import QueryFailure
from repro.graphs.graph import Edge, Graph
from repro.workloads.faults import FaultModel, sample_fault_sets


@dataclass
class QueryWorkload:
    """A reproducible batch of (s, t, F) queries plus ground-truth answers."""

    queries: list = field(default_factory=list)          # list of (s, t, faults)
    ground_truth: list = field(default_factory=list)     # list of bool

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def pairs(self) -> Iterable[tuple]:
        """Iterate (query, expected_answer) pairs."""
        return zip(self.queries, self.ground_truth)

    def disconnected_fraction(self) -> float:
        """Fraction of queries whose ground-truth answer is 'not connected'."""
        if not self.ground_truth:
            return 0.0
        return sum(1 for answer in self.ground_truth if not answer) / len(self.ground_truth)


def make_query_workload(graph: Graph, num_queries: int, max_faults: int,
                        model: FaultModel = FaultModel.TREE_BIASED,
                        exact_fault_count: bool = True,
                        seed: int = 0) -> QueryWorkload:
    """Build a query batch with ground truth computed by BFS.

    Parameters
    ----------
    graph:
        The graph to query.
    num_queries:
        Number of (s, t, F) triples.
    max_faults:
        Fault budget; each query uses ``max_faults`` faults when
        ``exact_fault_count`` is true, otherwise a uniform count in
        ``[0, max_faults]``.
    model:
        Fault model (see :class:`~repro.workloads.faults.FaultModel`).
    seed:
        Seed controlling vertices, fault sets, and fault counts.
    """
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        raise ValueError("query workloads need at least two vertices")
    fault_sets = sample_fault_sets(graph, num_queries, max_faults, model=model, seed=seed)
    workload = QueryWorkload()
    for faults in fault_sets:
        if not exact_fault_count:
            count = rng.randint(0, max_faults)
            faults = faults[:count]
        s, t = rng.sample(vertices, 2)
        workload.queries.append((s, t, list(faults)))
        workload.ground_truth.append(graph.connected(s, t, removed=faults))
    return workload


def audit_scheme(connected_fn, workload: QueryWorkload) -> dict:
    """Run a scheme's ``connected(s, t, F)`` callable over a workload.

    Returns agreement statistics; used by the correctness benchmark (Table 1's
    "correctness" column) for every scheme variant.
    """
    agree = 0
    wrong = 0
    failed = 0
    for (s, t, faults), expected in workload.pairs():
        try:
            answer = connected_fn(s, t, faults)
        except QueryFailure:
            # The one benign failure mode (randomized sketches / heuristic
            # thresholds); genuine defects must propagate to the harness.
            failed += 1
            continue
        if answer == expected:
            agree += 1
        else:
            wrong += 1
    total = len(workload)
    return {
        "total": total,
        "agree": agree,
        "wrong": wrong,
        "failed": failed,
        "accuracy": agree / total if total else 1.0,
    }
