"""Workload generation: graphs, fault sets, and query batches.

The paper has no system evaluation of its own, so the benchmark harness needs
reproducible synthetic workloads.  This package wraps networkx generators into
the library's graph type and provides fault-set samplers (random, tree-edge
biased, bridge-heavy adversarial) and query-batch generators with fixed seeds.
"""

from repro.workloads.graphs import GraphFamily, make_graph
from repro.workloads.faults import FaultModel, sample_fault_sets
from repro.workloads.queries import QueryWorkload, make_query_workload

__all__ = [
    "GraphFamily",
    "make_graph",
    "FaultModel",
    "sample_fault_sets",
    "QueryWorkload",
    "make_query_workload",
]
