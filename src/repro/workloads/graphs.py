"""Graph families used by the experiments.

Every generator returns a *connected* :class:`~repro.graphs.graph.Graph` and is
fully determined by ``(family, n, seed)`` plus family-specific parameters, so
every number in EXPERIMENTS.md can be regenerated exactly.
"""

from __future__ import annotations

import heapq
import random
from enum import Enum

import networkx as nx

from repro.graphs.graph import Graph

try:  # networkx's tree/chord sampling needs numpy; we keep a pure fallback.
    import numpy  # noqa: F401
    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the numpy-absent CI job
    _HAVE_NUMPY = False


class GraphFamily(Enum):
    """Synthetic graph families for the benchmark harness."""

    ERDOS_RENYI = "erdos-renyi"          # G(n, m) with m ~ density * n
    BARABASI_ALBERT = "barabasi-albert"  # preferential attachment
    RANDOM_REGULAR = "random-regular"    # d-regular
    GRID = "grid"                        # 2-D grid (many bridges after faults)
    TREE_PLUS_CHORDS = "tree-chords"     # spanning tree plus a few random chords
    COMPLETE = "complete"                # dense extreme


def make_graph(family: GraphFamily, n: int, seed: int = 0, density: float = 2.5,
               degree: int = 4) -> Graph:
    """Build a connected graph of roughly ``n`` vertices from the given family.

    Parameters
    ----------
    family:
        Which generator to use.
    n:
        Target vertex count (grids round to the nearest rectangle).
    seed:
        Seed for the randomized families.
    density:
        Average edge/vertex ratio for the Erdős–Rényi and tree-plus-chords
        families.
    degree:
        Degree for the random-regular family and attachment count for
        Barabási–Albert.
    """
    if n < 2:
        raise ValueError("graphs need at least two vertices, got n=%d" % n)
    if family is GraphFamily.ERDOS_RENYI:
        target_edges = max(int(density * n), n)
        nx_graph = nx.gnm_random_graph(n, target_edges, seed=seed)
        nx_graph = _ensure_connected(nx_graph, seed)
    elif family is GraphFamily.BARABASI_ALBERT:
        nx_graph = nx.barabasi_albert_graph(n, max(min(degree, n - 1), 1), seed=seed)
    elif family is GraphFamily.RANDOM_REGULAR:
        effective_degree = min(degree, n - 1)
        if (effective_degree * n) % 2 == 1:
            effective_degree -= 1
        nx_graph = nx.random_regular_graph(max(effective_degree, 2), n, seed=seed)
        nx_graph = _ensure_connected(nx_graph, seed)
    elif family is GraphFamily.GRID:
        side = max(int(round(n ** 0.5)), 2)
        nx_graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(side, side))
    elif family is GraphFamily.TREE_PLUS_CHORDS:
        if _HAVE_NUMPY:
            nx_graph = nx.random_labeled_tree(n, seed=seed)
            rng = nx.utils.create_random_state(seed)
            rand_pair = lambda: (rng.randint(0, n), rng.randint(0, n))  # noqa: E731
        else:
            # networkx's samplers need numpy; fall back to a pure-Python
            # uniform random tree (random Prüfer sequence) + chord sampler.
            nx_graph = _random_tree_pure(n, seed)
            py_rng = random.Random(seed)
            rand_pair = lambda: (py_rng.randrange(n), py_rng.randrange(n))  # noqa: E731
        chords = max(int((density - 1.0) * n), 1)
        added = 0
        attempts = 0
        while added < chords and attempts < 20 * chords:
            u, v = rand_pair()
            attempts += 1
            if u != v and not nx_graph.has_edge(u, v):
                nx_graph.add_edge(u, v)
                added += 1
    elif family is GraphFamily.COMPLETE:
        nx_graph = nx.complete_graph(n)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError("unknown graph family %r" % (family,))
    return Graph.from_networkx(nx_graph)


def _random_tree_pure(n: int, seed: int):
    """Uniform random labeled tree from a random Prüfer sequence (no numpy)."""
    rng = random.Random(seed)
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(n))
    if n == 2:
        nx_graph.add_edge(0, 1)
        return nx_graph
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for vertex in sequence:
        degree[vertex] += 1
    leaves = [vertex for vertex in range(n) if degree[vertex] == 1]
    heapq.heapify(leaves)
    for vertex in sequence:
        leaf = heapq.heappop(leaves)
        nx_graph.add_edge(leaf, vertex)
        degree[leaf] = 0
        degree[vertex] -= 1
        if degree[vertex] == 1:
            heapq.heappush(leaves, vertex)
    last = [vertex for vertex in range(n) if degree[vertex] == 1]
    nx_graph.add_edge(last[0], last[1])
    return nx_graph


def _ensure_connected(nx_graph, seed: int):
    """Connect a possibly disconnected graph by linking its components."""
    if nx.is_connected(nx_graph):
        return nx_graph
    components = [sorted(component) for component in nx.connected_components(nx_graph)]
    for first, second in zip(components, components[1:]):
        nx_graph.add_edge(first[0], second[0])
    return nx_graph


def graph_summary(graph: Graph) -> dict:
    """n, m, and average degree — printed at the top of every experiment."""
    n = graph.num_vertices()
    m = graph.num_edges()
    return {"n": n, "m": m, "avg_degree": (2.0 * m / n) if n else 0.0}
