"""Fault-set samplers.

The interesting regime for a fault-tolerant connectivity scheme is when faults
actually change connectivity, which uniformly random edge faults rarely do on
dense graphs.  Three fault models are therefore provided: uniform random
edges, faults biased towards spanning-tree edges (each tree edge fault splits
the tree and must be repaired by the sketch/outdetect machinery), and a
bridge-heavy adversarial model that preferentially removes cut edges.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Iterable

import networkx as nx

from repro.graphs.graph import Edge, Graph
from repro.graphs.spanning_tree import bfs_spanning_tree


class FaultModel(Enum):
    """How fault sets are drawn."""

    UNIFORM = "uniform"        # uniformly random edges
    TREE_BIASED = "tree"       # random spanning-tree edges
    ADVERSARIAL = "adversarial"  # bridges / low-connectivity edges first


def sample_fault_sets(graph: Graph, num_sets: int, faults_per_set: int,
                      model: FaultModel = FaultModel.TREE_BIASED,
                      seed: int = 0) -> list[list[Edge]]:
    """Draw ``num_sets`` fault sets of exactly ``faults_per_set`` edges each."""
    if faults_per_set < 0:
        raise ValueError("faults_per_set must be non-negative")
    rng = random.Random(seed)
    edges = sorted(graph.edges())
    faults_per_set = min(faults_per_set, len(edges))
    pool = _candidate_pool(graph, model)
    fault_sets = []
    for _ in range(num_sets):
        if len(pool) >= faults_per_set:
            chosen = rng.sample(pool, faults_per_set)
        else:
            chosen = list(pool)
            remaining = [edge for edge in edges if edge not in set(chosen)]
            chosen.extend(rng.sample(remaining, faults_per_set - len(chosen)))
        fault_sets.append(chosen)
    return fault_sets


def _candidate_pool(graph: Graph, model: FaultModel) -> list[Edge]:
    edges = sorted(graph.edges())
    if model is FaultModel.UNIFORM:
        return edges
    if model is FaultModel.TREE_BIASED:
        root = min(graph.vertices(), key=lambda v: (type(v).__name__, repr(v)))
        tree = bfs_spanning_tree(graph, root)
        return sorted(tree.tree_edges())
    # ADVERSARIAL: bridges first, then edges of low edge-connectivity regions.
    nx_graph = graph.to_networkx()
    bridges = [tuple(sorted(edge, key=repr)) for edge in nx.bridges(nx_graph)]
    if bridges:
        return sorted(set(bridges) & set(edges)) or edges
    # No bridges: fall back to the edges incident to minimum-degree vertices.
    min_degree = min(graph.degree(v) for v in graph.vertices())
    pool = [edge for edge in edges
            if graph.degree(edge[0]) == min_degree or graph.degree(edge[1]) == min_degree]
    return pool or edges


def disconnecting_fraction(graph: Graph, fault_sets: Iterable[list]) -> float:
    """Fraction of fault sets that disconnect at least one vertex pair.

    Reported alongside benchmark results so the reader can tell how adversarial
    a workload actually is.
    """
    fault_sets = list(fault_sets)
    if not fault_sets:
        return 0.0
    disconnecting = 0
    for faults in fault_sets:
        reduced = graph.without_edges(faults)
        if len(reduced.connected_components()) > 1:
            disconnecting += 1
    return disconnecting / len(fault_sets)
