"""Prometheus text-exposition helpers shared across the observability seam.

Three consumers render the same format:

* :meth:`repro.api.OracleStats.to_prometheus` — the CLI ``stats --prometheus``
  view, which flattens a nested stats dict into gauge families;
* :meth:`repro.obs.registry.MetricsRegistry.to_prometheus` — the native
  counter/gauge/histogram exposition behind ``GET /metrics``;
* the ``/metrics`` sidecar itself, which concatenates the registry's families
  with a flattened stats tree (session cache, hot keys, oracle facts).

The naming convention they share: a mapping under a dict key of the form
``<base>_by_<label>`` becomes one labeled family (``requests_by_op`` renders
as ``..._requests{op="..."}``), every other mapping nests into the metric
name, and non-numeric leaves are skipped.

This module imports nothing from the rest of ``repro`` — the facade
(:mod:`repro.api`) imports *us*, keeping the dependency direction
``api -> obs`` acyclic.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping, Sequence

#: Characters outside the Prometheus metric-name alphabet, replaced by ``_``.
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")
#: Dict keys of the form ``<base>_by_<label>`` flatten into a labeled family.
_BY_LABEL = re.compile(r"^(.+)_by_([a-z][a-z0-9_]*)$")

#: Callback signature of :func:`walk_numeric`: ``add(parts, labels, value)``.
AddSample = Callable[[list, list, Any], None]


def sanitize_metric_name(parts: Sequence[str]) -> str:
    """Join name parts with ``_`` and squash anything outside ``[a-zA-Z0-9_]``."""
    return _BAD_CHARS.sub("_", "_".join(parts))


def escape_label_value(value: Any) -> str:
    """Escape one label value per the text exposition format."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help_text(text: str) -> str:
    """Escape a ``# HELP`` line (backslashes and newlines only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_sample_value(value: Any) -> str:
    """Render one sample value: bools as 0/1, ints bare, floats via ``repr``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_labels(labels: Sequence[tuple[str, Any]]) -> str:
    """``{a="b",c="d"}``, or the empty string for an unlabeled sample."""
    if not labels:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (key, escape_label_value(val))
                             for key, val in labels)


def walk_numeric(parts: list, labels: list, obj: Any, add: AddSample) -> None:
    """Flatten nested numeric dicts into Prometheus samples.

    A mapping under a key of the form ``<base>_by_<label>`` (the metrics
    module's ``requests_by_op`` / ``errors_by_code`` / ``latency_by_op``
    convention) becomes one family ``<base>`` with a ``<label>`` label per
    key; every other mapping nests into the metric name.  Non-numeric leaves
    (strings, None) are skipped — they belong in ``_info`` labels.
    """
    if isinstance(obj, bool) or isinstance(obj, (int, float)):
        add(parts, labels, obj)
        return
    if isinstance(obj, Mapping):
        match = _BY_LABEL.match(parts[-1]) if parts else None
        if match is not None:
            base = parts[:-1] + [match.group(1)]
            label = match.group(2)
            for key in sorted(obj, key=str):
                walk_numeric(base, labels + [(label, key)], obj[key], add)
        else:
            for key in sorted(obj, key=str):
                walk_numeric(parts + [str(key)], labels, obj[key], add)


def render_gauge_families(families: Mapping[str, Sequence[tuple]]) -> list[str]:
    """Render ``{name: [(labels, value), ...]}`` as sorted gauge families."""
    lines: list[str] = []
    for name in sorted(families):
        lines.append("# TYPE %s gauge" % name)
        for labels, value in families[name]:
            lines.append("%s%s %s" % (name, render_labels(labels),
                                      format_sample_value(value)))
    return lines


def render_stats_tree(tree: Mapping, prefix: str = "repro") -> list[str]:
    """One-call flatten-and-render of a nested stats dict as gauge families.

    The ``/metrics`` sidecar uses this for everything the registry does not
    own natively (session-cache occupancy, hot keys, oracle facts).
    """
    families: dict[str, list] = {}

    def add(parts: list, labels: list, value: Any) -> None:
        families.setdefault(sanitize_metric_name(parts), []).append(
            (tuple(labels), value))

    walk_numeric([prefix], [], tree, add)
    return render_gauge_families(families)


__all__ = [
    "AddSample", "sanitize_metric_name", "escape_label_value",
    "escape_help_text", "format_sample_value", "render_labels",
    "walk_numeric", "render_gauge_families", "render_stats_tree",
]
