"""Wire-level request tracing: trace/span ids, timing, structured events.

A :class:`Tracer` produces :class:`Span` context managers::

    with tracer.span("server.connected_many", trace_id=client_trace, op=op):
        ... handler work ...

Each span resolves its trace id (explicit argument > the ambient
:func:`current_trace_id` > a fresh id), installs itself as the current
trace/span via :mod:`contextvars` (so spans opened inside — including across
``await`` boundaries within the same task — become children), measures wall
time with ``perf_counter``, optionally captures peak memory via
:class:`~repro.obs.memory.PeakMemoryMeter`, and emits one structured JSON
event when it closes.  Events go to the tracer's ``sink`` callable when one
is set (tests, custom shippers), else to the ``repro.obs.trace`` logger —
WARNING level for spans at or above ``slow_seconds`` (the slow-request log),
INFO otherwise.

Trace ids are *propagation* identifiers, not entropy for any algorithm:
``os.urandom`` here never feeds a build or decode path, so bit-identity of
query answers is untouched whether tracing runs or not (the server asserts
this in its tests).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

from repro.obs.memory import PeakMemoryMeter

_TRACE_ID: ContextVar = ContextVar("repro_obs_trace_id", default=None)
_SPAN_ID: ContextVar = ContextVar("repro_obs_span_id", default=None)


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (hex)."""
    return os.urandom(8).hex()


def current_trace_id() -> str | None:
    """The trace id of the innermost active span, if any."""
    value = _TRACE_ID.get()
    return value if isinstance(value, str) else None


def current_span_id() -> str | None:
    """The span id of the innermost active span, if any."""
    value = _SPAN_ID.get()
    return value if isinstance(value, str) else None


class Span:
    """One timed unit of work; annotate it via :meth:`annotate`."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "duration_seconds", "peak_memory_bytes", "error", "slow")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, attrs: dict):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.duration_seconds: float | None = None
        self.peak_memory_bytes: int | None = None
        self.error: str | None = None
        self.slow = False

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes mid-span (they ride on the emitted event)."""
        self.attrs.update(attrs)

    def to_event(self, service: str) -> dict:
        """The structured JSON event emitted when the span closes."""
        event: dict = {
            "event": "span",
            "service": service,
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "slow": self.slow,
        }
        if self.parent_id is not None:
            event["parent_id"] = self.parent_id
        if self.duration_seconds is not None:
            event["duration_ms"] = round(1000.0 * self.duration_seconds, 3)
        if self.peak_memory_bytes is not None:
            event["peak_memory_bytes"] = self.peak_memory_bytes
        if self.error is not None:
            event["error"] = self.error
        attrs = {key: value for key, value in self.attrs.items()
                 if value is not None}
        if attrs:
            event["attrs"] = attrs
        return event


class Tracer:
    """Factory for spans; owns the sink, slow threshold, and span counters."""

    def __init__(self, service: str = "repro",
                 sink: Callable[[dict], None] | None = None,
                 slow_seconds: float = 1.0,
                 capture_memory: bool = False,
                 logger: logging.Logger | None = None,
                 enabled: bool = True):
        if slow_seconds < 0:
            raise ValueError("slow_seconds must be non-negative")
        self.service = service
        self.sink = sink
        self.slow_seconds = slow_seconds
        self.capture_memory = capture_memory
        self.enabled = enabled
        self._logger = logger if logger is not None \
            else logging.getLogger("repro.obs.trace")
        self._lock = threading.Lock()
        self._spans_emitted = 0
        self._slow_spans = 0

    @contextmanager
    def span(self, name: str, trace_id: str | None = None,
             capture_memory: bool | None = None,
             **attrs: Any) -> Iterator[Span]:
        """Open one span (see the module docstring for semantics).

        A disabled tracer yields an inert span: no ids are minted beyond
        what propagation already carries, nothing is timed or emitted.
        """
        if not self.enabled:
            yield Span(name, trace_id or current_trace_id() or "", "",
                       current_span_id(), dict(attrs))
            return
        resolved = trace_id if trace_id is not None else current_trace_id()
        if resolved is None:
            resolved = new_trace_id()
        span = Span(name, resolved, new_span_id(), current_span_id(),
                    dict(attrs))
        trace_token = _TRACE_ID.set(span.trace_id)
        span_token = _SPAN_ID.set(span.span_id)
        memory = self.capture_memory if capture_memory is None \
            else capture_memory
        meter = PeakMemoryMeter() if memory else None
        if meter is not None:
            meter.start_phase()
        start = time.perf_counter()
        try:
            yield span
        except BaseException as error:
            span.error = type(error).__name__
            raise
        finally:
            span.duration_seconds = time.perf_counter() - start
            if meter is not None:
                span.peak_memory_bytes = meter.end_phase()
            _SPAN_ID.reset(span_token)
            _TRACE_ID.reset(trace_token)
            span.slow = span.duration_seconds >= self.slow_seconds
            self._emit(span)

    def _emit(self, span: Span) -> None:
        with self._lock:
            self._spans_emitted += 1
            if span.slow:
                self._slow_spans += 1
        event = span.to_event(self.service)
        if self.sink is not None:
            try:
                self.sink(event)
            except Exception:
                # A broken sink must not replace the span's real exception
                # (we are inside a ``finally``) or kill the request path.
                self._logger.exception("span sink failed")
            return
        self._logger.log(logging.WARNING if span.slow else logging.INFO,
                         json.dumps(event, sort_keys=True, default=str))

    def counts(self) -> dict:
        """Lifetime ``{"spans_emitted": n, "slow_spans": m}``."""
        with self._lock:
            return {"spans_emitted": self._spans_emitted,
                    "slow_spans": self._slow_spans}


__all__ = ["Span", "Tracer", "current_span_id", "current_trace_id",
           "new_span_id", "new_trace_id"]
