"""The process-wide metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` owns named metrics and renders two views of them —
a JSON snapshot (what the ``stats`` op embeds) and the Prometheus text
exposition format (what the ``/metrics`` sidecar serves).  Design
constraints, in order:

* **Thread-safe** — metrics are written from the event loop and from the
  session-builder worker threads, so every mutation happens under the owning
  metric's lock (``repro.analysis`` RPL004 enforces this via
  ``LOCK_CONTRACTS``).
* **Fixed buckets** — histograms use log-spaced upper bounds fixed at
  creation: observation is O(log buckets), merging is element-wise, and
  exposition is the standard cumulative ``_bucket{le=...}`` form.
* **Quantiles are estimates** — :meth:`Histogram.quantile` interpolates
  linearly inside the bucket that crosses the target rank (the same model as
  PromQL's ``histogram_quantile``); the error is bounded by the bucket
  width, which log spacing keeps proportional to the value.  The top
  (``+Inf``) bucket is clamped to the observed maximum instead of guessing.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.obs.prometheus import (escape_help_text, format_sample_value,
                                  render_labels, sanitize_metric_name)

#: One metric child is keyed by its label *values*, in ``labelnames`` order.
LabelValues = tuple[str, ...]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced bucket upper bounds: ``start * factor**i``."""
    if not math.isfinite(start) or start <= 0.0:
        raise ValueError("start must be a positive finite number, got %r" % start)
    if not math.isfinite(factor) or factor <= 1.0:
        raise ValueError("factor must be a finite number > 1.0, got %r" % factor)
    if count < 1:
        raise ValueError("count must be at least 1, got %d" % count)
    bounds = tuple(start * factor ** exponent for exponent in range(count))
    if not math.isfinite(bounds[-1]):
        raise ValueError("bucket bounds overflow to infinity; reduce count")
    return bounds


#: Default latency bounds: 18 powers of two from 50 microseconds to ~6.6 s.
#: Sub-bucket-resolution quantiles come from interpolation, so the factor-2
#: spacing bounds the relative error at 2x worst case — plenty for p99
#: dashboards while keeping every histogram at 19 integers.
DEFAULT_LATENCY_BUCKETS = log_buckets(5e-05, 2.0, 18)


class _MetricBase:
    """Name/help/label plumbing shared by every metric kind."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % name)
        for label in labelnames:
            if not _NAME_RE.match(label) or label.startswith("__"):
                raise ValueError("invalid label name %r" % label)
        if len(set(labelnames)) != len(tuple(labelnames)):
            raise ValueError("duplicate label names in %r" % (tuple(labelnames),))
        self.name = name
        self.help = help_text
        self.labelnames: tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError("metric %r takes labels %r, got %r"
                             % (self.name, self.labelnames,
                                tuple(sorted(labels))))
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_MetricBase):
    """A monotonically increasing sum (exposed with the ``_total`` suffix)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters can only increase, got %r" % amount)
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def values(self) -> dict[LabelValues, float]:
        """Every child's value, keyed by label values (a consistent copy)."""
        with self._lock:
            return dict(self._values)

    def total(self) -> float:
        """The sum over all children."""
        with self._lock:
            return sum(self._values.values())


class Gauge(_MetricBase):
    """A value that goes up and down (connections, in-flight builds)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[LabelValues, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, floor: float | None = None,
            **labels: Any) -> None:
        """Decrease, optionally clamping at ``floor``.

        The clamp is the double-close guard: lifecycle accounting that may
        legitimately see a spurious extra decrement (e.g. a connection close
        racing a shutdown path) passes ``floor=0.0`` so the gauge can never
        report a negative count.
        """
        key = self._key(labels)
        with self._lock:
            value = self._values.get(key, 0.0) - amount
            if floor is not None and value < floor:
                value = floor
            self._values[key] = value

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def values(self) -> dict[LabelValues, float]:
        with self._lock:
            return dict(self._values)


@dataclass
class _HistogramData:
    """One child's mutable state (guarded by the histogram's lock)."""

    counts: list
    total: float = 0.0
    count: int = 0
    max_value: float = 0.0


@dataclass(frozen=True)
class HistogramSnapshot:
    """A consistent read of one histogram child.

    ``counts`` is per-bucket (not cumulative) with one extra trailing entry
    for the overflow (``+Inf``) bucket.
    """

    bounds: tuple
    counts: tuple
    total: float
    count: int
    max_value: float


class Histogram(_MetricBase):
    """Fixed-bucket histogram with quantile estimation and merging."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] | None = None):
        super().__init__(name, help_text, labelnames)
        if "le" in self.labelnames:
            raise ValueError("'le' is reserved for histogram buckets")
        bounds = tuple(float(bound) for bound in
                       (DEFAULT_LATENCY_BUCKETS if buckets is None else buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        for bound in bounds:
            if not math.isfinite(bound):
                raise ValueError("bucket bounds must be finite "
                                 "(+Inf is implicit), got %r" % bound)
        if any(upper <= lower for lower, upper in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bucket_bounds: tuple[float, ...] = bounds
        self._children: dict[LabelValues, _HistogramData] = {}

    # ------------------------------------------------------------ recording

    def observe(self, value: float, **labels: Any) -> None:
        """Record one sample; a value exactly on a bound counts toward it
        (``le`` buckets are inclusive)."""
        sample = float(value)
        if math.isnan(sample):
            raise ValueError("cannot observe NaN")
        key = self._key(labels)
        index = bisect.bisect_left(self.bucket_bounds, sample)
        with self._lock:
            data = self._children.get(key)
            if data is None:
                data = _HistogramData(counts=[0] * (len(self.bucket_bounds) + 1))
                self._children[key] = data
            data.counts[index] += 1
            data.total += sample
            data.count += 1
            if sample > data.max_value:
                data.max_value = sample

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket bounds and label names (element-wise
        addition is only meaningful between congruent histograms); the other
        histogram is left untouched.
        """
        if other is self:
            return
        if other.bucket_bounds != self.bucket_bounds:
            raise ValueError("cannot merge histograms with different buckets")
        if other.labelnames != self.labelnames:
            raise ValueError("cannot merge histograms with different labels")
        incoming = other.children()
        with self._lock:
            for key, snap in incoming.items():
                data = self._children.get(key)
                if data is None:
                    data = _HistogramData(
                        counts=[0] * (len(self.bucket_bounds) + 1))
                    self._children[key] = data
                for index, bucket_count in enumerate(snap.counts):
                    data.counts[index] += bucket_count
                data.total += snap.total
                data.count += snap.count
                if snap.max_value > data.max_value:
                    data.max_value = snap.max_value

    # -------------------------------------------------------------- reading

    def child(self, **labels: Any) -> HistogramSnapshot:
        """A consistent snapshot of one child (all zero if never observed)."""
        key = self._key(labels)
        with self._lock:
            data = self._children.get(key)
            if data is None:
                return HistogramSnapshot(
                    bounds=self.bucket_bounds,
                    counts=tuple([0] * (len(self.bucket_bounds) + 1)),
                    total=0.0, count=0, max_value=0.0)
            return HistogramSnapshot(
                bounds=self.bucket_bounds, counts=tuple(data.counts),
                total=data.total, count=data.count, max_value=data.max_value)

    def children(self) -> dict[LabelValues, HistogramSnapshot]:
        """Snapshots of every child, keyed by label values."""
        with self._lock:
            return {key: HistogramSnapshot(
                        bounds=self.bucket_bounds, counts=tuple(data.counts),
                        total=data.total, count=data.count,
                        max_value=data.max_value)
                    for key, data in self._children.items()}

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the ``q``-quantile by in-bucket linear interpolation.

        Returns 0.0 for an empty child.  ``q=0`` is the lower edge of the
        first non-empty bucket; ``q=1`` its last bucket's upper edge, with
        the overflow bucket clamped to the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1], got %r" % q)
        snap = self.child(**labels)
        if snap.count == 0:
            return 0.0
        target = q * snap.count
        cumulative = 0.0
        for index, bucket_count in enumerate(snap.counts):
            previous = cumulative
            cumulative += bucket_count
            if bucket_count and cumulative >= target:
                lower = snap.bounds[index - 1] if index > 0 else 0.0
                upper = (snap.bounds[index] if index < len(snap.bounds)
                         else max(snap.max_value, lower))
                fraction = (target - previous) / bucket_count
                if fraction < 0.0:
                    fraction = 0.0
                return lower + (upper - lower) * fraction
        return snap.max_value


class MetricsRegistry:
    """Get-or-create factory and renderer for one process's metrics.

    Re-registering a name with the same kind/labels (and, for histograms,
    the same buckets) returns the existing metric — that is what lets every
    :class:`~repro.server.metrics.ServerMetrics` view share one set of
    numbers; any mismatch raises ``ValueError`` instead of silently forking
    a family.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _MetricBase] = {}

    # --------------------------------------------------------- registration

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        metric = self._get_or_create(Counter, name, help_text, labelnames)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        metric = self._get_or_create(Gauge, name, help_text, labelnames)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] | None = None) -> Histogram:
        metric = self._get_or_create(Histogram, name, help_text, labelnames,
                                     buckets=buckets)
        assert isinstance(metric, Histogram)
        return metric

    def _get_or_create(self, factory: type, name: str, help_text: str,
                       labelnames: Sequence[str],
                       buckets: Sequence[float] | None = None) -> _MetricBase:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not factory:
                    raise ValueError("metric %r already registered as a %s"
                                     % (name, existing.kind))
                if existing.labelnames != tuple(labelnames):
                    raise ValueError("metric %r already registered with "
                                     "labels %r" % (name, existing.labelnames))
                if buckets is not None and isinstance(existing, Histogram) and \
                        existing.bucket_bounds != tuple(float(b) for b in buckets):
                    raise ValueError("histogram %r already registered with "
                                     "different buckets" % name)
                return existing
            if factory is Histogram:
                metric: _MetricBase = Histogram(name, help_text, labelnames,
                                                buckets)
            else:
                metric = factory(name, help_text, labelnames)
            self._metrics[name] = metric
            return metric

    # -------------------------------------------------------------- reading

    def get(self, name: str) -> _MetricBase | None:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list:
        """Every registered metric, sorted by name."""
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def snapshot(self) -> dict:
        """A JSON-ready view of every metric (labels rendered as dicts)."""
        report: dict = {}
        for metric in self.metrics():
            if isinstance(metric, (Counter, Gauge)):
                value_samples: list = [
                    {"labels": dict(zip(metric.labelnames, key)),
                     "value": value}
                    for key, value in sorted(metric.values().items())]
                report[metric.name] = {"kind": metric.kind,
                                       "samples": value_samples}
            elif isinstance(metric, Histogram):
                hist_samples: list = [
                    {"labels": dict(zip(metric.labelnames, key)),
                     "count": snap.count, "sum": snap.total,
                     "max": snap.max_value,
                     "buckets": dict(zip(
                         [repr(b) for b in snap.bounds] + ["+Inf"],
                         _cumulative(snap.counts)))}
                    for key, snap in sorted(metric.children().items())]
                report[metric.name] = {"kind": metric.kind,
                                       "bounds": list(metric.bucket_bounds),
                                       "samples": hist_samples}
        return report

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The registry's families in the text exposition format."""
        lines: list[str] = []
        for metric in self.metrics():
            lines.extend(_render_metric(prefix, metric))
        if not lines:
            return ""
        return "\n".join(lines) + "\n"


def _cumulative(counts: Sequence[int]) -> list:
    out: list = []
    running = 0
    for count in counts:
        running += count
        out.append(running)
    return out


def _family_header(name: str, help_text: str, kind: str) -> list:
    lines = []
    if help_text:
        lines.append("# HELP %s %s" % (name, escape_help_text(help_text)))
    lines.append("# TYPE %s %s" % (name, kind))
    return lines


def _format_bound(bound: float) -> str:
    return repr(bound)


def _render_value(value: float) -> str:
    """Counters/gauges accumulate as floats; render integral values bare."""
    if float(value).is_integer():
        return format_sample_value(int(value))
    return format_sample_value(value)


def _render_metric(prefix: str, metric: _MetricBase) -> list:
    family = sanitize_metric_name((prefix, metric.name))
    if isinstance(metric, Counter):
        name = family + "_total"
        lines = _family_header(name, metric.help, "counter")
        for key, value in sorted(metric.values().items()):
            labels = list(zip(metric.labelnames, key))
            lines.append("%s%s %s" % (name, render_labels(labels),
                                      _render_value(value)))
        return lines
    if isinstance(metric, Gauge):
        lines = _family_header(family, metric.help, "gauge")
        for key, value in sorted(metric.values().items()):
            labels = list(zip(metric.labelnames, key))
            lines.append("%s%s %s" % (family, render_labels(labels),
                                      _render_value(value)))
        return lines
    if isinstance(metric, Histogram):
        lines = _family_header(family, metric.help, "histogram")
        for key, snap in sorted(metric.children().items()):
            labels = list(zip(metric.labelnames, key))
            cumulative = 0
            for bound, bucket_count in zip(snap.bounds, snap.counts):
                cumulative += bucket_count
                lines.append("%s_bucket%s %d" % (
                    family,
                    render_labels(labels + [("le", _format_bound(bound))]),
                    cumulative))
            cumulative += snap.counts[-1]
            lines.append("%s_bucket%s %d" % (
                family, render_labels(labels + [("le", "+Inf")]), cumulative))
            lines.append("%s_sum%s %s" % (family, render_labels(labels),
                                          format_sample_value(snap.total)))
            lines.append("%s_count%s %d" % (family, render_labels(labels),
                                            snap.count))
        return lines
    raise TypeError("unknown metric kind %r" % type(metric).__name__)


__all__ = [
    "DEFAULT_LATENCY_BUCKETS", "LabelValues", "log_buckets",
    "Counter", "Gauge", "Histogram", "HistogramSnapshot", "MetricsRegistry",
]
