"""repro.obs — the observability seam: metrics, tracing, memory, exposition.

One shared layer behind every telemetry surface in the repo:

* :mod:`repro.obs.registry` — thread-safe counters, gauges, and fixed
  log-bucket histograms with ``quantile(q)``; owns the Prometheus
  exposition.  :class:`repro.server.metrics.ServerMetrics` is a view over
  one :class:`MetricsRegistry`.
* :mod:`repro.obs.tracing` — ``span(...)`` context managers producing
  trace/span ids that propagate through :mod:`contextvars` (and, for the
  server, through the wire protocol's ``trace`` envelope field).
* :mod:`repro.obs.memory` — peak-memory probes (tracemalloc per-phase when
  tracing, RSS high-water otherwise) behind ``BuildReport.stage_peak_bytes``.
* :mod:`repro.obs.prometheus` — the text-exposition helpers shared with
  :meth:`repro.api.OracleStats.to_prometheus`.
* :mod:`repro.obs.http` — the ``GET /metrics`` + ``GET /healthz`` sidecar
  (imported directly by the server; not re-exported here so that build-path
  users of this package never pay for asyncio).

``obs.span(...)`` is the zero-setup entry point: a module-level default
:class:`Tracer` that logs to the ``repro.obs.trace`` logger.  Anything with
its own sink or slow-request threshold constructs a :class:`Tracer`.
"""

from __future__ import annotations

from repro.obs.memory import PeakMemoryMeter, rss_peak_bytes
from repro.obs.registry import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                                Histogram, HistogramSnapshot, MetricsRegistry,
                                log_buckets)
from repro.obs.tracing import (Span, Tracer, current_span_id,
                               current_trace_id, new_span_id, new_trace_id)

#: The default tracer behind :func:`span` (logs; 1 s slow threshold).
default_tracer = Tracer(service="repro")

#: ``with obs.span("name", key=value): ...`` — spans on the default tracer.
span = default_tracer.span

__all__ = [
    "Counter", "DEFAULT_LATENCY_BUCKETS", "Gauge", "Histogram",
    "HistogramSnapshot", "MetricsRegistry", "PeakMemoryMeter", "Span",
    "Tracer", "current_span_id", "current_trace_id", "default_tracer",
    "log_buckets", "new_span_id", "new_trace_id", "rss_peak_bytes", "span",
]
