"""The metrics sidecar: a minimal asyncio HTTP/1.1 server for two GET routes.

``GET /metrics``
    The Prometheus text exposition (``metrics`` callable), 200.
``GET /healthz``
    Readiness: the ``health`` callable returns ``(ok, payload)``; the
    payload is served as JSON with status 200 when ready, 503 when not.

Deliberately not a web framework: it parses exactly one request line, drains
headers, answers, and closes (``Connection: close``).  Both callables run
synchronously on the event loop — they only format in-memory counters, which
is the point of keeping the registry's snapshot paths cheap.  A callable
that raises is answered with a 500 so a wedged oracle degrades scrapes
instead of killing the sidecar.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

#: Prometheus text exposition content type.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_MAX_HEADER_LINES = 128
_MAX_LINE_BYTES = 8192
_REQUEST_TIMEOUT = 10.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}

#: ``metrics()`` renders the exposition text.
MetricsFn = Callable[[], str]
#: ``health()`` returns ``(ready, json_payload)``.
HealthFn = Callable[[], tuple]


class ObsHTTPServer:
    """Serve ``/metrics`` and ``/healthz`` next to a query server."""

    def __init__(self, metrics: MetricsFn, health: HealthFn,
                 host: str = "127.0.0.1", port: int = 0):
        self._metrics = metrics
        self._health = health
        self._requested_host = host
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self.host: str | None = None
        self.port: int | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("metrics sidecar already started")
        self._server = await asyncio.start_server(
            self._handle, self._requested_host, self._requested_port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting; in-flight responses finish on their own."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- handling

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), _REQUEST_TIMEOUT)
            if len(request_line) > _MAX_LINE_BYTES:
                await self._respond(writer, 400, "text/plain; charset=utf-8",
                                    b"request line too long\n")
                return
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                await self._respond(writer, 400, "text/plain; charset=utf-8",
                                    b"malformed request line\n")
                return
            method, target, _version = parts
            await self._drain_headers(reader)
            status, content_type, body = self._route(method, target)
            await self._respond(writer, status, content_type, body)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ConnectionResetError,
                BrokenPipeError, UnicodeDecodeError):
            return  # slow, vanished, or garbage-speaking peer: just close
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                return  # the peer is already gone

    async def _drain_headers(self, reader: asyncio.StreamReader) -> None:
        for _ in range(_MAX_HEADER_LINES):
            line = await asyncio.wait_for(reader.readline(), _REQUEST_TIMEOUT)
            if line in (b"\r\n", b"\n", b""):
                return

    def _route(self, method: str, target: str) -> tuple:
        """``(status, content_type, body)`` for one request."""
        path = target.split("?", 1)[0]
        if method != "GET":
            return 405, "application/json",  \
                _json_body({"error": "only GET is supported"})
        if path == "/metrics":
            try:
                text = self._metrics()
            except Exception as error:
                return 500, "application/json", _json_body(
                    {"error": "%s: %s" % (type(error).__name__, error)})
            return 200, PROMETHEUS_CONTENT_TYPE, text.encode("utf-8")
        if path == "/healthz":
            try:
                ready, payload = self._health()
            except Exception as error:
                return 503, "application/json", _json_body(
                    {"status": "unavailable",
                     "error": "%s: %s" % (type(error).__name__, error)})
            return (200 if ready else 503), "application/json", \
                _json_body(payload)
        return 404, "application/json", _json_body(
            {"error": "unknown path %s (try /metrics or /healthz)" % path})

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       content_type: str, body: bytes) -> None:
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: close\r\n"
                "\r\n" % (status, _REASONS.get(status, "Unknown"),
                          content_type, len(body)))
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def _json_body(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, default=str).encode("utf-8") \
        + b"\n"


__all__ = ["ObsHTTPServer", "PROMETHEUS_CONTENT_TYPE"]
