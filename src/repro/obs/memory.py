"""Peak-memory probes for per-stage build reports and span capture.

Two probes, picked automatically per :class:`PeakMemoryMeter`:

``tracemalloc``
    When :func:`tracemalloc.is_tracing` (the caller opted in, e.g. ``python
    -X tracemalloc``), each phase resets the traced peak and reads it back —
    a true *per-phase* peak of Python-allocated memory, at tracing's usual
    overhead.
``rss``
    Otherwise ``resource.getrusage(...).ru_maxrss`` — the process RSS
    high-water mark, essentially free but monotone: a phase that allocates
    less than an earlier one reports the earlier peak.  Still the right
    number for "how much memory did this build need".
``unavailable``
    Platforms without :mod:`resource` (e.g. Windows) report nothing.

The probe never *enables* tracemalloc itself: turning tracing on mid-build
would change allocation behaviour and overhead behind the caller's back.
"""

from __future__ import annotations

import sys
import tracemalloc

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


def rss_peak_bytes() -> int | None:
    """The process RSS high-water mark in bytes, or ``None`` if unknown.

    ``ru_maxrss`` is kibibytes on Linux but bytes on macOS.
    """
    if resource is None:
        return None
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return peak if sys.platform == "darwin" else peak * 1024


class PeakMemoryMeter:
    """Phase-scoped peak-memory readings (see the module docstring).

    Usage::

        meter = PeakMemoryMeter()
        meter.start_phase()
        ...work...
        peak = meter.end_phase()   # bytes, or None when unavailable
    """

    def __init__(self) -> None:
        if tracemalloc.is_tracing():
            self.probe = "tracemalloc"
        elif resource is not None:
            self.probe = "rss"
        else:  # pragma: no cover - non-POSIX platforms
            self.probe = "unavailable"

    def start_phase(self) -> None:
        """Mark the start of a phase (resets the tracemalloc peak)."""
        if self.probe == "tracemalloc":
            tracemalloc.reset_peak()

    def end_phase(self) -> int | None:
        """Peak bytes observed since :meth:`start_phase`, or ``None``."""
        if self.probe == "tracemalloc":
            return int(tracemalloc.get_traced_memory()[1])
        return rss_peak_bytes()


__all__ = ["PeakMemoryMeter", "rss_peak_bytes"]
