"""Thin setup.py shim.

The project is configured through pyproject.toml; this file exists so that the
package can be installed in editable mode (``pip install -e . --no-use-pep517``)
on systems without the ``wheel`` package or network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["networkx>=3.0", "numpy>=1.24"],
)
