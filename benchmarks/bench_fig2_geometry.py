"""Experiment FIG2: the Euler-tour geometric interpretation of Figure 2 / Lemma 3.

Figure 2 shows how non-tree edges become points in the plane and how a cut set
becomes a "checkered" symmetric-difference region.  The measurable claims:
the embedding assigns distinct coordinates in [1, 2n-2], and for every sampled
vertex set S the set of non-tree edges crossing the cut equals the set of
embedded points falling inside the symmetric-difference region of S's directed
tree boundary (Lemma 3, verified exactly).  The benchmark times the embedding
and the region-membership evaluation.
"""

import random

import pytest

from common import cached_graph, print_table
from repro.epsnet.shapes import shape_from_cut_positions
from repro.graphs import EulerTour, bfs_spanning_tree
from repro.graphs.spanning_tree import non_tree_edges

SEED = 4


def _instance(n):
    graph = cached_graph("erdos-renyi", n, SEED)
    tree = bfs_spanning_tree(graph, min(graph.vertices()))
    tour = EulerTour(tree)
    extra = non_tree_edges(graph, tree)
    return graph, tree, tour, extra


@pytest.mark.benchmark(group="fig2-geometry")
@pytest.mark.parametrize("n", [128, 256])
def test_embedding_throughput(benchmark, n):
    graph, tree, tour, extra = _instance(n)
    points = benchmark(lambda: tour.embed_edges(extra))
    assert len(points) == len(extra)
    coordinates = {tour.coordinate(v) for v in tree.vertices() if v != tree.root}
    assert len(coordinates) == tree.num_vertices() - 1
    assert all(1 <= c <= 2 * tree.num_vertices() - 2 for c in coordinates)


@pytest.mark.benchmark(group="fig2-geometry")
def test_lemma3_region_membership(benchmark):
    """Exact verification of Lemma 3 on sampled vertex sets, plus timing."""
    graph, tree, tour, extra = _instance(128)
    points = tour.embed_edges(extra)
    rng = random.Random(SEED)
    vertices = sorted(graph.vertices())
    sampled_sets = []
    for _ in range(40):
        size = rng.randint(1, len(vertices) // 2)
        sampled_sets.append(set(rng.sample(vertices, size)) | {tree.root})

    def verify_all():
        agreements = 0
        checks = 0
        for vertex_set in sampled_sets:
            cut_positions = tour.directed_cut_positions(vertex_set)
            shape = shape_from_cut_positions(cut_positions)
            for edge in extra:
                in_cut = (edge[0] in vertex_set) != (edge[1] in vertex_set)
                in_region = shape.contains(points[edge])
                checks += 1
                if in_cut == in_region:
                    agreements += 1
        return agreements, checks

    agreements, checks = benchmark(verify_all)
    print_table("Figure 2 / Lemma 3 verification",
                ["sampled sets", "point-membership checks", "agreements"],
                [[len(sampled_sets), checks, agreements]])
    benchmark.extra_info["checks"] = checks
    assert agreements == checks  # Lemma 3 is exact, not probabilistic.
