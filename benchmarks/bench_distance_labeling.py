"""Experiment COR1: fault-tolerant approximate distance labeling (Corollary 1).

Corollary 1 turns any f-FTC labeling into an O(|F| k)-approximate distance
labeling with Õ(f^2 n^{1/k}) label bits.  The benchmark builds the reduction
on grid and sparse random graphs, measures label sizes, and reports the
observed stretch distribution of the distance estimates — the reproduced shape
is a bounded stretch that grows with |F| and k, never an unbounded error, and
exact agreement on reachability.
"""

import pytest

from common import cached_graph, print_table
from repro.applications import FaultTolerantDistanceLabeling
from repro.workloads import FaultModel, make_query_workload

SEED = 23
MAX_FAULTS = 2


@pytest.mark.benchmark(group="cor1-distance")
@pytest.mark.parametrize("family,n", [("grid", 49), ("tree-chords", 60)])
def test_distance_labeling_build(benchmark, family, n):
    graph = cached_graph(family, n, SEED, density=1.4)
    scheme = benchmark.pedantic(
        lambda: FaultTolerantDistanceLabeling(graph, max_faults=MAX_FAULTS,
                                              stretch_parameter=2),
        rounds=1, iterations=1)
    stats = scheme.label_size_stats()
    benchmark.extra_info.update(stats)
    assert stats["scales"] >= 1


@pytest.mark.benchmark(group="cor1-distance")
def test_distance_stretch_table(benchmark):
    rows = []
    for family, n in [("grid", 49), ("tree-chords", 60)]:
        graph = cached_graph(family, n, SEED, density=1.4)
        scheme = FaultTolerantDistanceLabeling(graph, max_faults=MAX_FAULTS,
                                               stretch_parameter=2)
        workload = make_query_workload(graph, num_queries=30, max_faults=MAX_FAULTS,
                                       model=FaultModel.TREE_BIASED, seed=SEED)
        report = scheme.stretch_report(workload.queries)
        stats = scheme.label_size_stats()
        rows.append([family, graph.num_vertices(), stats["max_vertex_label_bits"],
                     report["finite_queries"], "%.2f" % report["mean_stretch"],
                     "%.2f" % report["max_stretch"], report["unreachable_agreements"]])
    print_table("Corollary 1 / approximate distance labeling (f=%d, k=2)" % MAX_FAULTS,
                ["family", "n", "max label bits", "answered", "mean stretch",
                 "max stretch", "unreachable agreed"], rows)
    benchmark.extra_info["rows"] = rows
    graph = cached_graph("grid", 49, SEED, density=1.4)
    scheme = FaultTolerantDistanceLabeling(graph, max_faults=MAX_FAULTS, stretch_parameter=2)
    workload = make_query_workload(graph, num_queries=10, max_faults=MAX_FAULTS, seed=SEED)
    benchmark(lambda: [scheme.estimate_distance(s, t, F) for s, t, F in workload.queries])
    # The stretch must stay within the O(|F| k) envelope (with our explicit constants).
    for row in rows:
        assert float(row[5]) <= 4 * (2 * MAX_FAULTS + 1) * 2 + 1
