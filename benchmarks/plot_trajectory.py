"""Plot metric trajectories across archived ``BENCH_<name>.json`` runs.

Each benchmark run emits one ``BENCH_<name>.json`` envelope (see
:func:`common.emit_bench_json`); archive them — e.g. one directory per CI run,
or timestamped copies — and this tool lines the runs up per benchmark (sorted
by the envelope's ``created_unix``) and renders how every numeric metric
moved::

    python benchmarks/plot_trajectory.py runs/2026-08-*/ --metric qps
    python benchmarks/plot_trajectory.py runs/**/BENCH_server.json \\
        --output trajectory.png

Metrics are flattened with the same path scheme :mod:`compare` uses, so the
series names here match the rows of a ``compare.py`` diff (including the
``p50_ms``/``p99_ms`` latency quantiles the server benchmark records).

With matplotlib installed, ``--output`` writes one figure (a subplot per
benchmark); without it — the toolchain does not require matplotlib — the
fallback prints a text table with first/last values, the relative change,
and an ASCII sparkline per metric.  Nothing else in the repo imports this
module, so the optional dependency stays contained.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ is None or __package__ == "":
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from compare import _flatten

#: Eight-level ASCII sparkline alphabet (space = minimum, '#' = maximum).
SPARK_CHARS = " .:-=+*#"


def discover_files(paths: list) -> list:
    """Expand files and directories into a list of ``BENCH_*.json`` paths."""
    found = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("BENCH_*.json")))
        elif path.is_file():
            found.append(path)
    return found


def load_runs(files: list) -> dict:
    """Group envelopes by benchmark name, each sorted by ``created_unix``.

    Returns ``{benchmark: [(created_unix, {metric_path: value}), ...]}``;
    files that are not valid benchmark envelopes are skipped with a warning
    (an archive directory may hold other JSON).
    """
    runs: dict = {}
    for path in files:
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print("skipping %s: %s" % (path, error), file=sys.stderr)
            continue
        if not isinstance(document, dict) or "benchmark" not in document:
            print("skipping %s: not a benchmark envelope" % path,
                  file=sys.stderr)
            continue
        flat: dict = {}
        _flatten(document.get("results", {}), "", flat)
        runs.setdefault(str(document["benchmark"]), []).append(
            (float(document.get("created_unix", 0.0)), flat))
    for entries in runs.values():
        entries.sort(key=lambda entry: entry[0])
    return runs


def series_of(entries: list, metric_filter: str | None) -> dict:
    """``{metric_path: [value or None per run]}`` over one benchmark's runs.

    Only metrics present in at least two runs make a trajectory; ``None``
    marks runs where a metric is missing (so run indices stay aligned).
    """
    names: set = set()
    for _, flat in entries:
        names.update(flat)
    series: dict = {}
    for name in sorted(names):
        if metric_filter and metric_filter not in name:
            continue
        values = [flat.get(name) for _, flat in entries]
        if sum(value is not None for value in values) >= 2:
            series[name] = values
    return series


def sparkline(values: list) -> str:
    """An ASCII sparkline; missing runs render as ``?``."""
    present = [value for value in values if value is not None]
    low, high = min(present), max(present)
    span = high - low
    out = []
    for value in values:
        if value is None:
            out.append("?")
        elif span == 0:
            out.append(SPARK_CHARS[len(SPARK_CHARS) // 2])
        else:
            level = int((value - low) / span * (len(SPARK_CHARS) - 1))
            out.append(SPARK_CHARS[level])
    return "".join(out)


def print_text_report(runs: dict, metric_filter: str | None) -> int:
    """The matplotlib-free fallback; returns the number of series printed."""
    printed = 0
    for benchmark in sorted(runs):
        entries = runs[benchmark]
        series = series_of(entries, metric_filter)
        if not series:
            continue
        print("%s (%d runs)" % (benchmark, len(entries)))
        width = max(len(name) for name in series)
        for name, values in series.items():
            present = [value for value in values if value is not None]
            first, last = present[0], present[-1]
            change = "%+.1f%%" % (100.0 * (last - first) / first) \
                if first else "n/a"
            print("  %-*s %12.6g -> %12.6g  %8s  [%s]"
                  % (width, name, first, last, change, sparkline(values)))
            printed += 1
        print()
    return printed


def plot_figure(runs: dict, metric_filter: str | None, output: str) -> int:
    """Render one matplotlib figure (a subplot per benchmark)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    panels = [(benchmark, series_of(runs[benchmark], metric_filter))
              for benchmark in sorted(runs)]
    panels = [(benchmark, series) for benchmark, series in panels if series]
    if not panels:
        return 0
    figure, axes = plt.subplots(len(panels), 1, squeeze=False,
                                figsize=(8, 3 * len(panels)))
    plotted = 0
    for axis, (benchmark, series) in zip(axes[:, 0], panels):
        for name, values in series.items():
            xs = [index for index, value in enumerate(values)
                  if value is not None]
            ys = [value for value in values if value is not None]
            axis.plot(xs, ys, marker="o", label=name)
            plotted += 1
        axis.set_title(benchmark)
        axis.set_xlabel("run")
        axis.legend(fontsize="x-small")
    figure.tight_layout()
    figure.savefig(output)
    print("wrote %s" % output)
    return plotted


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="plot metric trajectories across archived BENCH_*.json runs")
    parser.add_argument("paths", nargs="+",
                        help="BENCH_*.json files and/or directories to scan "
                             "recursively")
    parser.add_argument("--metric", default=None,
                        help="only plot metrics whose path contains this "
                             "substring (e.g. 'qps', 'p99_ms')")
    parser.add_argument("--output", default=None,
                        help="write a matplotlib figure here instead of the "
                             "text report (requires matplotlib)")
    args = parser.parse_args(argv)

    files = discover_files(args.paths)
    if not files:
        print("no BENCH_*.json files under %s" % ", ".join(args.paths),
              file=sys.stderr)
        return 2
    runs = load_runs(files)
    if args.output is not None:
        try:
            count = plot_figure(runs, args.metric, args.output)
        except ImportError:
            print("matplotlib is not installed; rerun without --output for "
                  "the text report", file=sys.stderr)
            return 2
    else:
        count = print_text_report(runs, args.metric)
    if not count:
        print("no metric appears in two or more runs%s"
              % (" matching %r" % args.metric if args.metric else ""),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
