"""Experiment SERVER: query throughput over the wire, one vs many clients.

The server (:mod:`repro.server`) exists so that many concurrent clients can
share one snapshot-loaded oracle — and, when they query the same fault set,
one :class:`~repro.core.batch.BatchQuerySession`.  This benchmark measures,
against the medium workload snapshot:

* in-process ``connected_many`` throughput (the no-network ceiling),
* server throughput with a single blocking client,
* aggregate server throughput with several concurrent clients,
* the session hit rate the concurrent clients achieve, and
* a worker sweep: aggregate q/s and client-observed p50/p99 against
  ``repro serve --workers 1/2/4`` fleets over a version-2 (mmap) snapshot
  (``--skip-sweep`` omits it; it spawns real server processes), and
* a mid-run reload track: sustain load while a hot swap
  (:meth:`~repro.api.RemoteOracle.reload`) replaces the serving snapshot,
  recording ``swap_p99_ms`` (client-observed p99 across the whole run, swap
  included) and ``swap_stall_ms`` (the single worst request) — both ``_ms``
  metrics, so ``compare.py`` treats them as lower-is-better.

Hard assertions: every answer served over the wire is bit-identical to the
in-process oracle, and the concurrent clients share sessions (positive hit
rate with exactly one construction per distinct fault set).  The wall-clock
claim — concurrency does not collapse aggregate throughput (multi-client
aggregate >= 0.9x a single client's; the server is GIL-bound, so linear
scaling is not the claim) — is advisory by default and enforced in the
strict CI job per the ``REPRO_BENCH_STRICT`` convention.

Runable two ways: under pytest (``pytest benchmarks/bench_server.py``) or
directly as a CI smoke test::

    PYTHONPATH=src python benchmarks/bench_server.py --n 32 --requests 20
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if __package__ is None or __package__ == "":
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (bench_strict, cached_graph, check_speedup, emit_bench_json,
                    print_table)
from repro.api import Oracle
from repro.core.config import SchemeVariant
from repro.server import BackgroundServer
from repro.workloads import FaultModel
from repro.workloads.faults import sample_fault_sets

#: The medium workload (same as bench_snapshot's).
FAMILY = "erdos-renyi"
N = 160
SEED = 23
MAX_FAULTS = 4
PAIRS_PER_REQUEST = 50
REQUESTS_PER_CLIENT = 40
NUM_CLIENTS = 4
NUM_FAULT_SETS = 5
#: Aggregate multi-client throughput must be at least this multiple of a
#: single client's.  The server is GIL-bound, so the honest claim is
#: "concurrency does not collapse throughput", not linear scaling; the 0.9
#: floor leaves headroom for shared-runner jitter.
MIN_CONCURRENT_RATIO = 0.9

#: Fleet sizes the worker sweep serves (``repro serve --workers N``).
WORKER_COUNTS = (1, 2, 4)


def build_world(n, seed, max_faults):
    """Snapshot bytes + a served oracle + a reference oracle + a workload."""
    graph = cached_graph(FAMILY, n, seed)
    built = Oracle.build(graph, max_faults=max_faults,
                         variant=SchemeVariant.DETERMINISTIC_NEARLINEAR)
    data = built.to_snapshot_bytes()
    served = Oracle.load(data)
    reference = Oracle.load(data)

    fault_sets = [list(faults) for faults in sample_fault_sets(
        graph, NUM_FAULT_SETS, max_faults, model=FaultModel.TREE_BIASED, seed=seed)]
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    requests = []
    for index, faults in enumerate(fault_sets):
        pairs = [tuple(rng.sample(vertices, 2)) for _ in range(PAIRS_PER_REQUEST)]
        requests.append((faults, pairs, reference.connected_many(pairs, faults)))
    return served, reference, requests


def drive_client(host, port, requests, num_requests) -> float:
    """Send ``num_requests`` connected_many requests; returns elapsed seconds.

    Answers are hard-checked against the precomputed in-process truth.  Each
    client is the facade's "tcp" transport (``Oracle.connect``), so the
    benchmark exercises exactly what protocol callers use.
    """
    with Oracle.connect(host, port) as client:
        start = time.perf_counter()
        for index in range(num_requests):
            faults, pairs, expected = requests[index % len(requests)]
            answers = client.connected_many(pairs, faults)
            assert answers == expected, "server answer diverged from in-process oracle"
        return time.perf_counter() - start


def run_server_benchmark(n=N, seed=SEED, max_faults=MAX_FAULTS,
                         requests_per_client=REQUESTS_PER_CLIENT,
                         num_clients=NUM_CLIENTS):
    served, reference, requests = build_world(n, seed, max_faults)

    # In-process ceiling (no sockets, no JSON).
    start = time.perf_counter()
    for index in range(requests_per_client):
        faults, pairs, expected = requests[index % len(requests)]
        assert reference.connected_many(pairs, faults) == expected
    inprocess_seconds = time.perf_counter() - start

    with BackgroundServer(served, max_sessions=32) as server:
        # Warm up: build every distinct fault set's session once, so both
        # timed phases measure steady-state serving rather than construction.
        drive_client(server.host, server.port, requests, len(requests))
        single_seconds = drive_client(server.host, server.port, requests,
                                      requests_per_client)
        single_metrics = server.metrics.snapshot()["sessions"]

        with ThreadPoolExecutor(max_workers=num_clients) as pool:
            start = time.perf_counter()
            elapsed = list(pool.map(
                lambda _: drive_client(server.host, server.port, requests,
                                       requests_per_client),
                range(num_clients)))
            concurrent_wall = time.perf_counter() - start
        final_snapshot = server.metrics.snapshot()
        final_metrics = final_snapshot["sessions"]
        latency = final_snapshot["latency_by_op"].get("connected_many", {})

    queries_per_request = PAIRS_PER_REQUEST
    single_qps = requests_per_client * queries_per_request / single_seconds
    concurrent_qps = (num_clients * requests_per_client * queries_per_request
                      / concurrent_wall)
    inprocess_qps = requests_per_client * queries_per_request / inprocess_seconds

    # Hard session-sharing assertions: one build per distinct fault set, ever.
    assert final_metrics["misses"] == len(requests), final_metrics
    assert final_metrics["hit_rate"] > 0.5, final_metrics
    return {
        "inprocess_qps": inprocess_qps,
        "single_client_qps": single_qps,
        "concurrent_qps": concurrent_qps,
        "num_clients": num_clients,
        "concurrent_ratio": concurrent_qps / single_qps,
        "hit_rate": final_metrics["hit_rate"],
        "session_builds": final_metrics["misses"],
        "single_hit_rate": single_metrics["hit_rate"],
        "per_client_seconds": elapsed,
        # Server-side per-request latency quantiles (histogram estimates).
        "p50_ms": latency.get("p50_ms", 0.0),
        "p99_ms": latency.get("p99_ms", 0.0),
    }


def run_reload_benchmark(n=N, seed=SEED, max_faults=MAX_FAULTS,
                         requests_per_client=REQUESTS_PER_CLIENT,
                         num_clients=NUM_CLIENTS):
    """Client-observed latency while a hot swap happens mid-run.

    Serves a snapshot file, drives ``num_clients`` concurrent clients, and
    halfway through triggers the authenticated ``reload`` op from a separate
    control connection.  Every answer is still hard-checked against the
    precomputed truth (the rewritten file holds byte-identical content, so
    the truth table stays valid while the swap itself is fully real: new
    oracle object, epoch bump, retired-oracle close).  No connection may
    drop, and the post-swap epoch must have advanced.
    """
    import tempfile as tempfile_module

    graph = cached_graph(FAMILY, n, seed)
    built = Oracle.build(graph, max_faults=max_faults,
                         variant=SchemeVariant.DETERMINISTIC_NEARLINEAR)
    data = built.to_snapshot_bytes()
    reference = Oracle.load(data)
    fault_sets = [list(faults) for faults in sample_fault_sets(
        graph, NUM_FAULT_SETS, max_faults, model=FaultModel.TREE_BIASED,
        seed=seed)]
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    requests = []
    for faults in fault_sets:
        pairs = [tuple(rng.sample(vertices, 2)) for _ in range(PAIRS_PER_REQUEST)]
        requests.append((faults, pairs, reference.connected_many(pairs, faults)))
    reference.close()

    with tempfile_module.TemporaryDirectory(prefix="bench-reload-") as tmp:
        path = os.path.join(tmp, "world.ftcs")
        with open(path, "wb") as handle:
            handle.write(data)
        with BackgroundServer(Oracle.load(path), max_sessions=32,
                              snapshot_path=path,
                              reload_token="bench-reload") as server:
            # Warm every distinct session so the track measures the swap,
            # not first-touch session construction.
            drive_client_latencies(server.host, server.port, requests,
                                   len(requests))

            def load_phase():
                return drive_client_latencies(server.host, server.port,
                                              requests, requests_per_client)

            with Oracle.connect(server.host, server.port) as control:
                epoch_before = control.server_stats()["server"]["snapshot_epoch"]
                with ThreadPoolExecutor(max_workers=num_clients + 1) as pool:
                    futures = [pool.submit(load_phase)
                               for _ in range(num_clients)]
                    # Let the load reach steady state, then swap mid-run.
                    time.sleep(0.05)
                    reload_start = time.perf_counter()
                    report = control.reload("bench-reload")
                    reload_seconds = time.perf_counter() - reload_start
                    latency_lists = [future.result() for future in futures]
                epoch_after = control.server_stats()["server"]["snapshot_epoch"]

    assert report["reloaded"] is True, report
    assert epoch_after == epoch_before + 1, (epoch_before, epoch_after)
    latencies = [value for chunk in latency_lists for value in chunk]
    return {
        "clients": num_clients,
        "requests_per_client": requests_per_client,
        "swap_p99_ms": _quantile(latencies, 0.99) * 1000.0,
        "swap_stall_ms": max(latencies) * 1000.0,
        "reload_ms": reload_seconds * 1000.0,
        "rewarmed_sessions": report["rewarmed_sessions"],
        "epoch_after": epoch_after,
    }


def _quantile(values, fraction):
    """Nearest-rank quantile of a non-empty list (client-observed)."""
    ranked = sorted(values)
    index = min(len(ranked) - 1, int(fraction * len(ranked)))
    return ranked[index]


def drive_client_latencies(host, port, requests, num_requests) -> list:
    """Like :func:`drive_client` but returns per-request latencies (seconds)."""
    latencies = []
    with Oracle.connect(host, port) as client:
        for index in range(num_requests):
            faults, pairs, expected = requests[index % len(requests)]
            start = time.perf_counter()
            answers = client.connected_many(pairs, faults)
            latencies.append(time.perf_counter() - start)
            assert answers == expected, \
                "fleet answer diverged from in-process oracle"
    return latencies


def _warm_fleet(host, port, requests, workers):
    """Build every distinct fault-set session on every worker.

    Each worker behind the shared SO_REUSEPORT port keeps its own session
    cache, and the kernel balances *connections* — so one long-lived warm
    connection only ever warms one worker.  Drive many short-lived
    connections in parallel and repeat until a full pass observes no
    cold-build latency (warm requests are milliseconds; session builds are
    seconds), so the timed phase measures steady-state serving.
    """
    connections = max(8, 4 * workers)
    for _ in range(6):
        with ThreadPoolExecutor(max_workers=connections) as warm_pool:
            passes = list(warm_pool.map(
                lambda _: drive_client_latencies(host, port, requests,
                                                 len(requests)),
                range(connections)))
        if max(value for chunk in passes for value in chunk) < 0.25:
            return


def _spawn_fleet(snapshot_path, workers):
    """Start ``repro serve --workers N`` on an ephemeral port; returns
    ``(process, announce_event)``."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--snapshot", str(snapshot_path), "--port", "0",
         "--workers", str(workers)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    # Workers share the parent's stdout, so tracing spans (slow session
    # builds during pre-warm) interleave with the announce line — scan for
    # the "serving" event instead of trusting the first line.
    for line in process.stdout:
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if event.get("event") == "serving":
            return process, event
    process.kill()
    process.wait()
    raise RuntimeError("fleet exited before announcing readiness")


def run_worker_sweep(n=N, seed=SEED, max_faults=MAX_FAULTS,
                     requests_per_client=REQUESTS_PER_CLIENT,
                     num_clients=NUM_CLIENTS, worker_counts=WORKER_COUNTS):
    """Aggregate q/s and client-observed p50/p99 per ``--workers`` count.

    Each fleet size serves the same version-2 (mmap layout) snapshot from a
    temp directory; every answer is hard-checked against the in-process
    oracle, so the sweep doubles as a multi-process bit-identity test.
    """
    from repro.api import upgrade_snapshot

    _, reference, requests = build_world(n, seed, max_faults)
    reference.close()
    graph = cached_graph(FAMILY, n, seed)
    built = Oracle.build(graph, max_faults=max_faults,
                         variant=SchemeVariant.DETERMINISTIC_NEARLINEAR)
    sweep = {}
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        v1_path = os.path.join(tmp, "world.ftcs")
        built.save(v1_path)
        built.close()
        snapshot_path = os.path.join(tmp, "world.v2.ftcs")
        upgrade_snapshot(v1_path, snapshot_path)
        from repro.pool import hot_keys_path

        for workers in worker_counts:
            # Each fleet size starts cold: drop the hot-key sidecar the
            # previous fleet wrote on shutdown, so no entry gets a pre-warm
            # head start (the warm-up drive below levels the caches).
            sidecar = hot_keys_path(snapshot_path)
            if os.path.exists(sidecar):
                os.remove(sidecar)
            process, event = _spawn_fleet(snapshot_path, workers)
            # Load generation scales with the fleet: one client connection
            # pins to one worker, so measuring a 4-worker fleet with 2
            # clients would leave half the fleet idle.
            clients = max(num_clients, 2 * workers)
            try:
                _warm_fleet(event["host"], event["port"], requests, workers)
                start = time.perf_counter()
                with ThreadPoolExecutor(max_workers=clients) as pool:
                    latency_lists = list(pool.map(
                        lambda _: drive_client_latencies(
                            event["host"], event["port"], requests,
                            requests_per_client),
                        range(clients)))
                wall = time.perf_counter() - start
            finally:
                process.send_signal(signal.SIGTERM)
                process.wait(timeout=60)
            latencies = [value for chunk in latency_lists for value in chunk]
            total_queries = len(latencies) * PAIRS_PER_REQUEST
            sweep[str(workers)] = {
                "workers": workers,
                "clients": clients,
                "aggregate_qps": total_queries / wall,
                "p50_ms": _quantile(latencies, 0.50) * 1000.0,
                "p99_ms": _quantile(latencies, 0.99) * 1000.0,
            }
    return sweep


def _sweep_rows(sweep):
    return [[entry["workers"], entry["clients"],
             "%.0f" % entry["aggregate_qps"],
             "%.2f" % entry["p50_ms"], "%.2f" % entry["p99_ms"]]
            for entry in sweep.values()]


_SWEEP_HEADERS = ["workers", "clients", "aggregate q/s", "p50 ms", "p99 ms"]


def _table_rows(result):
    return [[
        "%.0f" % result["inprocess_qps"],
        "%.0f" % result["single_client_qps"],
        "%.0f" % result["concurrent_qps"],
        result["num_clients"],
        "%.2fx" % result["concurrent_ratio"],
        "%.2f" % result["hit_rate"],
        result["session_builds"],
    ]]


_HEADERS = ["in-proc q/s", "1-client q/s", "%d-client q/s" % NUM_CLIENTS,
            "clients", "scaling", "hit rate", "builds"]


# --------------------------------------------------------------------- pytest

if pytest is not None:

    def test_server_throughput_and_session_sharing():
        result = run_server_benchmark(n=64, requests_per_client=15)
        print_table("Server throughput (%d pairs per request)" % PAIRS_PER_REQUEST,
                    _HEADERS, _table_rows(result))
        check_speedup("multi-client aggregate vs single client",
                      result["concurrent_ratio"], MIN_CONCURRENT_RATIO)

    def test_mid_run_reload_keeps_serving():
        result = run_reload_benchmark(n=48, requests_per_client=8,
                                      num_clients=2)
        print_table("Mid-run reload", ["clients", "swap p99 ms",
                                       "stall ms", "reload ms"],
                    [[result["clients"], "%.2f" % result["swap_p99_ms"],
                      "%.2f" % result["swap_stall_ms"],
                      "%.2f" % result["reload_ms"]]])
        assert result["epoch_after"] == 1
        assert result["swap_p99_ms"] <= result["swap_stall_ms"]

    def test_worker_sweep_serves_bit_identical_answers():
        import socket

        if not hasattr(socket, "SO_REUSEPORT"):
            pytest.skip("platform without SO_REUSEPORT")
        sweep = run_worker_sweep(n=48, requests_per_client=6,
                                 num_clients=2, worker_counts=(1, 2))
        print_table("Worker sweep (small)", _SWEEP_HEADERS, _sweep_rows(sweep))
        assert set(sweep) == {"1", "2"}
        for entry in sweep.values():
            assert entry["aggregate_qps"] > 0
            assert entry["p50_ms"] <= entry["p99_ms"]


# --------------------------------------------------------------------- script

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure server requests/sec, single vs concurrent clients")
    parser.add_argument("--n", type=int, default=N, help="graph size")
    parser.add_argument("--max-faults", type=int, default=MAX_FAULTS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--requests", type=int, default=REQUESTS_PER_CLIENT,
                        help="connected_many requests per client")
    parser.add_argument("--clients", type=int, default=NUM_CLIENTS,
                        help="concurrent clients in the multi-client phase")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail unless multi-client aggregate throughput is "
                             "at least this multiple of a single client's; "
                             "defaults to %.1f when REPRO_BENCH_STRICT=1 and "
                             "to report-only otherwise" % MIN_CONCURRENT_RATIO)
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the multi-process --workers sweep (it "
                             "spawns real server fleets)")
    parser.add_argument("--skip-reload", action="store_true",
                        help="skip the mid-run hot-swap latency track")
    parser.add_argument("--workers", type=int, action="append", default=None,
                        help="fleet size to sweep (repeatable; default %s)"
                             % (WORKER_COUNTS,))
    args = parser.parse_args(argv)
    minimum = args.min_ratio
    if minimum is None:
        minimum = MIN_CONCURRENT_RATIO if bench_strict() else 0.0

    result = run_server_benchmark(n=args.n, seed=args.seed,
                                  max_faults=args.max_faults,
                                  requests_per_client=args.requests,
                                  num_clients=args.clients)
    print_table("Server throughput (%d pairs per request)" % PAIRS_PER_REQUEST,
                _HEADERS, _table_rows(result))
    print("all wire answers bit-identical to the in-process oracle; "
          "%d session builds for %d distinct fault sets"
          % (result["session_builds"], NUM_FAULT_SETS))
    payload = {
        "n": args.n,
        "max_faults": args.max_faults,
        "pairs_per_request": PAIRS_PER_REQUEST,
        "inprocess_qps": result["inprocess_qps"],
        "single_client_qps": result["single_client_qps"],
        "concurrent_qps": result["concurrent_qps"],
        "num_clients": result["num_clients"],
        "concurrent_ratio": result["concurrent_ratio"],
        "hit_rate": result["hit_rate"],
        "session_builds": result["session_builds"],
        "p50_ms": result["p50_ms"],
        "p99_ms": result["p99_ms"],
    }
    if not args.skip_reload:
        reload_result = run_reload_benchmark(
            n=args.n, seed=args.seed, max_faults=args.max_faults,
            requests_per_client=args.requests, num_clients=args.clients)
        print_table("Mid-run reload (hot swap under load)",
                    ["clients", "swap p99 ms", "stall ms", "reload ms",
                     "rewarmed"],
                    [[reload_result["clients"],
                      "%.2f" % reload_result["swap_p99_ms"],
                      "%.2f" % reload_result["swap_stall_ms"],
                      "%.2f" % reload_result["reload_ms"],
                      reload_result["rewarmed_sessions"]]])
        print("hot swap under load: zero dropped connections, every answer "
              "bit-identical, epoch %d" % reload_result["epoch_after"])
        payload["swap_p99_ms"] = reload_result["swap_p99_ms"]
        payload["swap_stall_ms"] = reload_result["swap_stall_ms"]
        payload["reload_ms"] = reload_result["reload_ms"]
    import socket

    if args.skip_sweep or not hasattr(socket, "SO_REUSEPORT"):
        if not args.skip_sweep:
            print("worker sweep skipped: platform without SO_REUSEPORT")
    else:
        sweep = run_worker_sweep(n=args.n, seed=args.seed,
                                 max_faults=args.max_faults,
                                 requests_per_client=args.requests,
                                 num_clients=args.clients,
                                 worker_counts=tuple(args.workers)
                                 if args.workers else WORKER_COUNTS)
        print_table("Worker sweep (clients scale with the fleet)",
                    _SWEEP_HEADERS, _sweep_rows(sweep))
        # Fleet scaling is bounded by the machine: on a 1-2 core box extra
        # workers only add contention, so record the core count next to the
        # numbers it explains.
        payload["cpu_count"] = os.cpu_count()
        print("worker sweep ran on %s cpu core(s)" % os.cpu_count())
        payload["worker_sweep"] = sweep
    emit_bench_json("server", payload)
    if minimum and result["concurrent_ratio"] < minimum:
        print("FAIL: %d-client aggregate is %.2fx a single client (need %.1fx)"
              % (result["num_clients"], result["concurrent_ratio"], minimum),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
