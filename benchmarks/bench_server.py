"""Experiment SERVER: query throughput over the wire, one vs many clients.

The server (:mod:`repro.server`) exists so that many concurrent clients can
share one snapshot-loaded oracle — and, when they query the same fault set,
one :class:`~repro.core.batch.BatchQuerySession`.  This benchmark measures,
against the medium workload snapshot:

* in-process ``connected_many`` throughput (the no-network ceiling),
* server throughput with a single blocking client,
* aggregate server throughput with several concurrent clients, and
* the session hit rate the concurrent clients achieve.

Hard assertions: every answer served over the wire is bit-identical to the
in-process oracle, and the concurrent clients share sessions (positive hit
rate with exactly one construction per distinct fault set).  The wall-clock
claim — concurrency does not collapse aggregate throughput (multi-client
aggregate >= 0.9x a single client's; the server is GIL-bound, so linear
scaling is not the claim) — is advisory by default and enforced in the
strict CI job per the ``REPRO_BENCH_STRICT`` convention.

Runable two ways: under pytest (``pytest benchmarks/bench_server.py``) or
directly as a CI smoke test::

    PYTHONPATH=src python benchmarks/bench_server.py --n 32 --requests 20
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from concurrent.futures import ThreadPoolExecutor

try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if __package__ is None or __package__ == "":
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (bench_strict, cached_graph, check_speedup, emit_bench_json,
                    print_table)
from repro.api import Oracle
from repro.core.config import SchemeVariant
from repro.server import BackgroundServer
from repro.workloads import FaultModel
from repro.workloads.faults import sample_fault_sets

#: The medium workload (same as bench_snapshot's).
FAMILY = "erdos-renyi"
N = 160
SEED = 23
MAX_FAULTS = 4
PAIRS_PER_REQUEST = 50
REQUESTS_PER_CLIENT = 40
NUM_CLIENTS = 4
NUM_FAULT_SETS = 5
#: Aggregate multi-client throughput must be at least this multiple of a
#: single client's.  The server is GIL-bound, so the honest claim is
#: "concurrency does not collapse throughput", not linear scaling; the 0.9
#: floor leaves headroom for shared-runner jitter.
MIN_CONCURRENT_RATIO = 0.9


def build_world(n, seed, max_faults):
    """Snapshot bytes + a served oracle + a reference oracle + a workload."""
    graph = cached_graph(FAMILY, n, seed)
    built = Oracle.build(graph, max_faults=max_faults,
                         variant=SchemeVariant.DETERMINISTIC_NEARLINEAR)
    data = built.to_snapshot_bytes()
    served = Oracle.load(data)
    reference = Oracle.load(data)

    fault_sets = [list(faults) for faults in sample_fault_sets(
        graph, NUM_FAULT_SETS, max_faults, model=FaultModel.TREE_BIASED, seed=seed)]
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    requests = []
    for index, faults in enumerate(fault_sets):
        pairs = [tuple(rng.sample(vertices, 2)) for _ in range(PAIRS_PER_REQUEST)]
        requests.append((faults, pairs, reference.connected_many(pairs, faults)))
    return served, reference, requests


def drive_client(host, port, requests, num_requests) -> float:
    """Send ``num_requests`` connected_many requests; returns elapsed seconds.

    Answers are hard-checked against the precomputed in-process truth.  Each
    client is the facade's "tcp" transport (``Oracle.connect``), so the
    benchmark exercises exactly what protocol callers use.
    """
    with Oracle.connect(host, port) as client:
        start = time.perf_counter()
        for index in range(num_requests):
            faults, pairs, expected = requests[index % len(requests)]
            answers = client.connected_many(pairs, faults)
            assert answers == expected, "server answer diverged from in-process oracle"
        return time.perf_counter() - start


def run_server_benchmark(n=N, seed=SEED, max_faults=MAX_FAULTS,
                         requests_per_client=REQUESTS_PER_CLIENT,
                         num_clients=NUM_CLIENTS):
    served, reference, requests = build_world(n, seed, max_faults)

    # In-process ceiling (no sockets, no JSON).
    start = time.perf_counter()
    for index in range(requests_per_client):
        faults, pairs, expected = requests[index % len(requests)]
        assert reference.connected_many(pairs, faults) == expected
    inprocess_seconds = time.perf_counter() - start

    with BackgroundServer(served, max_sessions=32) as server:
        # Warm up: build every distinct fault set's session once, so both
        # timed phases measure steady-state serving rather than construction.
        drive_client(server.host, server.port, requests, len(requests))
        single_seconds = drive_client(server.host, server.port, requests,
                                      requests_per_client)
        single_metrics = server.metrics.snapshot()["sessions"]

        with ThreadPoolExecutor(max_workers=num_clients) as pool:
            start = time.perf_counter()
            elapsed = list(pool.map(
                lambda _: drive_client(server.host, server.port, requests,
                                       requests_per_client),
                range(num_clients)))
            concurrent_wall = time.perf_counter() - start
        final_snapshot = server.metrics.snapshot()
        final_metrics = final_snapshot["sessions"]
        latency = final_snapshot["latency_by_op"].get("connected_many", {})

    queries_per_request = PAIRS_PER_REQUEST
    single_qps = requests_per_client * queries_per_request / single_seconds
    concurrent_qps = (num_clients * requests_per_client * queries_per_request
                      / concurrent_wall)
    inprocess_qps = requests_per_client * queries_per_request / inprocess_seconds

    # Hard session-sharing assertions: one build per distinct fault set, ever.
    assert final_metrics["misses"] == len(requests), final_metrics
    assert final_metrics["hit_rate"] > 0.5, final_metrics
    return {
        "inprocess_qps": inprocess_qps,
        "single_client_qps": single_qps,
        "concurrent_qps": concurrent_qps,
        "num_clients": num_clients,
        "concurrent_ratio": concurrent_qps / single_qps,
        "hit_rate": final_metrics["hit_rate"],
        "session_builds": final_metrics["misses"],
        "single_hit_rate": single_metrics["hit_rate"],
        "per_client_seconds": elapsed,
        # Server-side per-request latency quantiles (histogram estimates).
        "p50_ms": latency.get("p50_ms", 0.0),
        "p99_ms": latency.get("p99_ms", 0.0),
    }


def _table_rows(result):
    return [[
        "%.0f" % result["inprocess_qps"],
        "%.0f" % result["single_client_qps"],
        "%.0f" % result["concurrent_qps"],
        result["num_clients"],
        "%.2fx" % result["concurrent_ratio"],
        "%.2f" % result["hit_rate"],
        result["session_builds"],
    ]]


_HEADERS = ["in-proc q/s", "1-client q/s", "%d-client q/s" % NUM_CLIENTS,
            "clients", "scaling", "hit rate", "builds"]


# --------------------------------------------------------------------- pytest

if pytest is not None:

    def test_server_throughput_and_session_sharing():
        result = run_server_benchmark(n=64, requests_per_client=15)
        print_table("Server throughput (%d pairs per request)" % PAIRS_PER_REQUEST,
                    _HEADERS, _table_rows(result))
        check_speedup("multi-client aggregate vs single client",
                      result["concurrent_ratio"], MIN_CONCURRENT_RATIO)


# --------------------------------------------------------------------- script

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure server requests/sec, single vs concurrent clients")
    parser.add_argument("--n", type=int, default=N, help="graph size")
    parser.add_argument("--max-faults", type=int, default=MAX_FAULTS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--requests", type=int, default=REQUESTS_PER_CLIENT,
                        help="connected_many requests per client")
    parser.add_argument("--clients", type=int, default=NUM_CLIENTS,
                        help="concurrent clients in the multi-client phase")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail unless multi-client aggregate throughput is "
                             "at least this multiple of a single client's; "
                             "defaults to %.1f when REPRO_BENCH_STRICT=1 and "
                             "to report-only otherwise" % MIN_CONCURRENT_RATIO)
    args = parser.parse_args(argv)
    minimum = args.min_ratio
    if minimum is None:
        minimum = MIN_CONCURRENT_RATIO if bench_strict() else 0.0

    result = run_server_benchmark(n=args.n, seed=args.seed,
                                  max_faults=args.max_faults,
                                  requests_per_client=args.requests,
                                  num_clients=args.clients)
    print_table("Server throughput (%d pairs per request)" % PAIRS_PER_REQUEST,
                _HEADERS, _table_rows(result))
    print("all wire answers bit-identical to the in-process oracle; "
          "%d session builds for %d distinct fault sets"
          % (result["session_builds"], NUM_FAULT_SETS))
    emit_bench_json("server", {
        "n": args.n,
        "max_faults": args.max_faults,
        "pairs_per_request": PAIRS_PER_REQUEST,
        "inprocess_qps": result["inprocess_qps"],
        "single_client_qps": result["single_client_qps"],
        "concurrent_qps": result["concurrent_qps"],
        "num_clients": result["num_clients"],
        "concurrent_ratio": result["concurrent_ratio"],
        "hit_rate": result["hit_rate"],
        "session_builds": result["session_builds"],
        "p50_ms": result["p50_ms"],
        "p99_ms": result["p99_ms"],
    })
    if minimum and result["concurrent_ratio"] < minimum:
        print("FAIL: %d-client aggregate is %.2fx a single client (need %.1fx)"
              % (result["num_clients"], result["concurrent_ratio"], minimum),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
