"""Experiment LEM6: basic versus refined query engine (Section 6 / Lemma 6).

The refined engine always expands the component fragment with the smallest
tree boundary and relies on adaptive outdetect decoding; Lemma 6 says this
shaves a factor |F| off the query time.  The benchmark compares both engines
on the same deterministic labels for growing |F|; the reproduced claim is that
the refined engine's advantage grows with |F| (and both return identical,
correct answers).
"""

import time

import pytest

from common import cached_graph, cached_labeling, print_table
from repro.workloads import FaultModel, make_query_workload

FAMILY = "erdos-renyi"
N = 96
SEED = 17
MAX_FAULTS = 6


def _workload(fault_count, num_queries=10):
    graph = cached_graph(FAMILY, N, SEED)
    return graph, make_query_workload(graph, num_queries=num_queries, max_faults=fault_count,
                                      model=FaultModel.TREE_BIASED, seed=SEED + fault_count)


@pytest.mark.benchmark(group="lemma6-query-engines")
@pytest.mark.parametrize("engine", ["basic", "fast"])
@pytest.mark.parametrize("fault_count", [2, 4, 6])
def test_engine_timing(benchmark, engine, fault_count):
    graph, workload = _workload(fault_count)
    labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, "det-nearlinear")
    use_fast = engine == "fast"

    def run():
        return [labeling.connected(s, t, faults, use_fast_engine=use_fast)
                for s, t, faults in workload.queries]

    answers = benchmark(run)
    benchmark.extra_info.update({"engine": engine, "fault_count": fault_count})
    assert answers == workload.ground_truth


@pytest.mark.benchmark(group="lemma6-query-engines")
def test_engines_agree_and_summary(benchmark):
    labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, "det-nearlinear")
    rows = []
    for fault_count in (2, 4, 6):
        graph, workload = _workload(fault_count, num_queries=8)
        timings = {}
        for engine, use_fast in (("basic", False), ("fast", True)):
            start = time.perf_counter()
            answers = [labeling.connected(s, t, faults, use_fast_engine=use_fast)
                       for s, t, faults in workload.queries]
            timings[engine] = (time.perf_counter() - start) / len(workload)
            assert answers == workload.ground_truth
        rows.append([fault_count, "%.2f" % (1000 * timings["basic"]),
                     "%.2f" % (1000 * timings["fast"]),
                     "%.2f" % (timings["basic"] / max(timings["fast"], 1e-9))])
    print_table("Lemma 6 / query engines (ms per query)",
                ["|F|", "basic engine", "refined engine", "basic/refined"], rows)
    benchmark.extra_info["rows"] = rows
    benchmark(lambda: None)
    assert rows
