"""Experiment T1-correct: the "correctness" column of Table 1.

The deterministic schemes (and the randomized scheme with full query support)
must answer every query correctly; the whp sketch scheme is allowed a small
per-query failure probability.  The benchmark audits every scheme against the
BFS ground truth on an adversarial workload and reports the accuracies — the
column to reproduce is "full" versus "whp".
"""

import pytest

from common import TABLE1_VARIANTS, cached_graph, cached_labeling, print_table
from repro.workloads import FaultModel, make_query_workload
from repro.workloads.queries import audit_scheme

FAMILY = "tree-chords"
N = 96
SEED = 13
MAX_FAULTS = 2
NUM_QUERIES = 120


@pytest.mark.benchmark(group="table1-correctness")
def test_correctness_audit_all_schemes(benchmark):
    graph = cached_graph(FAMILY, N, SEED, density=1.5)
    workload = make_query_workload(graph, num_queries=NUM_QUERIES, max_faults=MAX_FAULTS,
                                   model=FaultModel.ADVERSARIAL, seed=SEED)
    rows = []
    reports = {}
    for name, kwargs in TABLE1_VARIANTS.items():
        labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, kwargs["variant"].value,
                                   density=1.5)
        report = audit_scheme(lambda s, t, F, lab=labeling: lab.connected(s, t, F), workload)
        reports[name] = report
        rows.append([name, report["agree"], report["wrong"], report["failed"],
                     "%.4f" % report["accuracy"]])
    print_table("Table 1 / correctness (n=%d, %d adversarial queries, f=%d)"
                % (N, NUM_QUERIES, MAX_FAULTS),
                ["scheme", "correct", "wrong", "failed", "accuracy"], rows)

    deterministic = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, "det-nearlinear", density=1.5)
    benchmark(lambda: audit_scheme(
        lambda s, t, F: deterministic.connected(s, t, F), workload))
    benchmark.extra_info["rows"] = rows

    # Deterministic schemes (full query support) must be perfect.
    assert reports["This paper (det, near-linear)"]["accuracy"] == 1.0
    assert reports["This paper (det, poly)"]["accuracy"] == 1.0
    assert reports["This paper (rand, full)"]["accuracy"] == 1.0
    # The whp sketch is allowed (but not required) to miss occasionally.
    assert reports["DP21-2nd (whp)"]["accuracy"] >= 0.9
