"""Experiment THM2-f: label size as a function of the fault budget f (Theorem 2).

The deterministic scheme pays O(f^2 polylog n) bits per edge while the
randomized full-support scheme pays O(f polylog n): the deterministic/
randomized ratio should grow roughly linearly in f.  At benchmark-scale n the
proven deterministic threshold 6 (2f+1)^2 log2 |E| exceeds the level size and
is capped (the label can never be longer than "all edges"), so the table also
prints the uncapped theoretical threshold, whose quadratic growth is the
paper's asymptotic claim.
"""

import math

import pytest

from common import cached_graph, cached_labeling, print_table
from repro.hierarchy.config import ThresholdRule

FAMILY = "erdos-renyi"
N = 128
SEED = 6
FAULTS = [1, 2, 3, 4]


@pytest.mark.benchmark(group="thm2-scaling-f")
@pytest.mark.parametrize("f", FAULTS)
def test_label_size_vs_f_randomized(benchmark, f):
    labeling = benchmark.pedantic(
        lambda: cached_labeling(FAMILY, N, SEED, f, "rand-full"),
        rounds=1, iterations=1)
    stats = labeling.label_size_stats()
    benchmark.extra_info["f"] = f
    benchmark.extra_info["max_edge_label_bits"] = stats["max_edge_label_bits"]
    assert stats["max_edge_label_bits"] > 0


@pytest.mark.benchmark(group="thm2-scaling-f")
def test_f_dependence_table(benchmark):
    graph = cached_graph(FAMILY, N, SEED)
    num_non_tree = graph.num_edges() - graph.num_vertices() + 1
    rows = []
    randomized_bits = {}
    for f in FAULTS:
        deterministic = cached_labeling(FAMILY, N, SEED, f, "det-nearlinear")
        randomized = cached_labeling(FAMILY, N, SEED, f, "rand-full")
        det_bits = deterministic.label_size_stats()["max_edge_label_bits"]
        rand_bits = randomized.label_size_stats()["max_edge_label_bits"]
        randomized_bits[f] = rand_bits
        uncapped = ThresholdRule.PAPER.threshold(f, max(num_non_tree * 50, 10 ** 6))
        rows.append([f, det_bits, rand_bits, "%.2f" % (det_bits / max(rand_bits, 1)),
                     uncapped])
    print_table("Theorem 2 / f-dependence (n=%d): measured bits and the uncapped "
                "deterministic threshold (quadratic in f)" % N,
                ["f", "det edge bits", "rand edge bits", "det/rand ratio",
                 "uncapped k (paper rule, large-m regime)"], rows)
    benchmark.extra_info["rows"] = rows
    benchmark(lambda: None)
    # Shape checks: randomized labels grow with f, and the uncapped paper
    # threshold grows quadratically (ratio between f=4 and f=1 is ~ (9/3)^2 = 9).
    assert randomized_bits[FAULTS[-1]] >= randomized_bits[FAULTS[0]]
    quadratic_ratio = rows[-1][4] / rows[0][4]
    assert quadratic_ratio > (2 * FAULTS[-1] + 1) ** 2 / (2 * FAULTS[0] + 1) ** 2 * 0.8
    _ = math
