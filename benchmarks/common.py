"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a Table-1 column, a
figure, a theorem's scaling claim); see DESIGN.md section 3 for the experiment
index and EXPERIMENTS.md for the recorded results.  The helpers here cache
built labelings (they are expensive) and provide a uniform way to print the
result tables that accompany the pytest-benchmark timings.
"""

from __future__ import annotations

import functools
import os

from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.graphs.graph import Graph
from repro.hierarchy.config import ThresholdRule
from repro.workloads import FaultModel, GraphFamily, make_graph, make_query_workload

#: The Table-1 rows reproduced by the harness (scheme name -> builder kwargs).
TABLE1_VARIANTS = {
    "DP21-2nd (whp)": dict(variant=SchemeVariant.SKETCH_WHP),
    "DP21-2nd (full)": dict(variant=SchemeVariant.SKETCH_FULL),
    "This paper (det, near-linear)": dict(variant=SchemeVariant.DETERMINISTIC_NEARLINEAR),
    "This paper (det, poly)": dict(variant=SchemeVariant.DETERMINISTIC_POLY),
    "This paper (rand, full)": dict(variant=SchemeVariant.RANDOMIZED_FULL),
}


@functools.lru_cache(maxsize=64)
def cached_graph(family_value: str, n: int, seed: int, density: float = 2.5) -> Graph:
    return make_graph(GraphFamily(family_value), n=n, seed=seed, density=density)


@functools.lru_cache(maxsize=64)
def cached_labeling(family_value: str, n: int, seed: int, max_faults: int,
                    variant_value: str, rule_value: str = "practical",
                    density: float = 2.5) -> FTCLabeling:
    graph = cached_graph(family_value, n, seed, density)
    config = FTCConfig(
        max_faults=max_faults,
        variant=SchemeVariant(variant_value),
        threshold_rule=ThresholdRule(rule_value),
    )
    return FTCLabeling(graph, config)


def cached_workload(family_value: str, n: int, seed: int, num_queries: int,
                    max_faults: int, model: FaultModel = FaultModel.TREE_BIASED):
    graph = cached_graph(family_value, n, seed)
    return make_query_workload(graph, num_queries=num_queries, max_faults=max_faults,
                               model=model, seed=seed + 1)


def bench_strict() -> bool:
    """Whether wall-clock thresholds are enforced (``REPRO_BENCH_STRICT=1``).

    Timing ratios are flaky on shared CI runners, so speedup thresholds are
    advisory by default and only fail the run in the dedicated strict CI job.
    Bit-identity and correctness assertions are never advisory.
    """
    return os.environ.get("REPRO_BENCH_STRICT", "").strip() == "1"


def check_speedup(name: str, speedup: float, minimum: float) -> None:
    """Enforce (strict mode) or report (default) a wall-clock speedup floor."""
    if speedup >= minimum:
        return
    message = ("%s speedup %.1fx is below the %.1fx threshold" % (name, speedup, minimum))
    if bench_strict():
        raise AssertionError(message)
    print("ADVISORY (set REPRO_BENCH_STRICT=1 to enforce): %s" % message)


def print_table(title: str, headers: list, rows: list) -> None:
    """Print an aligned results table (shows up with ``pytest -s`` and in logs)."""
    widths = [max(len(str(headers[i])), max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(headers))]
    line = "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    print("\n== %s" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    print()
