"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a Table-1 column, a
figure, a theorem's scaling claim); see DESIGN.md section 3 for the experiment
index and EXPERIMENTS.md for the recorded results.  The helpers here cache
built labelings (they are expensive) and provide a uniform way to print the
result tables that accompany the pytest-benchmark timings.
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path

from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.graphs.graph import Graph
from repro.hierarchy.config import ThresholdRule
from repro.workloads import FaultModel, GraphFamily, make_graph, make_query_workload

#: The Table-1 rows reproduced by the harness (scheme name -> builder kwargs).
TABLE1_VARIANTS = {
    "DP21-2nd (whp)": dict(variant=SchemeVariant.SKETCH_WHP),
    "DP21-2nd (full)": dict(variant=SchemeVariant.SKETCH_FULL),
    "This paper (det, near-linear)": dict(variant=SchemeVariant.DETERMINISTIC_NEARLINEAR),
    "This paper (det, poly)": dict(variant=SchemeVariant.DETERMINISTIC_POLY),
    "This paper (rand, full)": dict(variant=SchemeVariant.RANDOMIZED_FULL),
}


@functools.lru_cache(maxsize=64)
def cached_graph(family_value: str, n: int, seed: int, density: float = 2.5) -> Graph:
    return make_graph(GraphFamily(family_value), n=n, seed=seed, density=density)


@functools.lru_cache(maxsize=64)
def cached_labeling(family_value: str, n: int, seed: int, max_faults: int,
                    variant_value: str, rule_value: str = "practical",
                    density: float = 2.5) -> FTCLabeling:
    graph = cached_graph(family_value, n, seed, density)
    config = FTCConfig(
        max_faults=max_faults,
        variant=SchemeVariant(variant_value),
        threshold_rule=ThresholdRule(rule_value),
    )
    return FTCLabeling(graph, config)


def cached_workload(family_value: str, n: int, seed: int, num_queries: int,
                    max_faults: int, model: FaultModel = FaultModel.TREE_BIASED):
    graph = cached_graph(family_value, n, seed)
    return make_query_workload(graph, num_queries=num_queries, max_faults=max_faults,
                               model=model, seed=seed + 1)


def bench_strict() -> bool:
    """Whether wall-clock thresholds are enforced (``REPRO_BENCH_STRICT=1``).

    Timing ratios are flaky on shared CI runners, so speedup thresholds are
    advisory by default and only fail the run in the dedicated strict CI job.
    Bit-identity and correctness assertions are never advisory.
    """
    return os.environ.get("REPRO_BENCH_STRICT", "").strip() == "1"


def check_speedup(name: str, speedup: float, minimum: float) -> None:
    """Enforce (strict mode) or report (default) a wall-clock speedup floor."""
    if speedup >= minimum:
        return
    message = ("%s speedup %.1fx is below the %.1fx threshold" % (name, speedup, minimum))
    if bench_strict():
        raise AssertionError(message)
    print("ADVISORY (set REPRO_BENCH_STRICT=1 to enforce): %s" % message)


def check_ratio_max(name: str, ratio: float, maximum: float,
                    enforce: bool | None = None) -> None:
    """Enforce (strict mode) or report (default) a wall-clock ratio ceiling.

    The mirror image of :func:`check_speedup` for "A must stay within X times
    B" targets, e.g. the ROADMAP's cold-session-within-2x-of-warm claim.
    ``enforce`` overrides the strict-mode default: ``False`` keeps a target
    advisory even under ``REPRO_BENCH_STRICT`` (for aspirational ROADMAP
    targets that are tracked but not yet met).
    """
    if ratio <= maximum:
        return
    message = ("%s ratio %.2fx exceeds the %.1fx ceiling" % (name, ratio, maximum))
    if enforce if enforce is not None else bench_strict():
        raise AssertionError(message)
    if enforce is False:
        print("ADVISORY (tracked target, not enforced): %s" % message)
    else:
        print("ADVISORY (set REPRO_BENCH_STRICT=1 to enforce): %s" % message)


# ----------------------------------------------------- machine-readable output

#: Results recorded by benchmark code during a pytest run, keyed by benchmark
#: name (``batch_queries`` for ``bench_batch_queries.py``); the conftest
#: session hook folds these into the emitted ``BENCH_<name>.json`` files.
_RECORDED_RESULTS: dict = {}


def bench_output_dir() -> Path:
    """Where ``BENCH_<name>.json`` files land (``REPRO_BENCH_DIR`` or CWD)."""
    directory = Path(os.environ.get("REPRO_BENCH_DIR", "").strip() or ".")
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def record_bench_result(name: str, metrics: dict) -> None:
    """Merge ``metrics`` into the machine-readable results of one benchmark.

    Benchmarks call this from inside their pytest tests for the quantities the
    timing fixtures do not capture (speedup ratios, table rows, workload
    parameters); everything recorded under ``name`` ends up in that
    benchmark's ``BENCH_<name>.json``.
    """
    _RECORDED_RESULTS.setdefault(name, {}).update(metrics)


def recorded_bench_results() -> dict:
    """The results recorded so far (consumed by the conftest session hook)."""
    return _RECORDED_RESULTS


def emit_bench_json(name: str, payload: dict) -> Path:
    """Write one benchmark's machine-readable results file.

    The file is ``BENCH_<name>.json`` in :func:`bench_output_dir`, with a
    small envelope (benchmark name, unix timestamp, strict flag) around the
    payload so :mod:`compare` can diff two runs of the same benchmark.
    Returns the written path.
    """
    path = bench_output_dir() / ("BENCH_%s.json" % name)
    document = {
        "benchmark": name,
        "created_unix": time.time(),
        "strict": bench_strict(),
        "results": payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True, default=str)
                    + "\n")
    print("wrote %s" % path)
    return path


def print_table(title: str, headers: list, rows: list) -> None:
    """Print an aligned results table (shows up with ``pytest -s`` and in logs)."""
    widths = [max(len(str(headers[i])), max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(headers))]
    line = "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    print("\n== %s" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    print()
