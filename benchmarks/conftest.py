"""Benchmark-harness configuration.

Makes the sibling ``common`` module importable when pytest is invoked from the
repository root (``pytest benchmarks/ --benchmark-only``) and trims the
benchmark rounds so the whole harness completes in minutes on a laptop.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["harness"] = "repro FTC labeling benchmark suite"
