"""Benchmark-harness configuration.

Makes the sibling ``common`` module importable when pytest is invoked from the
repository root (``pytest benchmarks/ --benchmark-only``) and trims the
benchmark rounds so the whole harness completes in minutes on a laptop.

Every benchmark module additionally emits a machine-readable
``BENCH_<name>.json`` at session end (ROADMAP item 5c): the session hook below
collects the pytest-benchmark timing stats per module and folds in whatever
the benchmark code recorded via :func:`common.record_bench_result` (speedup
ratios, table rows, workload parameters).  ``REPRO_BENCH_DIR`` selects the
output directory; ``compare.py`` diffs two such files and flags regressions.
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import common  # noqa: E402  (needs the path entry above)


def pytest_benchmark_update_machine_info(config, machine_info):
    machine_info["harness"] = "repro FTC labeling benchmark suite"


def _module_bench_name(fullname: str) -> str:
    """``benchmarks/bench_batch_queries.py::test_x`` -> ``batch_queries``."""
    stem = Path(fullname.split("::", 1)[0]).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def pytest_sessionfinish(session, exitstatus):
    """Emit one ``BENCH_<name>.json`` per benchmark module that ran."""
    grouped: dict = {}
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is not None:
        for bench in getattr(bench_session, "benchmarks", []):
            name = _module_bench_name(bench.fullname)
            try:
                entry = bench.as_dict(include_data=False, stats=not bench.has_error)
            except Exception:  # stats may be absent when the run was disabled
                entry = {"name": bench.name, "group": bench.group}
            grouped.setdefault(name, {}).setdefault("timings", []).append(entry)
    for name, metrics in common.recorded_bench_results().items():
        grouped.setdefault(name, {}).setdefault("recorded", {}).update(metrics)
    for name, payload in sorted(grouped.items()):
        path = common.bench_output_dir() / ("BENCH_%s.json" % name)
        document = {
            "benchmark": name,
            "created_unix": time.time(),
            "strict": common.bench_strict(),
            "results": payload,
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True,
                                   default=str) + "\n")
