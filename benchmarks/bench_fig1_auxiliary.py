"""Experiment FIG1: the auxiliary-graph transformation of Figure 1 / Section 3.2.

Figure 1 illustrates how every non-tree edge is subdivided so that all faults
become tree-edge faults.  The measurable claims: |V'| = n + (m - n + 1),
|E'| = m + (m - n + 1) (both O(m)), sigma maps every original edge to a tree
edge of T', and connectivity under faults is preserved.  The benchmark times
the transformation and verifies the size accounting across graph families.
"""

import pytest

from common import cached_graph, print_table
from repro.core.transform import build_transformed_instance
from repro.graphs import AuxiliaryGraph, bfs_spanning_tree

SEED = 2


@pytest.mark.benchmark(group="fig1-auxiliary")
@pytest.mark.parametrize("family,n", [("erdos-renyi", 256), ("barabasi-albert", 256),
                                      ("grid", 225)])
def test_auxiliary_graph_construction(benchmark, family, n):
    graph = cached_graph(family, n, SEED)
    tree = bfs_spanning_tree(graph, min(graph.vertices()))

    aux = benchmark(lambda: AuxiliaryGraph(graph, tree))
    stats = aux.statistics()
    extra = graph.num_edges() - (graph.num_vertices() - 1)
    assert stats["n_prime"] == graph.num_vertices() + extra
    assert stats["m_prime"] == graph.num_edges() + extra
    assert stats["non_tree_edges_prime"] == extra
    benchmark.extra_info.update(stats)


@pytest.mark.benchmark(group="fig1-auxiliary")
def test_auxiliary_graph_size_table(benchmark):
    rows = []
    for family, n in [("erdos-renyi", 128), ("erdos-renyi", 256), ("barabasi-albert", 256),
                      ("grid", 225), ("tree-chords", 256)]:
        graph = cached_graph(family, n, SEED)
        instance = build_transformed_instance(graph)
        stats = instance.auxiliary.statistics()
        rows.append([family, stats["n"], stats["m"], stats["n_prime"], stats["m_prime"]])
    print_table("Figure 1 / auxiliary graph sizes (|V'| = n + (m-n+1), |E'| = m + (m-n+1))",
                ["family", "n", "m", "n'", "m'"], rows)
    benchmark.extra_info["rows"] = rows
    graph = cached_graph("erdos-renyi", 128, SEED)
    benchmark(lambda: build_transformed_instance(graph))
    for row in rows:
        assert row[3] == row[1] + (row[2] - row[1] + 1)
        assert row[4] == row[2] + (row[2] - row[1] + 1)
