"""Experiment SNAPSHOT: rehydrating an oracle versus rebuilding it.

A whole-labeling snapshot (:mod:`repro.core.snapshot`) is the scheme's
shippable artifact: config + decode-side parameters + every label.  This
benchmark measures, across the workload graphs,

* construction time of the live labeling (what a cold server would pay),
* snapshot size in bytes and serialization time,
* rehydration time of ``load_snapshot`` (what a snapshot-loading server pays),

and asserts — hard — that the rehydrated oracle answers a shared-fault-set
query batch bit-identically to the live labeling.  The reproduced claim is
that rehydration is at least ``5x`` faster than reconstruction on the medium
workload; like the batched-query threshold, the wall-clock ratio is advisory
by default and enforced when ``REPRO_BENCH_STRICT=1`` (correctness assertions
are always hard).

Runable two ways: under pytest (``pytest benchmarks/bench_snapshot.py``) or
directly as a CI smoke test::

    PYTHONPATH=src python benchmarks/bench_snapshot.py --n 32
"""

from __future__ import annotations

import argparse
import random
import sys
import time

try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if __package__ is None or __package__ == "":
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (bench_strict, cached_graph, check_speedup, emit_bench_json,
                    print_table)
from repro.api import Oracle
from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.workloads import FaultModel
from repro.workloads.faults import sample_fault_sets

#: The medium workload the ``>= 5x`` claim is measured on.
FAMILY = "erdos-renyi"
N = 160
SEED = 23
MAX_FAULTS = 4
NUM_PAIRS = 200
MIN_REHYDRATE_SPEEDUP = 5.0

#: The workload graphs the byte/time table sweeps.
WORKLOADS = [
    ("erdos-renyi", 160),
    ("grid", 144),
    ("tree-chords", 160),
]


def run_snapshot_cycle(family, n, seed, max_faults, num_pairs,
                       variant="det-nearlinear"):
    """Build, serialize, rehydrate, and cross-check one workload graph.

    Returns a dict of timings/sizes; raises if the rehydrated oracle disagrees
    with the live labeling anywhere on the shared-fault-set batch.
    """
    graph = cached_graph(family, n, seed)
    config = FTCConfig(max_faults=max_faults, variant=SchemeVariant(variant))

    start = time.perf_counter()
    labeling = FTCLabeling(graph, config)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    data = labeling.to_snapshot_bytes()
    serialize_seconds = time.perf_counter() - start

    start = time.perf_counter()
    oracle = Oracle.load(data)
    rehydrate_seconds = time.perf_counter() - start

    faults = sample_fault_sets(graph, 1, max_faults,
                               model=FaultModel.TREE_BIASED, seed=seed)[0]
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    pairs = [tuple(rng.sample(vertices, 2)) for _ in range(num_pairs)]
    live_answers = labeling.connected_many(pairs, list(faults))
    rehydrated_answers = oracle.connected_many(pairs, list(faults))
    assert rehydrated_answers == live_answers, \
        "rehydrated oracle disagrees with the live labeling on %s(n=%d)" % (family, n)
    assert not hasattr(oracle, "graph"), "a rehydrated oracle must not hold a graph"

    return {
        "family": family,
        "n": n,
        "build_seconds": build_seconds,
        "serialize_seconds": serialize_seconds,
        "rehydrate_seconds": rehydrate_seconds,
        "snapshot_bytes": len(data),
        "speedup": build_seconds / max(rehydrate_seconds, 1e-12),
    }


def _table_rows(results):
    return [[r["family"], r["n"], "%.3f" % r["build_seconds"],
             "%.3f" % r["serialize_seconds"], "%.4f" % r["rehydrate_seconds"],
             r["snapshot_bytes"], "%.1fx" % r["speedup"]] for r in results]


_HEADERS = ["family", "n", "build s", "serialize s", "rehydrate s",
            "bytes", "speedup"]


# --------------------------------------------------------------------- pytest

if pytest is not None:

    def test_rehydrated_oracle_matches_live_on_workloads():
        results = [run_snapshot_cycle(family, n, SEED, MAX_FAULTS, NUM_PAIRS)
                   for family, n in WORKLOADS]
        print_table("Snapshot rehydrate vs rebuild (%d pairs per graph)" % NUM_PAIRS,
                    _HEADERS, _table_rows(results))
        # The medium workload carries the >= 5x claim.
        medium = results[0]
        check_speedup("snapshot rehydration vs reconstruction",
                      medium["speedup"], MIN_REHYDRATE_SPEEDUP)

    def test_snapshot_smaller_than_naive_json_export():
        """The binary snapshot should beat a hex-JSON export of the same labels."""
        import json
        graph = cached_graph(FAMILY, 64, SEED)
        labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
        data = labeling.to_snapshot_bytes()
        naive = json.dumps({
            "vertices": {str(v): labeling.vertex_label(v).to_bytes().hex()
                         for v in graph.vertices()},
            "edges": [[str(u), str(v), labeling.edge_label(u, v).to_bytes().hex()]
                      for u, v in graph.edges()],
        })
        assert len(data) < len(naive.encode())


# --------------------------------------------------------------------- script

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure snapshot rehydration against full reconstruction")
    parser.add_argument("--n", type=int, default=N, help="graph size")
    parser.add_argument("--pairs", type=int, default=NUM_PAIRS,
                        help="number of cross-checked (s, t) pairs")
    parser.add_argument("--max-faults", type=int, default=MAX_FAULTS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--variant", default="det-nearlinear")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless rehydration beats reconstruction by this "
                             "factor; defaults to %.1f when REPRO_BENCH_STRICT=1 "
                             "and to report-only otherwise" % MIN_REHYDRATE_SPEEDUP)
    args = parser.parse_args(argv)
    minimum = args.min_speedup
    if minimum is None:
        minimum = MIN_REHYDRATE_SPEEDUP if bench_strict() else 0.0

    result = run_snapshot_cycle(FAMILY, args.n, args.seed, args.max_faults,
                                args.pairs, variant=args.variant)
    print_table("Snapshot rehydrate vs rebuild (%d pairs)" % args.pairs,
                _HEADERS, _table_rows([result]))
    print("rehydrated answers bit-identical to the live labeling "
          "(%d pairs checked)" % args.pairs)
    emit_bench_json("snapshot", {key: result[key] for key in (
        "family", "n", "build_seconds", "serialize_seconds",
        "rehydrate_seconds", "snapshot_bytes", "speedup")})
    if minimum and result["speedup"] < minimum:
        print("FAIL: rehydration speedup %.1fx below required %.1fx"
              % (result["speedup"], minimum), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
