"""Experiment THM3: distributed construction rounds in the CONGEST model (Theorem 3).

Theorem 3 bounds the distributed construction by Õ(√m·D + f²) rounds.  The
benchmark runs the simulated construction for growing graphs, reports the
per-phase measured rounds (BFS, ancestry, pipelined outdetect aggregation) and
the analytically-charged hierarchy budget, and checks that the measured
communication stays under the theorem's bound.
"""

import pytest

from common import cached_graph, print_table
from repro.congest import DistributedLabelConstruction

SEED = 31
MAX_FAULTS = 2
SIZES = [32, 64, 96]


@pytest.mark.benchmark(group="thm3-congest")
@pytest.mark.parametrize("n", SIZES)
def test_distributed_construction_rounds(benchmark, n):
    graph = cached_graph("erdos-renyi", n, SEED, density=2.0)
    construction = benchmark.pedantic(
        lambda: DistributedLabelConstruction(graph, max_faults=MAX_FAULTS),
        rounds=1, iterations=1)
    report = construction.report()
    benchmark.extra_info.update({"n": n, **report["rounds"]})
    measured = (report["rounds"]["bfs"] + report["rounds"]["ancestry_subtree_sizes"]
                + report["rounds"]["outdetect_aggregation"])
    assert measured <= report["theoretical_bound"]


@pytest.mark.benchmark(group="thm3-congest")
def test_congest_round_table(benchmark):
    rows = []
    for n in SIZES:
        graph = cached_graph("erdos-renyi", n, SEED, density=2.0)
        construction = DistributedLabelConstruction(graph, max_faults=MAX_FAULTS)
        report = construction.report()
        rows.append([n, graph.num_edges(), report["rounds"]["bfs"],
                     report["rounds"]["ancestry_subtree_sizes"],
                     report["rounds"]["outdetect_aggregation"],
                     report["rounds"]["hierarchy_budget"],
                     report["total_rounds"], "%.0f" % report["theoretical_bound"]])
    print_table("Theorem 3 / CONGEST construction rounds (f=%d)" % MAX_FAULTS,
                ["n", "m", "BFS", "ancestry", "aggregation", "hierarchy budget",
                 "total", "Õ(√m·D + f²) bound"], rows)
    benchmark.extra_info["rows"] = rows
    graph = cached_graph("erdos-renyi", 32, SEED, density=2.0)
    benchmark(lambda: DistributedLabelConstruction(graph, max_faults=MAX_FAULTS))
    assert all(row[6] <= float(row[7]) * 2 for row in rows)
