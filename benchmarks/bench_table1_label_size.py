"""Experiment T1-label: the "label size" column of Table 1.

For every scheme of Table 1 we measure the maximum per-edge and per-vertex
label size (in bits) on the same graphs and fault budgets.  The paper's claim
to reproduce is the *ordering and shape*:

    DP21 whp  ~ O(log^3 n)   <   ours randomized ~ O(f log^3 n)
              <   DP21 full ~ O(f log^3 n)   <   ours deterministic ~ O(f^2 log^3 n)

(vertex labels are O(log n) for every scheme).
"""

import pytest

from common import TABLE1_VARIANTS, cached_graph, cached_labeling, print_table
from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling

FAMILY = "erdos-renyi"
N = 128
SEED = 7
MAX_FAULTS = 2


def _collect_rows():
    rows = []
    for name, kwargs in TABLE1_VARIANTS.items():
        # The deterministic rows use the paper's proven threshold constants;
        # the randomized rows use the Proposition-5 thresholds, as in [DP21].
        rule = "paper" if kwargs["variant"].is_deterministic else "practical"
        labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, kwargs["variant"].value,
                                   rule_value=rule)
        stats = labeling.label_size_stats()
        rows.append([name,
                     stats["max_vertex_label_bits"],
                     stats["max_edge_label_bits"],
                     round(stats["mean_edge_label_bits"]),
                     "det" if kwargs["variant"].is_deterministic else "rand"])
    return rows


@pytest.mark.benchmark(group="table1-label-size")
def test_label_sizes_all_schemes(benchmark):
    """Build the deterministic near-linear scheme (the timed part) and report all sizes."""
    graph = cached_graph(FAMILY, N, SEED)

    def build():
        return FTCLabeling(graph, FTCConfig(max_faults=MAX_FAULTS,
                                            variant=SchemeVariant.DETERMINISTIC_NEARLINEAR))

    labeling = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = _collect_rows()
    print_table("Table 1 / label size (n=%d, m=%d, f=%d)"
                % (graph.num_vertices(), graph.num_edges(), MAX_FAULTS),
                ["scheme", "vertex bits", "max edge bits", "mean edge bits", "kind"],
                rows)
    benchmark.extra_info["rows"] = rows
    assert labeling.label_size_stats()["max_edge_label_bits"] > 0
    # Shape check: every scheme keeps vertex labels tiny (O(log n)).
    assert all(row[1] <= 4 * (2 * graph.num_vertices()).bit_length() for row in rows)


@pytest.mark.benchmark(group="table1-label-size")
@pytest.mark.parametrize("f", [1, 2, 4])
def test_label_size_grows_with_f(benchmark, f):
    """The f-dependence of the label size (measured on the randomized-full scheme)."""
    graph = cached_graph(FAMILY, N, SEED)

    def build():
        return FTCLabeling(graph, FTCConfig(max_faults=f,
                                            variant=SchemeVariant.RANDOMIZED_FULL))

    labeling = benchmark.pedantic(build, rounds=1, iterations=1)
    stats = labeling.label_size_stats()
    benchmark.extra_info["max_edge_label_bits"] = stats["max_edge_label_bits"]
    print("f=%d -> max edge label %d bits" % (f, stats["max_edge_label_bits"]))
    assert stats["max_edge_label_bits"] > 0
