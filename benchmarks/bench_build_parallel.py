"""Experiment BUILD-PARALLEL: sharded label construction across executors.

The per-level outdetect builds of the scheme are independent by construction
(and within a level the per-edge contributions are XOR terms), so the build
plan of :mod:`repro.build` can fan them out to threads or processes.  This
benchmark builds the same labeling with the serial, thread, and process
executors and

* **hard-asserts bit-identity**: all executors must produce byte-identical
  ``to_snapshot_bytes()`` artifacts — this assertion is never advisory;
* measures wall-clock build time per executor and reports the speedup plus
  the per-stage breakdown of the :class:`~repro.build.plan.BuildReport`.

The reproduced claim is that the process executor builds the medium workload
at least ``1.5x`` faster than serial on parallel hardware; like every
wall-clock threshold in this harness it is advisory by default and enforced
when ``REPRO_BENCH_STRICT=1``.  On a single-CPU machine the claim is
unsatisfiable by construction (there is nothing to run shards on), so the
threshold is reported but not enforced there even in strict mode.

Runable two ways: under pytest (``pytest benchmarks/bench_build_parallel.py``)
or directly as a CI smoke test::

    PYTHONPATH=src python benchmarks/bench_build_parallel.py --n 48
"""

from __future__ import annotations

import argparse
import os
import sys
import time

try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if __package__ is None or __package__ == "":
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (bench_strict, cached_graph, check_speedup, emit_bench_json,
                    print_table)
from repro.build import resolve_executor
from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling  # repro: allow[RPL001] byte-identity harness measures the layer below the facade

#: The medium workload the ``>= 1.5x`` claim is measured on.
FAMILY = "erdos-renyi"
N = 320
SEED = 23
MAX_FAULTS = 6
MIN_PROCESS_SPEEDUP = 1.5


def parallel_jobs() -> int:
    """Worker count for the parallel executors: the CPUs, capped at 4."""
    return max(2, min(os.cpu_count() or 1, 4))


def executor_specs() -> list:
    jobs = parallel_jobs()
    return ["serial", "thread:%d" % jobs, "process:%d" % jobs]


def run_build_matrix(family, n, seed, max_faults, variant="det-nearlinear"):
    """Build one workload with every executor; assert snapshots byte-identical.

    Pools are warmed with a no-op map before timing — the scenario under
    measurement is a long-lived process building many labelings, not worker
    startup.  Returns ``{spec: {"seconds", "report", "snapshot_bytes"}}``.
    """
    graph = cached_graph(family, n, seed)
    config = FTCConfig(max_faults=max_faults, variant=SchemeVariant(variant))
    results = {}
    for spec in executor_specs():
        executor = resolve_executor(spec)
        executor.map(len, [[1], [2]])  # warm the pool
        start = time.perf_counter()
        labeling = FTCLabeling(graph, config, executor=executor)  # repro: allow[RPL001] executor seam is an FTCLabeling parameter, not a facade one
        seconds = time.perf_counter() - start
        results[spec] = {
            "seconds": seconds,
            "report": labeling.build_report,
            "snapshot": labeling.to_snapshot_bytes(),
        }
    reference = results["serial"]["snapshot"]
    for spec, result in results.items():
        # The hard acceptance criterion: executors are a pure speed knob.
        assert result["snapshot"] == reference, \
            "executor %s produced a different labeling on %s(n=%d)" % (spec, family, n)
    return results


def _table_rows(results):
    serial_seconds = results["serial"]["seconds"]
    rows = []
    for spec, result in results.items():
        report = result["report"]
        rows.append([spec, report.jobs, report.shard_count,
                     "%.3f" % result["seconds"],
                     "%.3f" % report.stage_seconds["outdetect"],
                     "%.2fx" % (serial_seconds / max(result["seconds"], 1e-12))])
    return rows


_HEADERS = ["executor", "jobs", "shards", "build s", "outdetect s", "speedup"]


def _check_process_speedup(results, minimum):
    speedup = results["serial"]["seconds"] / max(results["process:%d"
                                                 % parallel_jobs()]["seconds"], 1e-12)
    if (os.cpu_count() or 1) < 2:
        print("NOTE: single-CPU machine; the %.1fx process-build threshold "
              "cannot hold here (speedup measured: %.2fx) and is not enforced."
              % (minimum, speedup))
        return
    check_speedup("process-executor build vs serial", speedup, minimum)


# --------------------------------------------------------------------- pytest

if pytest is not None:

    def test_executors_build_byte_identical_labelings():
        results = run_build_matrix(FAMILY, N, SEED, MAX_FAULTS)
        print_table("Sharded build: %s(n=%d), f=%d" % (FAMILY, N, MAX_FAULTS),
                    _HEADERS, _table_rows(results))
        _check_process_speedup(results, MIN_PROCESS_SPEEDUP)

    def test_sketch_variant_builds_byte_identical_labelings():
        results = run_build_matrix(FAMILY, 96, SEED, 2, variant="sketch-whp")
        assert len({result["snapshot"] for result in results.values()}) == 1


# --------------------------------------------------------------------- script

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure sharded parallel label construction per executor")
    parser.add_argument("--n", type=int, default=N, help="graph size")
    parser.add_argument("--max-faults", type=int, default=MAX_FAULTS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--variant", default="det-nearlinear")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the process build beats serial by this "
                             "factor; defaults to %.1f when REPRO_BENCH_STRICT=1 "
                             "and to report-only otherwise" % MIN_PROCESS_SPEEDUP)
    args = parser.parse_args(argv)
    minimum = args.min_speedup
    if minimum is None:
        minimum = MIN_PROCESS_SPEEDUP if bench_strict() else 0.0

    results = run_build_matrix(FAMILY, args.n, args.seed, args.max_faults,
                               variant=args.variant)
    print_table("Sharded build: %s(n=%d), f=%d" % (FAMILY, args.n, args.max_faults),
                _HEADERS, _table_rows(results))
    print("all executors produced byte-identical snapshots "
          "(%d bytes)" % len(results["serial"]["snapshot"]))
    serial_seconds = results["serial"]["seconds"]
    emit_bench_json("build_parallel", {
        "n": args.n,
        "max_faults": args.max_faults,
        "variant": args.variant,
        "snapshot_bytes": len(results["serial"]["snapshot"]),
        "executors": {
            spec: {
                "build_seconds": result["seconds"],
                "jobs": result["report"].jobs,
                "shards": result["report"].shard_count,
                "speedup_vs_serial": serial_seconds / max(result["seconds"], 1e-12),
            } for spec, result in results.items()
        },
    })
    if minimum:
        try:
            _check_process_speedup(results, minimum)
        except AssertionError as error:
            print("FAIL: %s" % error, file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
