"""Experiment T1-query: the "query time" column of Table 1.

Query processing time as a function of the actual fault count |F|, for the
deterministic scheme (Õ(|F|^4) shape), the randomized full-support scheme
(Õ(|F|^2)), and the whp sketch (Õ(|F|)).  The important reproduced facts are
that the time is independent of n and polynomial in |F|, and that the ranking
between schemes matches the table.
"""

import pytest

from common import cached_graph, cached_labeling, print_table
from repro.workloads import FaultModel, make_query_workload

FAMILY = "erdos-renyi"
N = 96
SEED = 3
MAX_FAULTS = 6

SCHEMES = {
    "deterministic": "det-nearlinear",
    "randomized-full": "rand-full",
    "sketch-whp": "sketch-whp",
}


def _queries_with_faults(graph, fault_count, num_queries=12):
    workload = make_query_workload(graph, num_queries=num_queries, max_faults=fault_count,
                                   model=FaultModel.TREE_BIASED, seed=SEED + fault_count)
    return workload.queries


@pytest.mark.benchmark(group="table1-query-time")
@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("fault_count", [1, 2, 4, 6])
def test_query_time_vs_faults(benchmark, scheme_name, fault_count):
    graph = cached_graph(FAMILY, N, SEED)
    labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, SCHEMES[scheme_name])
    queries = _queries_with_faults(graph, fault_count)

    def run_queries():
        answers = []
        for s, t, faults in queries:
            try:
                answers.append(labeling.connected(s, t, faults))
            except Exception:
                answers.append(None)
        return answers

    answers = benchmark(run_queries)
    benchmark.extra_info["fault_count"] = fault_count
    benchmark.extra_info["scheme"] = scheme_name
    assert len(answers) == len(queries)
    if SCHEMES[scheme_name] != "sketch-whp":
        # Deterministic and randomized-full schemes must agree with ground truth.
        for (s, t, faults), answer in zip(queries, answers):
            assert answer == graph.connected(s, t, removed=faults)


@pytest.mark.benchmark(group="table1-query-time")
def test_query_time_summary(benchmark):
    """One consolidated table: mean per-query milliseconds per scheme and |F|."""
    import time

    graph = cached_graph(FAMILY, N, SEED)
    rows = []
    for scheme_name, variant in sorted(SCHEMES.items()):
        labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, variant)
        row = [scheme_name]
        for fault_count in (1, 2, 4, 6):
            queries = _queries_with_faults(graph, fault_count, num_queries=10)
            start = time.perf_counter()
            for s, t, faults in queries:
                try:
                    labeling.connected(s, t, faults)
                except Exception:
                    pass
            elapsed = (time.perf_counter() - start) / len(queries)
            row.append("%.2f" % (1000 * elapsed))
        rows.append(row)
    print_table("Table 1 / query time (ms per query, n=%d)" % N,
                ["scheme", "|F|=1", "|F|=2", "|F|=4", "|F|=6"], rows)
    benchmark.extra_info["rows"] = rows
    benchmark(lambda: None)
    assert rows
