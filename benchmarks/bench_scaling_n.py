"""Experiment THM2-n: label size as a function of n at fixed f (Theorem 2).

Theorem 2 promises per-edge labels of O(f^2 log^3 n) bits: polylogarithmic in
n.  The benchmark builds the deterministic scheme on graphs of increasing size
at constant average degree and reports the maximum per-edge label size; the
shape to reproduce is sub-linear growth (each doubling of n adds a polylog
factor, not a constant factor).
"""

import math

import pytest

from common import cached_labeling, print_table

FAMILY = "erdos-renyi"
SEED = 9
MAX_FAULTS = 2
SIZES = [64, 128, 256, 512]


@pytest.mark.benchmark(group="thm2-scaling-n")
@pytest.mark.parametrize("n", SIZES)
def test_label_size_vs_n(benchmark, n):
    labeling = benchmark.pedantic(
        lambda: cached_labeling(FAMILY, n, SEED, MAX_FAULTS, "det-nearlinear"),
        rounds=1, iterations=1)
    stats = labeling.label_size_stats()
    benchmark.extra_info["n"] = n
    benchmark.extra_info["max_edge_label_bits"] = stats["max_edge_label_bits"]
    assert stats["max_edge_label_bits"] > 0


@pytest.mark.benchmark(group="thm2-scaling-n")
def test_label_size_growth_is_subquadratic_in_n(benchmark):
    rows = []
    bits = {}
    for n in SIZES:
        labeling = cached_labeling(FAMILY, n, SEED, MAX_FAULTS, "det-nearlinear")
        stats = labeling.label_size_stats()
        bits[n] = stats["max_edge_label_bits"]
        polylog = MAX_FAULTS ** 2 * math.log2(n) ** 3
        rows.append([n, stats["m"], stats["max_edge_label_bits"],
                     "%.1f" % (stats["max_edge_label_bits"] / polylog),
                     stats["hierarchy"]["depth"]])
    print_table("Theorem 2 / label size vs n (f=%d)" % MAX_FAULTS,
                ["n", "m", "max edge bits", "bits / f^2 log^3 n", "hierarchy depth"],
                rows)
    benchmark.extra_info["rows"] = rows
    benchmark(lambda: None)
    # Shape check: quadrupling n (64 -> 256) must grow labels by far less than 4x
    # of the edge-count growth; i.e. the per-edge label is polylog, not linear.
    growth = bits[SIZES[-1]] / max(bits[SIZES[0]], 1)
    n_growth = SIZES[-1] / SIZES[0]
    assert growth < n_growth, "label size grew linearly with n (%.2fx for %dx)" % (growth, n_growth)
