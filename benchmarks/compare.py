"""Diff two ``BENCH_<name>.json`` result files and flag regressions.

The benchmark harness (the conftest session hook and the scripts' ``main()``
entry points) writes machine-readable results; this tool compares two runs of
the same benchmark::

    python benchmarks/compare.py BENCH_batch_queries.old.json \\
        BENCH_batch_queries.json --threshold 1.25

Every numeric quantity present in both files is matched by its path
(pytest-benchmark timing entries are keyed by test ``fullname``, so reordered
runs still line up).  A metric *regresses* when

* it is lower-is-better (timing stats such as ``mean``/``median``/``min``,
  and recorded values ending in ``_seconds``, ``_ms``, or ``_ratio`` — which
  covers the server's ``p50_ms``/``p95_ms``/``p99_ms`` latency quantiles)
  and the new value exceeds the old by more than the threshold factor, or
* it is higher-is-better (``ops``, recorded values containing ``speedup``,
  and throughput values ending in ``_qps`` — which covers the server
  benchmark's worker-sweep ``aggregate_qps``) and the new value falls below
  the old by more than the threshold factor.

Exit status 1 when any metric regressed, 0 otherwise (``--report-only``
disables the failure exit for advisory use).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Leaf names of pytest-benchmark stats where smaller is better.
LOWER_IS_BETTER_STATS = {"mean", "median", "min", "max"}

#: Leaf names where larger is better.
HIGHER_IS_BETTER_STATS = {"ops"}

#: Stats leaves that are descriptive, not comparable quality metrics.
IGNORED_STATS = {"stddev", "iqr", "outliers", "ld15iqr", "hd15iqr", "rounds",
                 "iterations", "total", "q1", "q3", "iqr_outliers",
                 "stddev_outliers", "created_unix"}


def _direction(leaf: str) -> str | None:
    """``"lower"``, ``"higher"``, or ``None`` when the metric is not compared."""
    if leaf in IGNORED_STATS:
        return None
    if leaf in LOWER_IS_BETTER_STATS or leaf.endswith(("_seconds", "_ms",
                                                       "_ratio")):
        return "lower"
    if leaf in HIGHER_IS_BETTER_STATS or "speedup" in leaf or \
            leaf.endswith("_qps"):
        return "higher"
    return None


def _flatten(node, prefix: str, out: dict) -> None:
    """Collect numeric leaves as ``{dotted.path: value}``.

    Lists of pytest-benchmark entries are keyed by each entry's ``fullname``
    so two runs align even if test order changed; other lists use indices.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            _flatten(value, "%s.%s" % (prefix, key) if prefix else str(key), out)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            key = value.get("fullname", str(index)) if isinstance(value, dict) \
                else str(index)
            _flatten(value, "%s.%s" % (prefix, key) if prefix else key, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)


def load_results(path: Path) -> dict:
    document = json.loads(path.read_text())
    flat: dict = {}
    _flatten(document.get("results", document), "", flat)
    return flat


def compare(old: dict, new: dict, threshold: float) -> tuple[list, list]:
    """Return ``(rows, regressions)`` over the metrics present in both runs."""
    rows = []
    regressions = []
    for path in sorted(old.keys() & new.keys()):
        leaf = path.rsplit(".", 1)[-1]
        direction = _direction(leaf)
        if direction is None:
            continue
        old_value, new_value = old[path], new[path]
        if old_value <= 0 or new_value <= 0:
            continue
        ratio = new_value / old_value
        regressed = (ratio > threshold) if direction == "lower" \
            else (ratio < 1.0 / threshold)
        rows.append((path, old_value, new_value, ratio, regressed))
        if regressed:
            regressions.append(path)
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_<name>.json files and flag regressions")
    parser.add_argument("old", type=Path, help="baseline results file")
    parser.add_argument("new", type=Path, help="candidate results file")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="allowed slowdown factor before a metric counts "
                             "as regressed (default 1.25)")
    parser.add_argument("--report-only", action="store_true",
                        help="always exit 0 (advisory mode)")
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error("--threshold must be greater than 1.0")

    old = load_results(args.old)
    new = load_results(args.new)
    rows, regressions = compare(old, new, args.threshold)
    if not rows:
        print("no comparable metrics shared by %s and %s" % (args.old, args.new))
        return 0
    width = max(len(row[0]) for row in rows)
    for path, old_value, new_value, ratio, regressed in rows:
        flag = "  <-- REGRESSION" if regressed else ""
        print("%s  %12.6g  %12.6g  %6.2fx%s"
              % (path.ljust(width), old_value, new_value, ratio, flag))
    print("%d metrics compared, %d regressed (threshold %.2fx)"
          % (len(rows), len(regressions), args.threshold))
    if regressions and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
