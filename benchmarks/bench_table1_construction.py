"""Experiment T1-constr: the "construction" column of Table 1.

Construction time as a function of m (near-linear Õ(m f^2) shape for the
deterministic near-linear scheme) and as a function of f at fixed m.  The
benchmark also reports the sketch baseline, whose construction is the cheapest
(Õ(f m)) — the ordering to reproduce.
"""

import pytest

from common import cached_graph, print_table
from repro.core.config import FTCConfig, SchemeVariant
from repro.core.ftc import FTCLabeling
from repro.hierarchy.config import ThresholdRule

FAMILY = "erdos-renyi"
SEED = 5


def _build(graph, f, variant):
    config = FTCConfig(max_faults=f, variant=variant, threshold_rule=ThresholdRule.PRACTICAL)
    return FTCLabeling(graph, config)


@pytest.mark.benchmark(group="table1-construction")
@pytest.mark.parametrize("n", [64, 128, 256])
def test_construction_scales_with_m(benchmark, n):
    graph = cached_graph(FAMILY, n, SEED)
    labeling = benchmark.pedantic(
        lambda: _build(graph, 2, SchemeVariant.DETERMINISTIC_NEARLINEAR),
        rounds=1, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["m"] = graph.num_edges()
    assert labeling.label_size_stats()["max_edge_label_bits"] > 0


@pytest.mark.benchmark(group="table1-construction")
@pytest.mark.parametrize("f", [1, 2, 4])
def test_construction_scales_with_f(benchmark, f):
    graph = cached_graph(FAMILY, 128, SEED)
    labeling = benchmark.pedantic(
        lambda: _build(graph, f, SchemeVariant.DETERMINISTIC_NEARLINEAR),
        rounds=1, iterations=1)
    benchmark.extra_info["f"] = f
    assert labeling.config.max_faults == f


@pytest.mark.benchmark(group="table1-construction")
def test_construction_sketch_vs_deterministic(benchmark):
    """Sketch construction is the cheapest; deterministic pays the f^2 polylog factor."""
    import time

    graph = cached_graph(FAMILY, 128, SEED)
    rows = []
    for name, variant in [("sketch-whp", SchemeVariant.SKETCH_WHP),
                          ("randomized-full", SchemeVariant.RANDOMIZED_FULL),
                          ("deterministic", SchemeVariant.DETERMINISTIC_NEARLINEAR)]:
        start = time.perf_counter()
        _build(graph, 2, variant)
        rows.append([name, "%.3f" % (time.perf_counter() - start)])
    print_table("Table 1 / construction time (seconds, n=128, f=2)",
                ["scheme", "seconds"], rows)
    benchmark.extra_info["rows"] = rows
    benchmark(lambda: None)
    assert float(rows[0][1]) <= float(rows[-1][1]) * 10  # sketch is not slower by much
