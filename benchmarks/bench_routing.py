"""Experiment COR2: fault-tolerant compact routing (Corollary 2).

Corollary 2 derives deterministic forbidden-set compact routing with stretch
O(|F|^2 k) and Õ(f^2 n^{1+1/k}) total table size.  The benchmark routes packet
batches under tree-biased link failures, confirms every delivered path avoids
the failed links, and reports the observed stretch and table sizes — the
reproduced shape is bounded stretch and tables that are small compared to
storing full shortest-path tables (n log n bits per vertex).
"""

import math

import pytest

from common import cached_graph, print_table
from repro.applications import ForbiddenSetRoutingScheme
from repro.workloads import FaultModel, make_query_workload

SEED = 29
MAX_FAULTS = 2


@pytest.mark.benchmark(group="cor2-routing")
@pytest.mark.parametrize("family,n", [("erdos-renyi", 80), ("barabasi-albert", 80)])
def test_routing_scheme_build(benchmark, family, n):
    graph = cached_graph(family, n, SEED)
    scheme = benchmark.pedantic(
        lambda: ForbiddenSetRoutingScheme(graph, max_faults=MAX_FAULTS),
        rounds=1, iterations=1)
    tables = scheme.table_size_stats()
    benchmark.extra_info.update(tables)
    assert tables["max_table_bits"] > 0


@pytest.mark.benchmark(group="cor2-routing")
def test_routing_stretch_and_tables(benchmark):
    rows = []
    for family, n in [("erdos-renyi", 80), ("tree-chords", 80)]:
        graph = cached_graph(family, n, SEED, density=1.6)
        scheme = ForbiddenSetRoutingScheme(graph, max_faults=MAX_FAULTS)
        workload = make_query_workload(graph, num_queries=30, max_faults=MAX_FAULTS,
                                       model=FaultModel.TREE_BIASED, seed=SEED)
        report = scheme.stretch_report(workload.queries)
        tables = scheme.table_size_stats()
        naive_table_bits = graph.num_vertices() * int(math.log2(graph.num_vertices()) + 1)
        rows.append([family, graph.num_vertices(), report["delivered"],
                     report["undelivered"], "%.2f" % report["mean_stretch"],
                     "%.2f" % report["max_stretch"], tables["max_table_bits"],
                     naive_table_bits])
    print_table("Corollary 2 / compact routing (f=%d)" % MAX_FAULTS,
                ["family", "n", "delivered", "undelivered", "mean stretch", "max stretch",
                 "max table bits", "naive shortest-path table bits"], rows)
    benchmark.extra_info["rows"] = rows

    graph = cached_graph("erdos-renyi", 80, SEED)
    scheme = ForbiddenSetRoutingScheme(graph, max_faults=MAX_FAULTS)
    workload = make_query_workload(graph, num_queries=10, max_faults=MAX_FAULTS, seed=SEED)
    benchmark(lambda: [scheme.route(s, t, F) for s, t, F in workload.queries])

    for row in rows:
        assert row[3] == 0, "a connected packet was not delivered"
        assert float(row[5]) <= (MAX_FAULTS + 1) ** 2 * 2 * 4 + 1  # O(|F|^2 k) envelope
