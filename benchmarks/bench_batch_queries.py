"""Experiment BATCH: single-query path versus the batched session pipeline.

One fault set ``F`` supports any number of ``(s, t)`` queries against the same
decoded component structure.  The per-call path re-derives the
``FragmentStructure`` and re-runs the merge process for every query; the
batched path (:class:`repro.core.batch.BatchQuerySession`, reached through
``FTCLabeling.connected_many``) builds the decomposition once and answers
every pair by component lookup.  The reproduced claims:

* batched ``connected_many`` over a shared fault set is at least ``3x`` faster
  per query than the per-call path on the medium workload graph;
* the pure-Python and numpy GF(2^w) bulk backends produce bit-identical
  outdetect labels on the cross-check corpus.

The wall-clock threshold is advisory by default (shared runners make timing
ratios flaky) and enforced when ``REPRO_BENCH_STRICT=1`` — the dedicated CI
job sets it.  The bit-identity and ground-truth assertions are always hard.

Runable two ways: under pytest (``pytest benchmarks/bench_batch_queries.py``)
with the usual benchmark fixtures, or directly with tiny parameters as a CI
smoke test::

    PYTHONPATH=src python benchmarks/bench_batch_queries.py --n 32 --pairs 20
"""

from __future__ import annotations

import argparse
import random
import sys
import time

try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if __package__ is None or __package__ == "":
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (bench_strict, cached_graph, cached_labeling, check_ratio_max,
                    check_speedup, emit_bench_json, print_table,
                    record_bench_result)
from repro.gf2.bulk import NumpyBulkOps, PyBulkOps, numpy_available
from repro.outdetect.rs_threshold import RSThresholdOutdetect
from repro.outdetect.sketch import SketchOutdetect
from repro.workloads import FaultModel
from repro.workloads.faults import sample_fault_sets

FAMILY = "erdos-renyi"
N = 160
SEED = 23
MAX_FAULTS = 4
NUM_PAIRS = 400
MIN_SPEEDUP = 3.0
#: ROADMAP target: a cold session (construction + answers) within this factor
#: of a warm one on the medium workload.  Tracked and reported, but advisory
#: even under ``REPRO_BENCH_STRICT`` — warm queries are sub-microsecond
#: component lookups, so the decomposition still dominates any realistic
#: batch; the ratio in ``BENCH_batch_queries.json`` is the progress gauge.
COLD_WARM_MAX_RATIO = 2.0


def _shared_fault_workload(graph, fault_count, num_pairs, seed):
    """One fault set plus many (s, t) pairs — the batched traffic shape."""
    faults = sample_fault_sets(graph, 1, fault_count,
                               model=FaultModel.TREE_BIASED, seed=seed)[0]
    rng = random.Random(seed + 1)
    vertices = sorted(graph.vertices())
    pairs = [tuple(rng.sample(vertices, 2)) for _ in range(num_pairs)]
    return list(faults), pairs


def run_comparison(labeling, graph, fault_count, num_pairs, seed):
    """Time the per-call path against the batched session on one fault set.

    Returns ``(per_call_seconds_per_query, batched_seconds_per_query,
    speedup)``; asserts both paths agree with BFS ground truth.
    """
    faults, pairs = _shared_fault_workload(graph, fault_count, num_pairs, seed)

    start = time.perf_counter()
    single_answers = [labeling.connected(s, t, faults) for s, t in pairs]
    per_call = (time.perf_counter() - start) / num_pairs

    labeling._session_cache.clear()  # charge the batched path for construction
    start = time.perf_counter()
    batched_answers = labeling.connected_many(pairs, faults)
    batched = (time.perf_counter() - start) / num_pairs

    truth = [graph.connected(s, t, removed=faults) for s, t in pairs]
    assert single_answers == truth
    assert batched_answers == truth
    return per_call, batched, per_call / max(batched, 1e-12)


def run_cold_warm(labeling, graph, fault_count, num_pairs, seed):
    """Time a cold ``connected_many`` (session construction included) against
    a warm one (pure component lookups) on the same fault set.

    Returns ``(cold_seconds_per_query, warm_seconds_per_query, ratio)``; the
    answers of both passes must agree.
    """
    faults, pairs = _shared_fault_workload(graph, fault_count, num_pairs, seed)
    labeling._session_cache.clear()
    start = time.perf_counter()
    cold_answers = labeling.connected_many(pairs, faults)
    cold = (time.perf_counter() - start) / num_pairs
    start = time.perf_counter()
    warm_answers = labeling.connected_many(pairs, faults)
    warm = (time.perf_counter() - start) / num_pairs
    assert cold_answers == warm_answers
    return cold, warm, cold / max(warm, 1e-12)


def compare_backends(labeling, seed=0):
    """Build outdetect labels with both bulk backends; labels must be
    bit-identical.  Returns the number of label vectors compared."""
    if not numpy_available():
        return 0
    instance = labeling.instance
    vertices = list(instance.auxiliary.tree_prime.vertices())
    edge_ids = instance.edge_ids
    field = instance.codec.field
    compared = 0

    threshold = max(2, MAX_FAULTS)
    py_rs = RSThresholdOutdetect(field, threshold, vertices, edge_ids,
                                 bulk=PyBulkOps(field))
    np_rs = RSThresholdOutdetect(field, threshold, vertices, edge_ids,
                                 bulk=NumpyBulkOps(field, small_cutoff=0))
    for vertex in vertices:
        assert py_rs.label_of(vertex) == np_rs.label_of(vertex), \
            "RS labels differ between backends at %r" % (vertex,)
        compared += 1

    id_bits = max(edge_ids.values()).bit_length() if edge_ids else 1
    py_sketch = SketchOutdetect(vertices, edge_ids, repetitions=4, seed=seed,
                                bulk=PyBulkOps(None))
    np_sketch = SketchOutdetect(
        vertices, edge_ids, repetitions=4, seed=seed,
        bulk=NumpyBulkOps(None, max_bits=id_bits + 32, small_cutoff=0))
    for vertex in vertices:
        assert py_sketch.label_of(vertex) == np_sketch.label_of(vertex), \
            "sketch labels differ between backends at %r" % (vertex,)
        compared += 1
    return compared


# --------------------------------------------------------------------- pytest

if pytest is not None:

    @pytest.mark.benchmark(group="batch-queries")
    @pytest.mark.parametrize("fault_count", [2, MAX_FAULTS])
    def test_batched_path_timing(benchmark, fault_count):
        graph = cached_graph(FAMILY, N, SEED)
        labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, "det-nearlinear")
        faults, pairs = _shared_fault_workload(graph, fault_count, NUM_PAIRS, SEED)

        def run():
            labeling._session_cache.clear()
            return labeling.connected_many(pairs, faults)

        answers = benchmark(run)
        benchmark.extra_info.update({"fault_count": fault_count, "pairs": NUM_PAIRS})
        assert answers == [graph.connected(s, t, removed=faults) for s, t in pairs]

    @pytest.mark.benchmark(group="batch-queries")
    def test_batched_speedup_and_backend_identity(benchmark):
        graph = cached_graph(FAMILY, N, SEED)
        labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, "det-nearlinear")
        rows = []
        speedups = []
        for fault_count in (2, 3, MAX_FAULTS):
            per_call, batched, speedup = run_comparison(
                labeling, graph, fault_count, NUM_PAIRS, SEED + fault_count)
            speedups.append(speedup)
            rows.append([fault_count, "%.3f" % (1000 * per_call),
                         "%.3f" % (1000 * batched), "%.1fx" % speedup])
        print_table("Batched vs per-call queries (ms per query, %d pairs)" % NUM_PAIRS,
                    ["|F|", "per-call", "batched", "speedup"], rows)
        compared = compare_backends(labeling, seed=SEED)
        print("backend cross-check: %d label vectors bit-identical" % compared)
        benchmark.extra_info["rows"] = rows
        record_bench_result("batch_queries", {
            "batched_min_speedup": min(speedups),
            "batched_speedup_rows": rows,
        })
        benchmark(lambda: None)
        check_speedup("batched vs per-call", min(speedups), MIN_SPEEDUP)

    @pytest.mark.benchmark(group="batch-queries")
    def test_cold_vs_warm_session(benchmark):
        """ROADMAP open item 2: cold ``connected_many`` within 2x of warm."""
        graph = cached_graph(FAMILY, N, SEED)
        labeling = cached_labeling(FAMILY, N, SEED, MAX_FAULTS, "det-nearlinear")
        rows = []
        worst = 0.0
        for fault_count in (2, MAX_FAULTS):
            cold, warm, ratio = run_cold_warm(
                labeling, graph, fault_count, NUM_PAIRS, SEED + fault_count)
            worst = max(worst, ratio)
            rows.append([fault_count, "%.3f" % (1000 * cold),
                         "%.3f" % (1000 * warm), "%.2fx" % ratio])
        print_table("Cold vs warm connected_many (ms per query, %d pairs)" % NUM_PAIRS,
                    ["|F|", "cold", "warm", "cold/warm"], rows)
        benchmark.extra_info["rows"] = rows
        record_bench_result("batch_queries", {
            "cold_warm_worst_ratio": worst,
            "cold_warm_rows": rows,
            "pairs": NUM_PAIRS,
        })
        benchmark(lambda: None)
        check_ratio_max("cold vs warm connected_many", worst,
                        COLD_WARM_MAX_RATIO, enforce=False)


# --------------------------------------------------------------------- script

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare per-call and batched query throughput")
    parser.add_argument("--n", type=int, default=N, help="graph size")
    parser.add_argument("--pairs", type=int, default=NUM_PAIRS,
                        help="number of (s, t) pairs per fault set")
    parser.add_argument("--max-faults", type=int, default=MAX_FAULTS)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the batched speedup reaches this; "
                             "defaults to %.1f when REPRO_BENCH_STRICT=1 and to "
                             "report-only otherwise" % MIN_SPEEDUP)
    args = parser.parse_args(argv)
    if args.min_speedup is None:
        args.min_speedup = MIN_SPEEDUP if bench_strict() else 0.0

    graph = cached_graph(FAMILY, args.n, args.seed)
    labeling = cached_labeling(FAMILY, args.n, args.seed, args.max_faults,
                               "det-nearlinear")
    rows = []
    best = 0.0
    for fault_count in sorted({2, args.max_faults}):
        per_call, batched, speedup = run_comparison(
            labeling, graph, fault_count, args.pairs, args.seed + fault_count)
        best = max(best, speedup)
        rows.append([fault_count, "%.3f" % (1000 * per_call),
                     "%.3f" % (1000 * batched), "%.1fx" % speedup])
    print_table("Batched vs per-call queries (ms per query, %d pairs)" % args.pairs,
                ["|F|", "per-call", "batched", "speedup"], rows)
    cold_rows = []
    worst_ratio = 0.0
    for fault_count in sorted({2, args.max_faults}):
        cold, warm, ratio = run_cold_warm(
            labeling, graph, fault_count, args.pairs, args.seed + fault_count)
        worst_ratio = max(worst_ratio, ratio)
        cold_rows.append([fault_count, "%.3f" % (1000 * cold),
                          "%.3f" % (1000 * warm), "%.2fx" % ratio])
    print_table("Cold vs warm connected_many (ms per query, %d pairs)" % args.pairs,
                ["|F|", "cold", "warm", "cold/warm"], cold_rows)
    compared = compare_backends(labeling, seed=args.seed)
    if compared:
        print("backend cross-check: %d label vectors bit-identical" % compared)
    else:
        print("backend cross-check skipped (numpy not available)")
    emit_bench_json("batch_queries", {
        "n": args.n,
        "pairs": args.pairs,
        "max_faults": args.max_faults,
        "batched_best_speedup": best,
        "batched_speedup_rows": rows,
        "cold_warm_worst_ratio": worst_ratio,
        "cold_warm_rows": cold_rows,
        "backend_vectors_compared": compared,
    })
    check_ratio_max("cold vs warm connected_many", worst_ratio,
                    COLD_WARM_MAX_RATIO, enforce=False)
    if args.min_speedup and best < args.min_speedup:
        print("FAIL: batched speedup %.1fx below required %.1fx"
              % (best, args.min_speedup), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
