"""Experiment LEM5: sparsification-hierarchy ablation (Lemma 5 / Proposition 5 / Definition 1).

Compares the three ways of building the (S_{f,T}, k)-good hierarchy:

* NetFind epsilon-net (deterministic, near-linear — the headline construction),
* greedy rectangle net (deterministic, polynomial — the Lemma 10 stand-in),
* random 1/2-sub-sampling (Proposition 5, the Dory--Parter baseline).

Reported per construction: depth, level sizes, per-level thresholds (which
drive the label size), construction time, and the number of goodness
violations over fault-induced vertex sets (zero expected for all three at
these sizes).
"""

import time

import pytest

from common import cached_graph, print_table
from repro.core.transform import build_transformed_instance
from repro.hierarchy import (HierarchyConfig, build_deterministic_hierarchy,
                             build_randomized_hierarchy)
from repro.hierarchy.config import NetAlgorithm, ThresholdRule
from repro.hierarchy.validation import fault_induced_vertex_sets, goodness_violations

FAMILY = "erdos-renyi"
SEED = 19
MAX_FAULTS = 2


def _instance(n):
    graph = cached_graph(FAMILY, n, SEED)
    return build_transformed_instance(graph)


def _build(instance, method):
    config = HierarchyConfig(max_faults=MAX_FAULTS, rule=ThresholdRule.PAPER,
                             net_algorithm=NetAlgorithm.GREEDY if method == "greedy"
                             else NetAlgorithm.NETFIND,
                             random_seed=SEED)
    if method == "random":
        return build_randomized_hierarchy(instance.non_tree_edges, config)
    return build_deterministic_hierarchy(instance.non_tree_edges, instance.tour, config)


@pytest.mark.benchmark(group="lemma5-hierarchy")
@pytest.mark.parametrize("method", ["netfind", "greedy", "random"])
def test_hierarchy_construction_time(benchmark, method):
    instance = _instance(128 if method != "greedy" else 64)
    hierarchy = benchmark(lambda: _build(instance, method))
    benchmark.extra_info["method"] = method
    benchmark.extra_info["depth"] = hierarchy.depth()
    assert hierarchy.depth() >= 1


@pytest.mark.benchmark(group="lemma5-hierarchy")
def test_hierarchy_quality_table(benchmark):
    rows = []
    for method, n in [("netfind", 128), ("greedy", 64), ("random", 128)]:
        instance = _instance(n)
        start = time.perf_counter()
        hierarchy = _build(instance, method)
        build_seconds = time.perf_counter() - start
        vertex_sets = fault_induced_vertex_sets(instance.auxiliary.tree_prime,
                                                max_faults=MAX_FAULTS,
                                                exhaustive_limit=100, sample_size=60,
                                                seed=SEED)
        violations = goodness_violations(hierarchy, vertex_sets)
        description = hierarchy.describe()
        rows.append([method, n, description["depth"],
                     "/".join(str(s) for s in description["level_sizes"]),
                     description["total_label_elements"],
                     len(violations), "%.3f" % build_seconds])
    print_table("Lemma 5 / hierarchy ablation (f=%d)" % MAX_FAULTS,
                ["method", "n", "depth", "level sizes", "label words", "violations",
                 "build s"], rows)
    benchmark.extra_info["rows"] = rows
    instance = _instance(128)
    benchmark(lambda: _build(instance, "netfind"))
    assert all(row[5] == 0 for row in rows), "goodness violations observed"
