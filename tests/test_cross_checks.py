"""Cross-checks between independent implementations of the same quantity.

Each test here validates one component against a second, independently coded
path: the two epsilon-net constructions against each other, adaptive against
non-adaptive decoding, Proposition-4 subtree sums against brute force, and the
decoder objects against the convenience API.
"""

import random

import networkx as nx
import pytest

from repro.core import FTCConfig, FTCLabeling
from repro.epsnet.greedy_net import greedy_rectangle_net
from repro.epsnet.netfind import hitting_threshold, net_find
from repro.epsnet.rectangles import Rectangle, points_in_rectangle
from repro.gf2 import GF2m
from repro.graphs import Graph, bfs_spanning_tree, canonical_edge
from repro.graphs.spanning_tree import non_tree_edges
from repro.hierarchy.config import ThresholdRule
from repro.outdetect import RSThresholdOutdetect


def random_connected_graph(n, m, seed):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    return Graph.from_networkx(nx_graph)


# ------------------------------------------------------------------ epsilon-nets

def test_netfind_and_greedy_both_hit_the_same_heavy_rectangles():
    rng = random.Random(3)
    points = sorted({(rng.randint(0, 120), rng.randint(0, 120)) for _ in range(90)})
    threshold = hitting_threshold(len(points))
    netfind_selection = {points[i] for i in net_find(points)}
    greedy_selection = {points[i] for i in greedy_rectangle_net(points, threshold)}
    for _ in range(150):
        xs = sorted(rng.randint(0, 120) for _ in range(2))
        ys = sorted(rng.randint(0, 120) for _ in range(2))
        rect = Rectangle(xs[0], xs[1], ys[0], ys[1])
        inside = points_in_rectangle(points, rect)
        if len(inside) >= threshold:
            assert any(p in netfind_selection for p in inside)
            assert any(p in greedy_selection for p in inside)


# --------------------------------------------------------------- adaptive decode

def test_adaptive_and_full_decoding_agree_on_vertex_sets():
    graph = random_connected_graph(16, 34, seed=5)
    tree = bfs_spanning_tree(graph, 0)
    extra = non_tree_edges(graph, tree)
    field = GF2m(20)
    edge_ids = {edge: index + 1 for index, edge in enumerate(extra)}
    adaptive = RSThresholdOutdetect(field, 8, graph.vertices(), edge_ids, adaptive=True)
    plain = RSThresholdOutdetect(field, 8, graph.vertices(), edge_ids, adaptive=False)
    rng = random.Random(6)
    vertices = sorted(graph.vertices())
    for _ in range(25):
        subset = set(rng.sample(vertices, rng.randint(1, len(vertices) - 1)))
        outgoing = [edge_ids[canonical_edge(u, v)] for u, v in extra
                    if (u in subset) != (v in subset)]
        if len(outgoing) > 8:
            continue
        combined_a = adaptive.label_of_set(subset)
        combined_p = plain.label_of_set(subset)
        assert combined_a == combined_p
        assert adaptive.decode(combined_a) == plain.decode(combined_p) == sorted(outgoing)


# -------------------------------------------------------------- Proposition 4

def test_proposition4_subtree_sums_match_brute_force():
    """The edge label's subtree sum equals the XOR of vertex outdetect labels below it."""
    graph = random_connected_graph(14, 28, seed=7)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    outdetect = labeling.outdetect
    tree_prime = labeling.instance.auxiliary.tree_prime
    for vertex in list(tree_prime.vertices()):
        parent = tree_prime.parent(vertex)
        if parent is None:
            continue
        edge_label = labeling._tree_labeling.tree_edge_label(vertex, parent)
        brute = outdetect.label_of_set(tree_prime.subtree_vertices(vertex))
        assert edge_label.outdetect_subtree_sum == brute


def test_whole_tree_outdetect_sum_is_zero():
    graph = random_connected_graph(14, 28, seed=8)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    outdetect = labeling.outdetect
    all_vertices = list(labeling.instance.auxiliary.tree_prime.vertices())
    assert outdetect.label_of_set(all_vertices) == outdetect.zero_label()
    assert outdetect.decode(outdetect.zero_label()) == []


# ----------------------------------------------------------- threshold rules

def test_practical_and_paper_rules_agree_with_each_other():
    graph = random_connected_graph(20, 44, seed=9)
    paper = FTCLabeling(graph, FTCConfig(max_faults=2, threshold_rule=ThresholdRule.PAPER))
    practical = FTCLabeling(graph, FTCConfig(max_faults=2,
                                             threshold_rule=ThresholdRule.PRACTICAL))
    rng = random.Random(10)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    for _ in range(30):
        faults = rng.sample(edges, 2)
        s, t = rng.sample(vertices, 2)
        expected = graph.connected(s, t, removed=faults)
        assert paper.connected(s, t, faults) == expected
        assert practical.connected(s, t, faults) == expected
    # The paper rule never uses a smaller threshold than the practical rule.
    paper_thresholds = paper.hierarchy.thresholds
    practical_thresholds = practical.hierarchy.thresholds
    assert paper_thresholds[0] >= practical_thresholds[0]


# ------------------------------------------------------------------- decoder API

def test_decoder_object_matches_convenience_api():
    graph = random_connected_graph(15, 32, seed=11)
    labeling = FTCLabeling(graph, FTCConfig(max_faults=2))
    decoder = labeling.decoder()
    rng = random.Random(12)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    for _ in range(20):
        faults = rng.sample(edges, 2)
        s, t = rng.sample(vertices, 2)
        via_decoder = decoder.connected(labeling.vertex_label(s), labeling.vertex_label(t),
                                        [labeling.edge_label(u, v) for u, v in faults])
        assert via_decoder == labeling.connected(s, t, faults)
