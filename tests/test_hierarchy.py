"""Tests for the sparsification hierarchies (Definition 1, Lemma 5, Proposition 5)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import EulerTour, Graph, bfs_spanning_tree
from repro.graphs.spanning_tree import non_tree_edges
from repro.hierarchy import (EdgeHierarchy, HierarchyConfig, ThresholdRule,
                             build_deterministic_hierarchy, build_randomized_hierarchy)
from repro.hierarchy.base import check_strictly_decreasing
from repro.hierarchy.config import NetAlgorithm
from repro.hierarchy.validation import (fault_induced_vertex_sets, goodness_violations,
                                        outgoing_edges)


def make_instance(n, m, seed):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    graph = Graph.from_networkx(nx_graph)
    tree = bfs_spanning_tree(graph, 0)
    tour = EulerTour(tree)
    extra = non_tree_edges(graph, tree)
    return graph, tree, tour, extra


# ---------------------------------------------------------------- configuration

def test_threshold_rules_monotone_in_f():
    for size in (10, 100, 1000):
        paper = [ThresholdRule.PAPER.threshold(f, size) for f in (1, 2, 4)]
        practical = [ThresholdRule.PRACTICAL.threshold(f, size) for f in (1, 2, 4)]
        assert paper == sorted(paper)
        assert practical == sorted(practical)
        assert all(p <= size for p in paper + practical)


def test_hierarchy_config_rejects_bad_f():
    with pytest.raises(ValueError):
        HierarchyConfig(max_faults=0)


def test_edge_hierarchy_validation():
    hierarchy = EdgeHierarchy(levels=[[(0, 1), (1, 2)], [(0, 1)]], thresholds=[2, 1])
    hierarchy.validate_nesting()
    bad = EdgeHierarchy(levels=[[(0, 1)], [(1, 2)]], thresholds=[1, 1])
    with pytest.raises(ValueError):
        bad.validate_nesting()
    assert check_strictly_decreasing([5, 3, 1])
    assert not check_strictly_decreasing([5, 5])


# ------------------------------------------------------------ deterministic build

def test_deterministic_hierarchy_structure():
    _, _, tour, extra = make_instance(40, 120, seed=1)
    config = HierarchyConfig(max_faults=2, rule=ThresholdRule.PAPER)
    hierarchy = build_deterministic_hierarchy(extra, tour, config)
    sizes = hierarchy.level_sizes()
    assert sizes[0] == len(extra)
    assert check_strictly_decreasing(sizes) or len(sizes) == 1
    assert hierarchy.depth() <= config.level_cap(len(extra))
    # The deepest level is unconditionally decodable.
    assert hierarchy.thresholds[-1] >= len(hierarchy.levels[-1])
    hierarchy.validate_nesting()


def test_deterministic_hierarchy_empty_input():
    _, _, tour, _ = make_instance(10, 9, seed=2)
    config = HierarchyConfig(max_faults=1)
    hierarchy = build_deterministic_hierarchy([], tour, config)
    assert hierarchy.depth() == 0


def test_deterministic_hierarchy_greedy_net_small():
    _, _, tour, extra = make_instance(20, 45, seed=3)
    config = HierarchyConfig(max_faults=1, net_algorithm=NetAlgorithm.GREEDY)
    hierarchy = build_deterministic_hierarchy(extra, tour, config)
    assert hierarchy.level_sizes()[0] == len(extra)
    hierarchy.validate_nesting()


def test_deterministic_hierarchy_goodness_small_graph():
    """Exhaustive check of the decodability property on a small instance."""
    _, tree, tour, extra = make_instance(12, 26, seed=4)
    config = HierarchyConfig(max_faults=2, rule=ThresholdRule.PAPER)
    hierarchy = build_deterministic_hierarchy(extra, tour, config)
    vertex_sets = fault_induced_vertex_sets(tree, max_faults=2, exhaustive_limit=300)
    violations = goodness_violations(hierarchy, vertex_sets)
    assert violations == []


# --------------------------------------------------------------- randomized build

def test_randomized_hierarchy_structure():
    _, _, _, extra = make_instance(40, 120, seed=5)
    config = HierarchyConfig(max_faults=2, random_seed=7)
    hierarchy = build_randomized_hierarchy(extra, config)
    assert hierarchy.level_sizes()[0] == len(extra)
    assert hierarchy.thresholds[-1] >= len(hierarchy.levels[-1])
    hierarchy.validate_nesting()


def test_randomized_hierarchy_reproducible():
    _, _, _, extra = make_instance(30, 80, seed=6)
    config = HierarchyConfig(max_faults=2, random_seed=11)
    first = build_randomized_hierarchy(extra, config)
    second = build_randomized_hierarchy(extra, config)
    assert first.level_sizes() == second.level_sizes()
    assert first.levels == second.levels


def test_randomized_hierarchy_goodness_small_graph():
    _, tree, _, extra = make_instance(12, 26, seed=8)
    config = HierarchyConfig(max_faults=2, random_seed=3)
    hierarchy = build_randomized_hierarchy(extra, config)
    vertex_sets = fault_induced_vertex_sets(tree, max_faults=2, exhaustive_limit=300)
    violations = goodness_violations(hierarchy, vertex_sets)
    assert violations == []


# ------------------------------------------------------------------- validation

def test_outgoing_edges_helper():
    edges = [(0, 1), (1, 2), (2, 3)]
    assert outgoing_edges({0, 1}, edges) == [(1, 2)]
    assert outgoing_edges({1, 2}, edges) == [(0, 1), (2, 3)]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_hierarchy_goodness_property_random(seed):
    graph, tree, tour, extra = make_instance(14, 30, seed=seed)
    if not extra:
        return
    config = HierarchyConfig(max_faults=2, rule=ThresholdRule.PAPER)
    hierarchy = build_deterministic_hierarchy(extra, tour, config)
    vertex_sets = fault_induced_vertex_sets(tree, max_faults=2, exhaustive_limit=150,
                                            sample_size=60, seed=seed)
    assert goodness_violations(hierarchy, vertex_sets) == []
