"""Direct coverage of :func:`repro.core.config.resolve_ftc_config`.

The resolver is the single normalization point behind ``Oracle.build``, the
CLI, and the :class:`~repro.core.oracle.FTConnectivityOracle` shim.  Its
legacy path — loose parameters passed *alongside* ``config=`` — was until now
only exercised indirectly through the oracle constructor; these tests pin the
contract down at the source: the exact deprecation warning, agreement
passing through, disagreement raising ``ValueError``, and typo'd keywords
raising ``TypeError``.
"""

import warnings

import pytest

from repro.core.config import FTCConfig, SchemeVariant, resolve_ftc_config
from repro.hierarchy.config import ThresholdRule


# ----------------------------------------------------------- canonical paths

def test_config_alone_is_returned_as_is():
    config = FTCConfig(max_faults=3)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no deprecation on the canonical shape
        assert resolve_ftc_config(config=config) is config


def test_loose_parameters_build_a_config():
    config = resolve_ftc_config(max_faults=2, variant="rand-full", random_seed=9,
                                threshold_rule=ThresholdRule.PRACTICAL)
    assert config == FTCConfig(max_faults=2, variant=SchemeVariant.RANDOMIZED_FULL,
                               random_seed=9,
                               threshold_rule=ThresholdRule.PRACTICAL)


def test_variant_accepts_the_enum_and_its_value():
    by_enum = resolve_ftc_config(max_faults=1, variant=SchemeVariant.SKETCH_WHP)
    by_value = resolve_ftc_config(max_faults=1, variant="sketch-whp")
    assert by_enum == by_value
    with pytest.raises(ValueError):
        resolve_ftc_config(max_faults=1, variant="not-a-scheme")


def test_neither_source_is_a_type_error():
    with pytest.raises(TypeError, match="either max_faults or config"):
        resolve_ftc_config()


def test_config_must_be_an_ftcconfig():
    with pytest.raises(TypeError, match="must be an FTCConfig"):
        resolve_ftc_config(config={"max_faults": 2})


# ------------------------------------------------- the legacy (dual) shape

def test_redundant_max_faults_alongside_config_warns_and_returns_config():
    config = FTCConfig(max_faults=2)
    with pytest.warns(DeprecationWarning,
                      match=r"passing max_faults alongside config= is "
                            r"deprecated; pass one FTCConfig"):
        assert resolve_ftc_config(max_faults=2, config=config) is config


def test_warning_names_every_redundant_parameter():
    config = FTCConfig(max_faults=2, random_seed=5)
    with pytest.warns(DeprecationWarning, match="max_faults/random_seed"):
        resolve_ftc_config(max_faults=2, config=config, random_seed=5)


def test_disagreeing_max_faults_raises():
    config = FTCConfig(max_faults=2)
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError,
                           match=r"max_faults=3 vs config\.max_faults=2"):
            resolve_ftc_config(max_faults=3, config=config)


def test_disagreeing_variant_and_seed_list_every_field():
    config = FTCConfig(max_faults=2, random_seed=1)
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError) as excinfo:
            resolve_ftc_config(config=config, variant="rand-full", random_seed=4)
    message = str(excinfo.value)
    assert "random_seed=4 vs config.random_seed=1" in message
    assert "variant" in message


def test_agreeing_overrides_pass_through_with_a_warning():
    config = FTCConfig(max_faults=2, adaptive_decoding=False)
    with pytest.warns(DeprecationWarning):
        assert resolve_ftc_config(config=config, adaptive_decoding=False) is config


def test_unknown_field_alongside_config_is_a_type_error():
    config = FTCConfig(max_faults=2)
    with pytest.raises(TypeError, match="unknown FTCConfig field"):
        resolve_ftc_config(config=config, max_fautls=2)  # the typo'd keyword


def test_oracle_shim_still_routes_through_the_resolver():
    """The legacy FTConnectivityOracle(graph, max_faults, config=...) shape
    reaches the same warning (end-to-end check of the shim)."""
    from repro.core.oracle import FTConnectivityOracle
    from repro.graphs.graph import Graph

    graph = Graph([("a", "b"), ("b", "c"), ("c", "a")])
    config = FTCConfig(max_faults=1)
    with pytest.warns(DeprecationWarning, match="alongside config="):
        oracle = FTConnectivityOracle(graph, 1, config=config)
    assert oracle.max_faults == 1
