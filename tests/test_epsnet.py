"""Tests for the epsilon-net constructions and the H_{2f} shape machinery."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.epsnet import (Rectangle, SymmetricDifferenceShape, greedy_rectangle_net,
                          net_find, points_in_rectangle, shape_from_cut_positions, slab_net)
from repro.epsnet.netfind import hitting_threshold
from repro.epsnet.rectangles import canonical_rectangles
from repro.epsnet.greedy_net import greedy_net_size_bound


def random_points(count, seed, bound=1000):
    rng = random.Random(seed)
    points = set()
    while len(points) < count:
        points.add((rng.randint(0, bound), rng.randint(0, bound)))
    return sorted(points)


# ------------------------------------------------------------------ rectangles

def test_rectangle_contains_and_intersects():
    rect = Rectangle(0, 10, 0, 5)
    assert rect.contains((0, 0)) and rect.contains((10, 5))
    assert not rect.contains((11, 3))
    assert rect.intersects(Rectangle(5, 20, 4, 9))
    assert not rect.intersects(Rectangle(11, 20, 6, 9))


def test_rectangle_rejects_degenerate():
    with pytest.raises(ValueError):
        Rectangle(5, 4, 0, 1)


def test_bounding_rectangle():
    points = [(1, 5), (4, 2), (3, 9)]
    rect = Rectangle.bounding(points)
    assert (rect.x_low, rect.x_high, rect.y_low, rect.y_high) == (1, 4, 2, 9)
    assert points_in_rectangle(points, rect) == points


# --------------------------------------------------------------------- slab net

def test_slab_net_hits_crossing_rectangles():
    points = random_points(120, seed=1)
    group_size = 5
    line_x = sorted(p[0] for p in points)[60]
    selected = slab_net(points, list(range(len(points))), group_size, line_x)
    selected_points = {points[i] for i in selected}
    assert len(selected) <= 2 * ((len(points) + group_size - 1) // group_size)
    # Every canonical rectangle crossing the line with >= 3*group_size points is hit.
    for rect in canonical_rectangles(points[::7]):
        if not rect.crosses_vertical_line(line_x):
            continue
        inside = points_in_rectangle(points, rect)
        if len(inside) >= 3 * group_size:
            assert any(p in selected_points for p in inside)


def test_slab_net_rejects_bad_group_size():
    with pytest.raises(ValueError):
        slab_net([(0, 0)], [0], 0, 0)


# ---------------------------------------------------------------------- NetFind

def test_net_find_empty_and_small():
    assert net_find([]) == []
    # Below the leaf threshold nothing is selected.
    assert net_find(random_points(10, seed=2)) == []


def test_net_find_constant_fraction():
    points = random_points(400, seed=3)
    selected = net_find(points)
    assert 0 < len(selected) <= len(points) // 2


def test_net_find_hits_heavy_rectangles():
    points = random_points(300, seed=4, bound=200)
    selected = set(net_find(points))
    threshold = hitting_threshold(len(points))
    selected_points = {points[i] for i in selected}
    rng = random.Random(9)
    # Sample random rectangles; every heavy one must contain a net point.
    for _ in range(300):
        xs = sorted(rng.randint(0, 200) for _ in range(2))
        ys = sorted(rng.randint(0, 200) for _ in range(2))
        rect = Rectangle(xs[0], xs[1], ys[0], ys[1])
        inside = points_in_rectangle(points, rect)
        if len(inside) >= threshold:
            assert any(p in selected_points for p in inside)


def test_net_find_capacity_validation():
    points = random_points(50, seed=5)
    with pytest.raises(ValueError):
        net_find(points, capacity=10)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       count=st.integers(min_value=80, max_value=250))
def test_net_find_property(seed, count):
    points = random_points(count, seed=seed, bound=500)
    selected = set(net_find(points))
    assert len(selected) <= max(len(points) // 2, 1)
    threshold = hitting_threshold(len(points))
    selected_points = {points[i] for i in selected}
    rng = random.Random(seed + 1)
    for _ in range(50):
        xs = sorted(rng.randint(0, 500) for _ in range(2))
        ys = sorted(rng.randint(0, 500) for _ in range(2))
        inside = points_in_rectangle(points, Rectangle(xs[0], xs[1], ys[0], ys[1]))
        if len(inside) >= threshold:
            assert any(p in selected_points for p in inside)


# ------------------------------------------------------------------- greedy net

def test_greedy_net_hits_all_heavy_rectangles():
    points = random_points(60, seed=6, bound=60)
    threshold = 8
    selected = set(greedy_rectangle_net(points, threshold))
    selected_points = {points[i] for i in selected}
    for rect in canonical_rectangles(points):
        inside = points_in_rectangle(points, rect)
        if len(inside) >= threshold:
            assert any(p in selected_points for p in inside)


def test_greedy_net_size_reasonable():
    points = random_points(80, seed=7, bound=100)
    threshold = 10
    selected = greedy_rectangle_net(points, threshold)
    assert len(selected) <= greedy_net_size_bound(len(points), threshold)


def test_greedy_net_trivial_cases():
    assert greedy_rectangle_net([], 3) == []
    assert greedy_rectangle_net([(1, 1)], 3) == []
    with pytest.raises(ValueError):
        greedy_rectangle_net([(1, 1)], 0)


# ----------------------------------------------------------------------- shapes

def test_shape_membership_parity():
    shape = shape_from_cut_positions([3, 10])
    # (x, y) with x >= 3, x < 10, y < 3: exactly one half-plane -> inside.
    assert shape.contains((5, 1))
    # (x, y) with x >= 3 and y >= 3 but both < 10: two half-planes -> outside.
    assert not shape.contains((5, 5))
    # All four half-planes: outside.
    assert not shape.contains((12, 12))


def test_shape_rectangle_decomposition_matches_membership():
    shape = SymmetricDifferenceShape([4, 9, 15])
    bound = 20
    rectangles = shape.rectangle_decomposition(bound)
    assert len(rectangles) <= shape.max_rectangles_bound()
    for x in range(bound + 1):
        for y in range(bound + 1):
            in_shape = shape.contains((x, y))
            in_rects = any(rect.contains((x, y)) for rect in rectangles)
            assert in_shape == in_rects, (x, y)


def test_shape_filter_points():
    shape = SymmetricDifferenceShape([5])
    points = [(1, 1), (6, 1), (6, 6)]
    assert shape.filter_points(points) == [(6, 1)]
