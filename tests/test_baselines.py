"""Tests for the baseline oracles and schemes."""

import itertools
import random

import networkx as nx
import pytest

from repro.baselines import (CycleSpaceCutLabeling, DoryParterScheme,
                             ExactConnectivityOracle, UnionFindConnectivityOracle)
from repro.graphs import Graph, bfs_spanning_tree
from repro.graphs.spanning_tree import non_tree_edges
from repro.workloads import make_query_workload


def random_connected_graph(n, m, seed):
    nx_graph = nx.gnm_random_graph(n, m, seed=seed)
    if not nx.is_connected(nx_graph):
        nx_graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    return Graph.from_networkx(nx_graph)


# ---------------------------------------------------------------- exact oracles

def test_exact_and_union_find_oracles_agree():
    graph = random_connected_graph(15, 35, seed=1)
    exact = ExactConnectivityOracle(graph)
    union_find = UnionFindConnectivityOracle(graph)
    rng = random.Random(2)
    edges = sorted(graph.edges())
    vertices = sorted(graph.vertices())
    for _ in range(80):
        faults = rng.sample(edges, rng.randint(0, 3))
        s, t = rng.sample(vertices, 2)
        assert exact.connected(s, t, faults) == union_find.connected(s, t, faults)
    assert union_find.cache_size() >= 1


def test_union_find_cache_reuse():
    graph = random_connected_graph(10, 20, seed=3)
    oracle = UnionFindConnectivityOracle(graph)
    faults = sorted(graph.edges())[:2]
    oracle.connected(0, 1, faults)
    oracle.connected(2, 3, faults)
    assert oracle.cache_size() == 1


# ----------------------------------------------------------------- Dory--Parter

def test_dory_parter_whp_and_full_label_sizes():
    graph = random_connected_graph(20, 45, seed=4)
    whp = DoryParterScheme(graph, max_faults=3, full_query_support=False, seed=1)
    full = DoryParterScheme(graph, max_faults=3, full_query_support=True, seed=1)
    whp_bits = whp.label_size_stats()["max_edge_label_bits"]
    full_bits = full.label_size_stats()["max_edge_label_bits"]
    # Full query support pays roughly a factor f in label size.
    assert full_bits > whp_bits


def test_dory_parter_error_rate_low_on_small_instance():
    graph = random_connected_graph(14, 30, seed=5)
    scheme = DoryParterScheme(graph, max_faults=2, full_query_support=True, seed=7)
    workload = make_query_workload(graph, num_queries=40, max_faults=2, seed=6)
    report = scheme.error_rate(workload.queries)
    assert report["total"] == 40
    assert report["error_rate"] <= 0.1


# ------------------------------------------------------------------ cycle space

def test_cycle_space_cuts_xor_to_zero():
    graph = random_connected_graph(12, 26, seed=8)
    tree = bfs_spanning_tree(graph, 0)
    labeling = CycleSpaceCutLabeling(graph, tree, width=40, seed=3)
    vertices = sorted(graph.vertices())
    for size in (1, 2, 3):
        for subset in itertools.combinations(vertices, size):
            assert labeling.cut_consistent(set(subset))


def test_cycle_space_verifies_real_cuts():
    graph = random_connected_graph(12, 24, seed=9)
    tree = bfs_spanning_tree(graph, 0)
    labeling = CycleSpaceCutLabeling(graph, tree, width=40, seed=4)
    for vertex in sorted(graph.vertices())[:6]:
        subset = set(tree.subtree_vertices(vertex))
        boundary_tree = [edge for edge in tree.tree_edges()
                         if (edge[0] in subset) != (edge[1] in subset)]
        boundary_non_tree = [edge for edge in non_tree_edges(graph, tree)
                             if (edge[0] in subset) != (edge[1] in subset)]
        assert labeling.verify_cut_candidate(boundary_tree, boundary_non_tree)


def test_cycle_space_incomplete_cut_rejected():
    graph = random_connected_graph(12, 24, seed=10)
    tree = bfs_spanning_tree(graph, 0)
    labeling = CycleSpaceCutLabeling(graph, tree, width=40, seed=5)
    # A covered tree edge on its own is not a full cut: the XOR is non-zero whp.
    single_edges = [edge for edge in tree.tree_edges()
                    if labeling.edge_label(*edge) != 0]
    assert single_edges, "expected at least one covered tree edge"
    assert not labeling.xor_is_zero([single_edges[0]])
